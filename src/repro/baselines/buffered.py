"""A buffered, flow-controlled router — the contrast the title implies.

"Flow Control is a mechanism in which packet sources adjust their load so
that they do not overload a network ... [hot-potato routing] allows a much
higher utilization of network links where flow controlled routing results
in significant under-utilization" (§1.2.3).  To make that comparison
measurable, this module implements a classic store-and-forward network
*with* flow control on the same Time Warp kernel:

* each router has one FIFO output queue per link (unbounded — safety comes
  from source throttling, not link back-pressure, so the torus cannot
  deadlock);
* each link forwards one packet per time step (same raw capacity as the
  bufferless network);
* packets follow dimension-order (row-first) routing, never deflect, and
  queue when the link is busy;
* every source runs *end-to-end window flow control*: at most ``window``
  of its packets may be outstanding in the network; delivery triggers an
  acknowledgement back to the source, opening the window again.

The ABL-BASE benchmark runs this side by side with the hot-potato network
and reports delivery time, injection wait and link utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.event import Event
from repro.core.lp import LogicalProcess, Model
from repro.errors import ConfigurationError
from repro.net import DIRECTIONS, GridTopology, MeshTopology, TorusTopology

__all__ = ["BufferedConfig", "BufferedRouterLP", "BufferedModel"]

# Event kinds.
B_INIT = "B_INIT"
B_ARRIVE = "B_ARRIVE"
B_STEP = "B_STEP"
B_INJECT = "B_INJECT"
B_ACK = "B_ACK"

# Virtual-time layout within a step: arrivals land, the ACK control plane
# reports deliveries, links are served, then sources inject for next step.
ARRIVE_OFFSET = 0.25
ACK_OFFSET = 0.5
STEP_OFFSET = 0.6
INJECT_OFFSET = 0.9
INIT_TS = 0.1


@dataclass(frozen=True)
class BufferedConfig:
    """Parameters of the flow-controlled baseline network."""

    n: int = 8
    duration: float = 100.0
    injector_fraction: float = 1.0
    #: End-to-end window: max packets a source may have outstanding.
    window: int = 4
    torus: bool = True

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0.0 <= self.injector_fraction <= 1.0:
            raise ConfigurationError("injector_fraction must be in [0, 1]")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")

    @property
    def num_routers(self) -> int:
        return self.n * self.n


class BufferedRouterLP(LogicalProcess):
    """Store-and-forward router with per-link FIFOs and source windowing."""

    __slots__ = (
        "cfg",
        "topo",
        "is_injector",
        "neighbors",
        "exists",
        "queues",
        "outstanding",
        "head_gen_step",
        "delivered",
        "total_delivery_time",
        "max_delivery_time",
        "injected",
        "total_inject_wait",
        "max_inject_wait",
        "window_blocked",
        "forwarded",
        "queue_len_sum",
        "queue_samples",
        "util_claimed",
        "util_samples",
    )

    def __init__(
        self,
        lp_id: int,
        cfg: BufferedConfig,
        topo: GridTopology,
        is_injector: bool,
    ) -> None:
        super().__init__(lp_id)
        self.cfg = cfg
        self.topo = topo
        self.is_injector = is_injector
        self.neighbors = tuple(topo.neighbor(lp_id, d) for d in DIRECTIONS)
        self.exists = tuple(nb is not None for nb in self.neighbors)
        #: One FIFO per output link.
        self.queues: tuple[list, ...] = tuple([] for _ in DIRECTIONS)
        #: Source-window usage (packets of ours still in the network).
        self.outstanding = 0
        self.head_gen_step = 0
        # Statistics (all reversible).
        self.delivered = 0
        self.total_delivery_time = 0
        self.max_delivery_time = 0
        self.injected = 0
        self.total_inject_wait = 0
        self.max_inject_wait = 0
        #: Injection attempts refused because the window was full.
        self.window_blocked = 0
        self.forwarded = 0
        self.queue_len_sum = 0
        self.queue_samples = 0
        self.util_claimed = 0
        self.util_samples = 0

    # ------------------------------------------------------------------
    def on_init(self) -> None:
        self.send(INIT_TS, self.id, B_INIT)

    def forward(self, event: Event) -> None:
        kind = event.kind
        if kind == B_ARRIVE:
            self._arrive(event)
        elif kind == B_STEP:
            self._step(event)
        elif kind == B_INJECT:
            self._inject(event)
        elif kind == B_ACK:
            self.outstanding -= 1
        elif kind == B_INIT:
            self.send(STEP_OFFSET, self.id, B_STEP, {"step": 0})
            if self.is_injector:
                self.send(INJECT_OFFSET, self.id, B_INJECT, {"step": 0})
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown event kind {kind!r}")

    def reverse(self, event: Event) -> None:
        kind = event.kind
        if kind == B_ARRIVE:
            self._rc_arrive(event)
        elif kind == B_STEP:
            self._rc_step(event)
        elif kind == B_INJECT:
            self._rc_inject(event)
        elif kind == B_ACK:
            self.outstanding += 1
        # B_INIT only sends events; the kernel cancels them.

    # ------------------------------------------------------------------
    def _enqueue(self, pkt: dict[str, Any]) -> int:
        """Queue a packet on its dimension-order output link."""
        d = self.topo.homerun_dir(self.id, pkt["dest"])
        assert d is not None, "enqueue at destination"
        self.queues[d].append(pkt)
        return d

    def _arrive(self, event: Event) -> None:
        pkt = event.data
        step = pkt["step"]
        if pkt["dest"] == self.id:
            dt = step - pkt["inject_step"]
            self.delivered += 1
            self.total_delivery_time += dt
            prev_max = self.max_delivery_time
            if dt > prev_max:
                self.max_delivery_time = dt
            event.saved["deliver"] = prev_max
            # Open the source's window via the ACK control plane.
            self.send(step + ACK_OFFSET, pkt["src"], B_ACK)
            return
        event.saved.pop("deliver", None)
        self._enqueue(pkt)

    def _rc_arrive(self, event: Event) -> None:
        prev_max = event.saved.pop("deliver", None)
        pkt = event.data
        if prev_max is not None:
            dt = pkt["step"] - pkt["inject_step"]
            self.delivered -= 1
            self.total_delivery_time -= dt
            self.max_delivery_time = prev_max
            return
        d = self.topo.homerun_dir(self.id, pkt["dest"])
        popped = self.queues[d].pop()
        assert popped is pkt, "reverse out of order"

    # ------------------------------------------------------------------
    def _step(self, event: Event) -> None:
        """Serve each output link: forward one queued packet per step."""
        step = event.data["step"]
        served: list[tuple[int, dict[str, Any]]] = []
        qlen = 0
        for d in DIRECTIONS:
            q = self.queues[d]
            qlen += len(q)
            if q and self.exists[d]:
                pkt = q.pop(0)
                served.append((d, pkt))
                nxt = dict(pkt)
                nxt["step"] = step + 1
                self.send(step + 1 + ARRIVE_OFFSET, self.neighbors[d], B_ARRIVE, nxt)
        event.saved["served"] = served
        self.forwarded += len(served)
        self.queue_len_sum += qlen
        self.queue_samples += 1
        self.util_claimed += len(served)
        self.util_samples += sum(self.exists)
        self.send(step + 1 + STEP_OFFSET, self.id, B_STEP, {"step": step + 1})

    def _rc_step(self, event: Event) -> None:
        served = event.saved["served"]
        qlen = sum(len(q) for q in self.queues) + len(served)
        for d, pkt in reversed(served):
            self.queues[d].insert(0, pkt)
        self.forwarded -= len(served)
        self.queue_len_sum -= qlen
        self.queue_samples -= 1
        self.util_claimed -= len(served)
        self.util_samples -= sum(self.exists)

    # ------------------------------------------------------------------
    def _inject(self, event: Event) -> None:
        step = event.data["step"]
        self.send(step + 1 + INJECT_OFFSET, self.id, B_INJECT, {"step": step + 1})
        pending = (step + 1) - self.head_gen_step
        if pending <= 0:
            event.saved["inject"] = None
            return
        if self.outstanding >= self.cfg.window:
            self.window_blocked += 1
            event.saved["inject"] = ()
            return
        d = self.rng.integer(0, self.topo.num_nodes - 2)
        dest = d + 1 if d >= self.id else d
        wait = step - self.head_gen_step
        prev_max = self.max_inject_wait
        pkt = {
            "step": step,
            "dest": dest,
            "inject_step": step,
            "src": self.id,
        }
        qdir = self._enqueue(pkt)
        event.saved["inject"] = (qdir, wait, prev_max)
        self.outstanding += 1
        self.head_gen_step += 1
        self.injected += 1
        self.total_inject_wait += wait
        if wait > prev_max:
            self.max_inject_wait = wait

    def _rc_inject(self, event: Event) -> None:
        saved = event.saved["inject"]
        if saved is None:
            return
        if saved == ():
            self.window_blocked -= 1
            return
        qdir, wait, prev_max = saved
        self.queues[qdir].pop()
        self.outstanding -= 1
        self.head_gen_step -= 1
        self.injected -= 1
        self.total_inject_wait -= wait
        self.max_inject_wait = prev_max

    # ------------------------------------------------------------------
    def snapshot_state(self) -> Any:
        return (
            tuple(list(q) for q in self.queues),
            self.outstanding,
            self.head_gen_step,
            tuple(
                getattr(self, name)
                for name in (
                    "delivered",
                    "total_delivery_time",
                    "max_delivery_time",
                    "injected",
                    "total_inject_wait",
                    "max_inject_wait",
                    "window_blocked",
                    "forwarded",
                    "queue_len_sum",
                    "queue_samples",
                    "util_claimed",
                    "util_samples",
                )
            ),
        )

    def restore_state(self, snapshot: Any) -> None:
        queues, outstanding, head, counters = snapshot
        for q, saved in zip(self.queues, queues):
            q[:] = saved
        self.outstanding = outstanding
        self.head_gen_step = head
        for name, value in zip(
            (
                "delivered",
                "total_delivery_time",
                "max_delivery_time",
                "injected",
                "total_inject_wait",
                "max_inject_wait",
                "window_blocked",
                "forwarded",
                "queue_len_sum",
                "queue_samples",
                "util_claimed",
                "util_samples",
            ),
            counters,
        ):
            setattr(self, name, value)


class BufferedModel(Model):
    """The flow-controlled store-and-forward network model."""

    def __init__(self, cfg: BufferedConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else BufferedConfig()
        self.topo: GridTopology = (
            TorusTopology(self.cfg.n) if self.cfg.torus else MeshTopology(self.cfg.n)
        )
        self.grid = (self.cfg.n, self.cfg.n)
        num = self.cfg.num_routers
        frac = self.cfg.injector_fraction
        k = max(1, round(frac * num)) if frac > 0 else 0
        marks = [False] * num
        for i in range(k):
            marks[(i * num) // k] = True
        self.injectors = tuple(marks)

    def build(self) -> list[LogicalProcess]:
        return [
            BufferedRouterLP(i, self.cfg, self.topo, self.injectors[i])
            for i in range(self.cfg.num_routers)
        ]

    def collect_stats(self, lps: list[LogicalProcess]) -> dict[str, Any]:
        delivered = sum(lp.delivered for lp in lps)
        injected = sum(lp.injected for lp in lps)
        total_dt = sum(lp.total_delivery_time for lp in lps)
        total_wait = sum(lp.total_inject_wait for lp in lps)
        util_claimed = sum(lp.util_claimed for lp in lps)
        util_samples = sum(lp.util_samples for lp in lps)
        qsum = sum(lp.queue_len_sum for lp in lps)
        qn = sum(lp.queue_samples for lp in lps)
        return {
            "policy": "buffered-flow-control",
            "n": self.cfg.n,
            "window": self.cfg.window,
            "delivered": delivered,
            "injected": injected,
            "avg_delivery_time": total_dt / delivered if delivered else 0.0,
            "max_delivery_time": max((lp.max_delivery_time for lp in lps), default=0),
            "avg_inject_wait": total_wait / injected if injected else 0.0,
            "max_inject_wait": max((lp.max_inject_wait for lp in lps), default=0),
            "window_blocked": sum(lp.window_blocked for lp in lps),
            "forwarded": sum(lp.forwarded for lp in lps),
            "link_utilization": util_claimed / util_samples if util_samples else 0.0,
            "avg_queue_length": qsum / qn if qn else 0.0,
            "per_router": tuple(
                (lp.delivered, lp.injected, lp.forwarded, lp.outstanding)
                for lp in lps
            ),
        }
