"""Baseline deflection-routing policies.

The related-work comparison the report cites (Bartzis et al. [5]) evaluates
several hot-potato variants on 2-D tori.  These plug-compatible policies
run on the same :class:`~repro.hotpotato.router.RouterLP`:

* :class:`GreedyPolicy` — the memoryless greedy deflection router: take any
  free good link, else deflect.  No priorities, no state machine.  This is
  the natural strawman the four-state algorithm improves on (its worst-case
  delivery time is unbounded under adversarial contention).
* :class:`DimensionOrderPolicy` — every packet always follows its one-bend
  row-first path (the home-run path, but without the priority escort that
  protects it), deflecting when blocked.
* :class:`RandomDeflectionPolicy` — uniformly random choice among free good
  links, uniformly random deflection otherwise; randomisation breaks the
  livelock patterns deterministic tie-breaking can sustain.
* :class:`TwoChoicePolicy` — balanced-allocation ("power of two choices")
  routing after Anagnostopoulos, Kontoyiannis & Upfal: sample two
  candidate links among the directions that make progress, take the less
  loaded of the two, deflect when both are taken.  In a bufferless router
  a link's load within a step is binary — claimed or free — so "less
  loaded" degenerates to "the free one", with the first sample winning
  the tie when both are free.

All of them keep packets in the ``ACTIVE`` state so the router's
priority-staggered ROUTE scheduling degenerates to a single class, as in
a plain hot-potato network.  Every random draw goes through the LP's
:class:`~repro.rng.streams.ReversibleStream`, so all four run unmodified
(and bit-identically) on the sequential, conservative and Time Warp
engines.
"""

from __future__ import annotations

from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import (
    RouteOutcome,
    RoutingPolicy,
    first_free,
    first_free_good,
)
from repro.net import DIRECTIONS, Direction, GridTopology
from repro.rng.streams import ReversibleStream

__all__ = [
    "GreedyPolicy",
    "DimensionOrderPolicy",
    "RandomDeflectionPolicy",
    "TwoChoicePolicy",
    "POLICIES",
    "make_policy",
]


class GreedyPolicy(RoutingPolicy):
    """Memoryless greedy deflection: good link if free, else any link."""

    name = "greedy"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        d = first_free_good(topo, node, dest, free)
        if d is not None:
            return RouteOutcome(d, Priority.ACTIVE, False)
        d = first_free(free)
        assert d is not None, "bufferless invariant violated"
        return RouteOutcome(d, Priority.ACTIVE, True)


class DimensionOrderPolicy(RoutingPolicy):
    """Always request the one-bend row-first hop; deflect when blocked."""

    name = "dimension-order"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        want = topo.homerun_dir(node, dest)
        assert want is not None, "packet routed at its own destination"
        if free[want]:
            return RouteOutcome(want, Priority.ACTIVE, False)
        # Blocked off the preferred hop: any other good link still counts
        # as progress; otherwise deflect.
        d = first_free_good(topo, node, dest, free)
        if d is not None:
            return RouteOutcome(d, Priority.ACTIVE, False)
        d = first_free(free)
        assert d is not None, "bufferless invariant violated"
        return RouteOutcome(d, Priority.ACTIVE, True)


class RandomDeflectionPolicy(RoutingPolicy):
    """Uniformly random choice among candidates (good first, then any)."""

    name = "random-deflection"

    @staticmethod
    def _pick(
        candidates: tuple[Direction, ...], rng: ReversibleStream
    ) -> Direction:
        if len(candidates) == 1:
            # No draw for a forced choice keeps the RNG stream lean.
            return candidates[0]
        return candidates[rng.integer(0, len(candidates) - 1)]

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        good = tuple(d for d in topo.good_dirs(node, dest) if free[d])
        if good:
            return RouteOutcome(self._pick(good, rng), Priority.ACTIVE, False)
        anyfree = tuple(d for d in DIRECTIONS if free[d])
        assert anyfree, "bufferless invariant violated"
        return RouteOutcome(self._pick(anyfree, rng), Priority.ACTIVE, True)


class TwoChoicePolicy(RoutingPolicy):
    """Balanced-allocation routing: two sampled candidates, less loaded wins.

    The classic two-choice allocation samples two bins uniformly (with
    replacement) and places the ball in the less loaded one.  Adapted to a
    bufferless deflection router, the bins are the *progress* directions
    toward the destination and a link's load within a step is its claimed
    bit: sample two good directions, take a free one (the first sample
    wins when both are free — the arbitrary tie-break of the allocation
    literature), and deflect onto the first free link in compass order
    when both candidates are already claimed.  Both draws come batched
    from the reversible stream (one ``integer2`` call), so the policy is
    rollback-exact and engine-independent like everything else here.
    """

    name = "two-choice"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        good = topo.route_info(node, dest)[0]
        if len(good) > 1:
            hi = len(good) - 1
            i, j = rng.integer2(0, hi, 0, hi)
            a, b = good[i], good[j]
        else:
            # One progress direction: a forced "choice" draws nothing,
            # keeping the stream lean (cf. RandomDeflectionPolicy._pick).
            a = b = good[0]
        if free[a]:
            return RouteOutcome(a, Priority.ACTIVE, False)
        if free[b]:
            return RouteOutcome(b, Priority.ACTIVE, False)
        # Both candidates loaded: deflect.  first_free may still land on
        # an unsampled good link; count it as progress, not a deflection.
        d = first_free(free)
        assert d is not None, "bufferless invariant violated"
        return RouteOutcome(d, Priority.ACTIVE, d not in good)


#: Routing-policy registry: the single place scenario files and CLIs
#: resolve a policy name to its class ("busch" is the paper's four-state
#: algorithm; the rest are the baselines above).
def _policy_registry() -> dict:
    from repro.hotpotato.policy import BuschHotPotatoPolicy

    return {
        "busch": BuschHotPotatoPolicy,
        GreedyPolicy.name: GreedyPolicy,
        DimensionOrderPolicy.name: DimensionOrderPolicy,
        RandomDeflectionPolicy.name: RandomDeflectionPolicy,
        TwoChoicePolicy.name: TwoChoicePolicy,
    }


POLICIES: dict = _policy_registry()


def make_policy(name: str):
    """Instantiate a registered routing policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls()
