"""Baseline deflection-routing policies.

The related-work comparison the report cites (Bartzis et al. [5]) evaluates
several hot-potato variants on 2-D tori.  These plug-compatible policies
run on the same :class:`~repro.hotpotato.router.RouterLP`:

* :class:`GreedyPolicy` — the memoryless greedy deflection router: take any
  free good link, else deflect.  No priorities, no state machine.  This is
  the natural strawman the four-state algorithm improves on (its worst-case
  delivery time is unbounded under adversarial contention).
* :class:`DimensionOrderPolicy` — every packet always follows its one-bend
  row-first path (the home-run path, but without the priority escort that
  protects it), deflecting when blocked.
* :class:`RandomDeflectionPolicy` — uniformly random choice among free good
  links, uniformly random deflection otherwise; randomisation breaks the
  livelock patterns deterministic tie-breaking can sustain.

All of them keep packets in the ``ACTIVE`` state so the router's
priority-staggered ROUTE scheduling degenerates to a single class, as in
a plain hot-potato network.
"""

from __future__ import annotations

from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import (
    RouteOutcome,
    RoutingPolicy,
    first_free,
    first_free_good,
)
from repro.net import DIRECTIONS, Direction, GridTopology
from repro.rng.streams import ReversibleStream

__all__ = ["GreedyPolicy", "DimensionOrderPolicy", "RandomDeflectionPolicy"]


class GreedyPolicy(RoutingPolicy):
    """Memoryless greedy deflection: good link if free, else any link."""

    name = "greedy"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        d = first_free_good(topo, node, dest, free)
        if d is not None:
            return RouteOutcome(d, Priority.ACTIVE, False)
        d = first_free(free)
        assert d is not None, "bufferless invariant violated"
        return RouteOutcome(d, Priority.ACTIVE, True)


class DimensionOrderPolicy(RoutingPolicy):
    """Always request the one-bend row-first hop; deflect when blocked."""

    name = "dimension-order"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        want = topo.homerun_dir(node, dest)
        assert want is not None, "packet routed at its own destination"
        if free[want]:
            return RouteOutcome(want, Priority.ACTIVE, False)
        # Blocked off the preferred hop: any other good link still counts
        # as progress; otherwise deflect.
        d = first_free_good(topo, node, dest, free)
        if d is not None:
            return RouteOutcome(d, Priority.ACTIVE, False)
        d = first_free(free)
        assert d is not None, "bufferless invariant violated"
        return RouteOutcome(d, Priority.ACTIVE, True)


class RandomDeflectionPolicy(RoutingPolicy):
    """Uniformly random choice among candidates (good first, then any)."""

    name = "random-deflection"

    @staticmethod
    def _pick(
        candidates: tuple[Direction, ...], rng: ReversibleStream
    ) -> Direction:
        if len(candidates) == 1:
            # No draw for a forced choice keeps the RNG stream lean.
            return candidates[0]
        return candidates[rng.integer(0, len(candidates) - 1)]

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        good = tuple(d for d in topo.good_dirs(node, dest) if free[d])
        if good:
            return RouteOutcome(self._pick(good, rng), Priority.ACTIVE, False)
        anyfree = tuple(d for d in DIRECTIONS if free[d])
        assert anyfree, "bufferless invariant violated"
        return RouteOutcome(self._pick(anyfree, rng), Priority.ACTIVE, True)
