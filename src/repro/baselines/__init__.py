"""Baseline algorithms the hot-potato algorithm is compared against.

* Deflection policies (:mod:`repro.baselines.policies`) plug into the same
  bufferless router as the Busch et al. algorithm;
* the buffered, flow-controlled store-and-forward network
  (:mod:`repro.baselines.buffered`) provides the "with flow control"
  contrast implied by the paper's title.
"""

from repro.baselines.buffered import BufferedConfig, BufferedModel, BufferedRouterLP
from repro.baselines.policies import (
    POLICIES,
    DimensionOrderPolicy,
    GreedyPolicy,
    RandomDeflectionPolicy,
    TwoChoicePolicy,
    make_policy,
)

__all__ = [
    "BufferedConfig",
    "BufferedModel",
    "BufferedRouterLP",
    "DimensionOrderPolicy",
    "GreedyPolicy",
    "POLICIES",
    "RandomDeflectionPolicy",
    "TwoChoicePolicy",
    "make_policy",
]
