"""repro — Routing without Flow Control, reproduced.

A from-scratch Python implementation of the system analysed in
"Routing without Flow Control: Hot-Potato Routing Simulation Analysis"
(Bush, RPI), the simulation study of Busch, Herlihy & Wattenhofer's SPAA
2001 hot-potato routing algorithm:

* :mod:`repro.core` — a ROSS-style optimistic parallel discrete-event
  kernel (Time Warp, reverse computation, GVT, kernel processes) plus a
  sequential oracle engine;
* :mod:`repro.net` — torus/mesh network geometry;
* :mod:`repro.hotpotato` — the hot-potato routing algorithm itself;
* :mod:`repro.baselines` — comparison routing algorithms;
* :mod:`repro.experiments` — runners regenerating every figure in the
  report's evaluation.

Quickstart::

    from repro import HotPotatoConfig, HotPotatoModel, run_sequential

    cfg = HotPotatoConfig(n=8, duration=100.0, injector_fraction=0.5)
    result = run_sequential(HotPotatoModel(cfg), cfg.duration)
    print(result.model_stats["avg_delivery_time"])
"""

from repro.core import (
    ConservativeConfig,
    ConservativeKernel,
    CostModel,
    EngineConfig,
    Event,
    LogicalProcess,
    Model,
    RunResult,
    RunStats,
    SequentialEngine,
    TimeWarpKernel,
    Tracer,
    run_conservative,
    run_optimistic,
    run_sequential,
)
from repro.errors import (
    ConfigurationError,
    ModelError,
    ReproError,
    RollbackError,
    SchedulingError,
    TopologyError,
)
from repro.net import Direction, MeshTopology, TorusTopology
from repro.rng import ReversibleStream, derive_seed
from repro.version import __version__
from repro.vt import EventKey

__all__ = [
    "ConfigurationError",
    "ConservativeConfig",
    "ConservativeKernel",
    "CostModel",
    "Direction",
    "EngineConfig",
    "Event",
    "EventKey",
    "HotPotatoConfig",
    "HotPotatoModel",
    "LogicalProcess",
    "MeshTopology",
    "Model",
    "ModelError",
    "ReproError",
    "ReversibleStream",
    "RollbackError",
    "RunResult",
    "RunStats",
    "SchedulingError",
    "SequentialEngine",
    "TimeWarpKernel",
    "TopologyError",
    "TorusTopology",
    "Tracer",
    "__version__",
    "derive_seed",
    "run_conservative",
    "run_optimistic",
    "run_sequential",
]


def __getattr__(name: str):
    # Lazy: the hot-potato model pulls in the whole model stack; keep
    # `import repro` light for kernel-only users while still exposing the
    # headline classes at top level.
    if name in ("HotPotatoConfig", "HotPotatoModel", "HotPotatoSimulation"):
        import repro.hotpotato as _hp

        return getattr(_hp, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
