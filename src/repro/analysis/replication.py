"""Replication statistics: multi-seed runs with confidence intervals.

The report's figures are single-seed point estimates.  Because every
engine here is deterministic *given* a seed, proper replication is cheap:
run R independent seeds and summarise with a Student-t confidence
interval.  The experiment runners accept ``--replications`` and attach the
half-width to each cell so a reader can tell signal from seed noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

__all__ = ["Estimate", "summarize", "replicate"]


@dataclass(frozen=True)
class Estimate:
    """A replicated measurement: mean ± half-width at the given confidence."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Estimate") -> bool:
        """True when the intervals intersect (difference not resolved)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def summarize(samples: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Student-t confidence interval over independent replications.

    With a single sample the half-width is 0 by convention (a point
    estimate), matching the report's methodology.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    xs = np.asarray(list(samples), dtype=float)
    if xs.size == 0:
        raise ValueError("no samples")
    mean = float(xs.mean())
    if xs.size == 1:
        return Estimate(mean, 0.0, 1, confidence)
    sem = float(xs.std(ddof=1) / np.sqrt(xs.size))
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=xs.size - 1))
    return Estimate(mean, t * sem, int(xs.size), confidence)


def replicate(
    run: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Estimate:
    """Run ``run(seed)`` for every seed and summarise the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize([run(seed) for seed in seeds], confidence)
