"""ASCII line charts — regenerate the *figures*, not just their tables.

The report's evaluation is a set of line charts; on a terminal-only
machine the closest honest artifact is an ASCII rendering.  Minimal
feature set: multiple named series over a shared numeric x-axis, linear
y-scaling, per-series glyphs, a legend, and y-axis labels.

>>> print(plot({"a": [(1, 1.0), (2, 4.0), (3, 9.0)]}, height=5))
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["plot"]

#: Per-series glyphs, assigned in insertion order.
GLYPHS = "*o+x#@%&"


def plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Render named ``[(x, y), ...]`` series as an ASCII chart.

    Points are mapped onto a ``width`` × ``height`` grid with linear
    scaling on both axes; later series overwrite earlier ones where they
    collide.  Returns the chart as a multi-line string.
    """
    if not series:
        raise ValueError("nothing to plot")
    if height < 2 or width < 8:
        raise ValueError("chart too small to be readable")
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        raise ValueError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, pts) in zip(GLYPHS, series.items()):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    label_hi = f"{y_hi:g}"
    label_lo = f"{y_lo:g}"
    pad = max(len(label_hi), len(label_lo))
    lines: list[str] = []
    if title:
        lines.append(title)
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = label_hi.rjust(pad)
        elif i == height - 1:
            label = label_lo.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo:g}" + f"{x_hi:g}".rjust(width - len(f"{x_lo:g}"))
    )
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(GLYPHS, series.keys())
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
