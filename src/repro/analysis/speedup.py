"""Speed-up and efficiency arithmetic for Figs 5 and 6.

"Linear speed-up means that a simulator running with four processors is
four times as fast as a simulator running with one processor ... The
speed-up of a parallel simulation in relationship to linear speed-up is the
simulation's efficiency." (§4.2.2)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedupPoint", "speedup", "efficiency"]


def speedup(sequential_rate: float, parallel_rate: float) -> float:
    """Event-rate ratio parallel/sequential (both in events/second)."""
    if sequential_rate <= 0:
        raise ValueError(f"sequential rate must be positive, got {sequential_rate}")
    return parallel_rate / sequential_rate


def efficiency(sequential_rate: float, parallel_rate: float, n_pes: int) -> float:
    """Speed-up per processor: 1.0 is linear speed-up."""
    if n_pes < 1:
        raise ValueError(f"n_pes must be >= 1, got {n_pes}")
    return speedup(sequential_rate, parallel_rate) / n_pes


@dataclass(frozen=True)
class SpeedupPoint:
    """One (network size, PE count) measurement for Figs 5/6."""

    n: int
    n_pes: int
    event_rate: float
    sequential_rate: float

    @property
    def speedup(self) -> float:
        return speedup(self.sequential_rate, self.event_rate)

    @property
    def efficiency(self) -> float:
        return efficiency(self.sequential_rate, self.event_rate, self.n_pes)
