"""Time-series helpers for per-step delivery logs.

The report's statistics are whole-run averages, which mix the warm-up
transient (the initial network fill draining) with steady state.  These
helpers quantify that: bucket a delivery log by time step, smooth it, and
estimate where the warm-up ends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeliverySeries", "build_series", "warmup_end"]


@dataclass(frozen=True)
class DeliverySeries:
    """Per-step aggregates of a delivery log."""

    #: Step numbers (dense range, zero-filled where nothing arrived).
    steps: tuple[int, ...]
    #: Packets delivered in each step.
    counts: tuple[int, ...]
    #: Mean delivery latency of the packets delivered in each step
    #: (0.0 for empty steps).
    mean_latency: tuple[float, ...]

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    def throughput(self) -> float:
        """Average packets delivered per step over the whole series."""
        return self.total / len(self.steps) if self.steps else 0.0


def build_series(log: list[tuple[int, int]]) -> DeliverySeries:
    """Bucket a ``[(delivery_step, latency), ...]`` log by step.

    The log need not be sorted (optimistic runs commit out of step order
    across KPs).
    """
    if not log:
        return DeliverySeries((), (), ())
    arr = np.asarray(log, dtype=float)
    steps = arr[:, 0].astype(int)
    latencies = arr[:, 1]
    lo, hi = int(steps.min()), int(steps.max())
    size = hi - lo + 1
    counts = np.zeros(size, dtype=int)
    sums = np.zeros(size, dtype=float)
    np.add.at(counts, steps - lo, 1)
    np.add.at(sums, steps - lo, latencies)
    means = np.divide(sums, counts, out=np.zeros(size), where=counts > 0)
    return DeliverySeries(
        steps=tuple(range(lo, hi + 1)),
        counts=tuple(int(c) for c in counts),
        mean_latency=tuple(float(m) for m in means),
    )


def warmup_end(
    series: DeliverySeries, window: int = 5, tolerance: float = 0.25
) -> int | None:
    """First step whose ``window``-step rolling throughput is within

    ``tolerance`` (relative) of the steady-state throughput, estimated
    from the second half of the series.  Returns ``None`` when the series
    is too short or never settles.
    """
    counts = np.asarray(series.counts, dtype=float)
    if counts.size < 2 * window:
        return None
    steady = counts[counts.size // 2 :].mean()
    if steady <= 0:
        return None
    kernel = np.ones(window) / window
    rolling = np.convolve(counts, kernel, mode="valid")
    within = np.abs(rolling - steady) <= tolerance * steady
    idx = np.argmax(within)
    if not within[idx]:
        return None
    return series.steps[idx]
