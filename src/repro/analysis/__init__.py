"""Post-run analysis helpers: linear fits, speed-up arithmetic, and

delivery time-series (warm-up detection, per-step throughput).
"""

from repro.analysis.asciichart import plot
from repro.analysis.linfit import LinearFit, fit_linear
from repro.analysis.replication import Estimate, replicate, summarize
from repro.analysis.speedup import SpeedupPoint, efficiency, speedup
from repro.analysis.timeseries import DeliverySeries, build_series, warmup_end

__all__ = [
    "DeliverySeries",
    "Estimate",
    "LinearFit",
    "SpeedupPoint",
    "build_series",
    "efficiency",
    "fit_linear",
    "plot",
    "replicate",
    "speedup",
    "summarize",
    "warmup_end",
]
