"""Linear-fit checks for the O(N) delivery/injection claims.

The algorithm "guarantees an expected O(n) delivery and injection time"
(§4.1); the report eyeballs linearity from its graphs.  We quantify it:
least-squares fit plus R², so the test suite can assert that delivery time
grows linearly (high R² for the linear model) rather than, say,
quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "fit_linear"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares straight-line fit ``y ≈ slope*x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.slope * x + self.intercept


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares fit of a line through ``(xs, ys)``.

    Raises ``ValueError`` for fewer than two points or constant ``xs``.
    R² is 1.0 for a perfect fit; for constant ``ys`` the fit is exact and
    R² is defined as 1.0.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} xs vs {y.size} ys")
    if x.size < 2:
        raise ValueError("need at least two points to fit a line")
    if np.ptp(x) == 0.0:
        raise ValueError("xs are constant; slope undefined")
    slope, intercept = np.polyfit(x, y, 1)
    residuals = y - (slope * x + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(float(slope), float(intercept), r2)
