"""Self-healing runtime: liveness watchdog, degradation ladder, recovery.

The package has three layers:

* :mod:`repro.health.watchdog` — the in-run monitor.  Attach a
  :class:`Watchdog` to any engine via ``engine.attach_health(wd)``; its
  detectors (GVT stall, livelock, rollback thrash, memory growth) run at
  quiescent boundaries only, so the fused fast paths stay installed.
* :mod:`repro.health.recovery` — the out-of-run actor.
  :func:`run_with_recovery` rebuilds/restores/falls back per a
  :class:`RecoveryPolicy` when the watchdog escalates past the throttle
  rung.
* :mod:`repro.health.forensics` — the post-mortem:
  :func:`write_forensics_bundle` gathers recording, snapshot, critpath
  and the watchdog log when the ladder aborts.

The chaos soak harness that exercises all of this end to end lives in
:mod:`repro.chaos` (``python -m repro.chaos``); tuning guidance is in
``docs/HEALTH.md``.
"""

from repro.errors import HealthAbort, HealthIntervention
from repro.health.forensics import write_forensics_bundle
from repro.health.recovery import (
    FALLBACK_CHAIN,
    RecoveryPolicy,
    RecoveryResult,
    run_with_recovery,
)
from repro.health.watchdog import (
    DEFAULT_LADDER,
    HealthConfig,
    HealthEvent,
    Watchdog,
)

__all__ = [
    "DEFAULT_LADDER",
    "FALLBACK_CHAIN",
    "HealthAbort",
    "HealthConfig",
    "HealthEvent",
    "HealthIntervention",
    "RecoveryPolicy",
    "RecoveryResult",
    "Watchdog",
    "run_with_recovery",
    "write_forensics_bundle",
]
