"""The liveness watchdog: boundary-rate detectors over a running engine.

The paper's central claim is that hot-potato routing stays live without
flow control; Faber's livelock-free schemes give the correctness foil —
an *absolute upper bound* on packet delivery time that a healthy run
must respect.  This module is the runtime half of that argument: a
:class:`Watchdog` attached through the Executor ABI
(``engine.attach_health(wd)``) watches a run for the four ways a
simulation goes sick and escalates through a degradation ladder when one
trips.

Detectors (all evaluated at GVT / scheduler-round / event-interval
*boundaries*, never on the per-event path — a detached watchdog costs
nothing and an attached one keeps the fused fast paths installed):

* **GVT stall** — the engine's virtual position (GVT, the conservative
  horizon, or the sequential clock) has not advanced for a wall-clock
  and/or boundary-count deadline.
* **Livelock** — some in-flight packet's age exceeds a Faber-style
  delivery bound derived from the topology diameter
  (``livelock_factor * diameter + livelock_slack`` steps).  Packet ages
  are read from pending-event payloads (the ``inject_step`` field every
  hot-potato packet carries); models without packet payloads simply
  never trip it.
* **Rollback thrash** — the wasted-work fraction (events rolled back per
  event processed, over a boundary window — the same attribution
  ``repro.obs thrash`` reports offline) exceeds a threshold.
* **Memory growth** — live event counts (pending + processed-but-
  uncommitted) exceed a budget.

The degradation ladder (``HealthConfig.ladder``) is walked one rung per
trip, with a cooldown between rungs so each remedy gets time to work:

1. ``throttle`` — tighten the optimistic throttle (halve the optimism
   factor; repeats until the factor hits its floor).  Applies only to an
   optimistic engine running with ``adaptive=True``; other engines skip
   this rung.  Committed results are invariant to optimism, so this is
   always safe.
2. ``restore`` / ``fallback`` / ``abort`` — actions the engine cannot
   apply to itself: the watchdog raises
   :class:`~repro.errors.HealthIntervention` out of ``run()`` at the
   boundary and :func:`repro.health.run_with_recovery` acts on it
   (restore the last good snapshot with bounded retries, rebuild on the
   next engine down, or abort with a forensics bundle).

Every trip is appended to ``Watchdog.events`` and — when a sink is
attached — written as a schema-additive ``health`` JSONL line, so
``repro.obs watch`` can display watchdog state live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, HealthIntervention

__all__ = ["HealthConfig", "HealthEvent", "Watchdog", "DEFAULT_LADDER"]

#: Default escalation order; see the module docstring.
DEFAULT_LADDER = ("throttle", "restore", "fallback", "abort")

#: Actions the watchdog can apply in-run (everything else is raised as a
#: HealthIntervention for the recovery runner).
_IN_RUN_ACTIONS = frozenset({"throttle"})

_KNOWN_ACTIONS = frozenset({"throttle", "restore", "fallback", "abort"})


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and deadlines for the watchdog's detectors.

    The defaults are deliberately lenient: a healthy run — including the
    bench smoke workloads and the golden-seed determinism fixtures —
    must produce **zero** health events at default thresholds (a test
    pins this).  Tighten them per run when hunting a specific sickness.
    """

    #: Wall-clock seconds without virtual progress before ``gvt_stall``
    #: trips (0 disables the wall deadline).
    stall_wall_seconds: float = 30.0
    #: Boundaries without virtual progress before ``gvt_stall`` trips
    #: (0 disables the boundary deadline).
    stall_boundaries: int = 512
    #: Faber-style delivery bound: an in-flight packet older than
    #: ``livelock_factor * diameter + livelock_slack`` virtual steps
    #: trips ``livelock``.  Used only when the model's topology exposes
    #: ``diameter()`` (or ``livelock_bound`` overrides it).
    livelock_factor: float = 8.0
    livelock_slack: float = 32.0
    #: Explicit age bound in steps; overrides the diameter formula when
    #: set (also enables the detector for models without a topology).
    livelock_bound: float | None = None
    #: Scan pending events for over-age packets every N boundaries (the
    #: scan is O(live events), so it is paced; 0 disables the detector).
    livelock_check_every: int = 8
    #: Wasted-work fraction (rolled back / processed, per boundary
    #: window) above which ``rollback_thrash`` trips.
    thrash_fraction: float = 0.95
    #: Ignore windows with fewer processed events than this (small
    #: windows make the fraction meaningless).
    thrash_min_processed: int = 4096
    #: Live event budget (pending + processed-but-uncommitted) above
    #: which ``memory_growth`` trips.
    memory_budget_events: int = 2_000_000
    #: Boundaries to wait after taking an action before any detector may
    #: trip again (gives the remedy time to take effect).
    cooldown_boundaries: int = 8
    #: Throttle-rung applications before escalating (the adaptive
    #: throttle may raise the factor back between trips, so "factor at
    #: floor" alone is not a termination guarantee).
    throttle_steps: int = 4
    #: Escalation order; rungs an engine cannot apply are skipped.
    ladder: tuple[str, ...] = DEFAULT_LADDER
    #: Test/chaos hook: force a synthetic trip of detector ``forced`` at
    #: this boundary count (None = never).  Lets the chaos harness drive
    #: deterministic watchdog-triggered recoveries without manufacturing
    #: a genuinely sick run.
    trip_at_boundary: int | None = None

    def __post_init__(self) -> None:
        if self.stall_wall_seconds < 0:
            raise ConfigurationError(
                f"stall_wall_seconds must be >= 0, got {self.stall_wall_seconds}"
            )
        if not 0.0 < self.thrash_fraction <= 1.0:
            raise ConfigurationError(
                f"thrash_fraction must be in (0, 1], got {self.thrash_fraction}"
            )
        unknown = [a for a in self.ladder if a not in _KNOWN_ACTIONS]
        if unknown:
            raise ConfigurationError(
                f"unknown ladder action(s) {unknown}; choose from "
                f"{sorted(_KNOWN_ACTIONS)}"
            )


@dataclass(frozen=True)
class HealthEvent:
    """One detector trip (and the ladder action taken for it)."""

    #: Which detector fired ("gvt_stall", "livelock", "rollback_thrash",
    #: "memory_growth", or "forced" for the test hook).
    detector: str
    #: Ladder action taken ("throttle", "restore", "fallback", "abort").
    action: str
    #: Engine kind at the time ("sequential"/"conservative"/"optimistic").
    engine: str
    #: Boundary count when the detector fired.
    boundary: int
    #: Virtual position (GVT / horizon / sequential clock).
    position: float
    #: Wall-clock seconds since the watchdog was attached.
    wall: float
    #: Detector-specific measurements (ages, fractions, counts ...).
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSONL payload for the ``health`` line type (schema 5)."""
        return {
            "detector": self.detector,
            "action": self.action,
            "engine": self.engine,
            "boundary": self.boundary,
            "position": self.position,
            "wall": self.wall,
            **self.detail,
        }

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (
            f"[{self.detector}] engine={self.engine} boundary={self.boundary} "
            f"position={self.position:g} wall={self.wall:.1f}s -> {self.action}"
            + (f" ({extra})" if extra else "")
        )


class Watchdog:
    """Liveness monitor attachable to any engine (see module docstring).

    Parameters
    ----------
    config:
        Detector thresholds; ``None`` uses the lenient defaults.
    sink:
        Optional :class:`~repro.obs.recorder.JsonlSink` (or anything with
        a ``write_health(dict)`` method); every event is written through
        as a ``health`` line.
    clock:
        Wall-clock source (injectable for tests; default
        ``time.monotonic``).
    """

    def __init__(self, config: HealthConfig | None = None, *,
                 sink=None, clock=time.monotonic) -> None:
        self.cfg = config if config is not None else HealthConfig()
        self.sink = sink
        self.clock = clock
        #: Every detector trip, in order.
        self.events: list[HealthEvent] = []
        #: Boundaries observed (all engines share one counter).
        self.boundaries = 0
        #: Current ladder rung index.
        self.rung = 0
        self._engine_kind = "unattached"
        self._bound = None  # resolved livelock age bound, or None
        self._t0 = clock()
        # Progress tracking.
        self._last_position = float("-inf")
        self._progress_boundary = 0
        self._progress_wall = self._t0
        # Thrash window baselines (optimistic only).
        self._last_processed = 0
        self._last_rolled = 0
        # Cooldown bookkeeping.
        self._quiet_until = 0
        self._forced_done = False
        self._throttle_steps = 0

    # ------------------------------------------------------------------
    # Attachment.
    # ------------------------------------------------------------------
    def bind(self, engine) -> None:
        """Called by ``attach_health``: resolve per-engine parameters.

        Re-binding (a restore or fallback attempt) resets the per-run
        progress baselines — a fresh engine starting from scratch or
        from a snapshot must not inherit the sick run's position — but
        keeps the ladder rung and event log, so repeated sickness
        escalates instead of looping.
        """
        self._engine_kind = engine.kind
        self._t0 = self.clock()
        self._progress_wall = self._t0
        self._progress_boundary = self.boundaries
        self._last_position = float("-inf")
        self._last_processed = 0
        self._last_rolled = 0
        cfg = self.cfg
        if cfg.livelock_bound is not None:
            self._bound = cfg.livelock_bound
        else:
            topo = getattr(engine.model, "topo", None)
            diameter = getattr(topo, "diameter", None)
            if diameter is not None:
                self._bound = cfg.livelock_factor * diameter() + cfg.livelock_slack
            else:
                self._bound = None

    @property
    def livelock_bound(self) -> float | None:
        """Resolved packet-age bound in steps (None = detector off)."""
        return self._bound

    # ------------------------------------------------------------------
    # Engine boundary hooks (one per engine kind, mirroring
    # ``_sample_metrics``: cheap aggregation, no per-event work).
    # ------------------------------------------------------------------
    def boundary_optimistic(self, kernel) -> None:
        """One GVT boundary of a Time Warp kernel."""
        self.boundaries += 1
        position = kernel.gvt
        self._check_forced(position, engine=kernel)
        self._check_stall(position, engine=kernel)
        cfg = self.cfg
        processed = sum(pe.stats.processed for pe in kernel.pes)
        rolled = sum(kp.stats.events_rolled_back for kp in kernel.kps)
        d_proc = processed - self._last_processed
        d_roll = rolled - self._last_rolled
        self._last_processed, self._last_rolled = processed, rolled
        if d_proc >= cfg.thrash_min_processed and d_proc > 0:
            fraction = d_roll / d_proc
            if fraction > cfg.thrash_fraction:
                self._trip(
                    "rollback_thrash", position,
                    {"wasted_fraction": round(fraction, 4),
                     "window_processed": d_proc, "window_rolled_back": d_roll},
                    engine=kernel,
                )
        pending = sum(len(pe.pending) for pe in kernel.pes)
        depth = sum(len(kp.processed) for kp in kernel.kps)
        if pending + depth > cfg.memory_budget_events:
            self._trip(
                "memory_growth", position,
                {"pending": pending, "processed_depth": depth,
                 "budget": cfg.memory_budget_events},
                engine=kernel,
            )
        self._check_livelock(
            position, lambda: (ev for pe in kernel.pes for ev in pe.pending),
            engine=kernel,
        )

    def boundary_conservative(self, kernel) -> None:
        """One scheduler round of the conservative kernel."""
        self.boundaries += 1
        position = min(pe.next_ts() for pe in kernel.pes)
        self._check_forced(position)
        self._check_stall(position)
        pending = sum(len(pe.pending) for pe in kernel.pes)
        if pending > self.cfg.memory_budget_events:
            self._trip(
                "memory_growth", position,
                {"pending": pending, "processed_depth": 0,
                 "budget": self.cfg.memory_budget_events},
            )
        self._check_livelock(
            position, lambda: (ev for pe in kernel.pes for ev in pe.pending)
        )

    def boundary_sequential(self, engine, now: float) -> None:
        """One event-interval boundary of the sequential engine."""
        self.boundaries += 1
        self._check_forced(now)
        self._check_stall(now)
        pending = len(engine.pending)
        if pending > self.cfg.memory_budget_events:
            self._trip(
                "memory_growth", now,
                {"pending": pending, "processed_depth": 0,
                 "budget": self.cfg.memory_budget_events},
            )
        self._check_livelock(now, lambda: iter(engine.pending))

    # ------------------------------------------------------------------
    # Detectors.
    # ------------------------------------------------------------------
    def _check_forced(self, position: float, *, engine=None) -> None:
        cfg = self.cfg
        if (cfg.trip_at_boundary is not None and not self._forced_done
                and self.boundaries >= cfg.trip_at_boundary):
            self._forced_done = True
            self._trip("forced", position,
                       {"trip_at_boundary": cfg.trip_at_boundary},
                       engine=engine)

    def _check_stall(self, position: float, *, engine=None) -> None:
        cfg = self.cfg
        if position > self._last_position:
            self._last_position = position
            self._progress_boundary = self.boundaries
            self._progress_wall = self.clock()
            return
        stuck_boundaries = self.boundaries - self._progress_boundary
        stuck_wall = self.clock() - self._progress_wall
        if ((cfg.stall_boundaries and stuck_boundaries >= cfg.stall_boundaries)
                or (cfg.stall_wall_seconds
                    and stuck_wall >= cfg.stall_wall_seconds)):
            # Re-arm so the next trip needs a fresh deadline's worth of
            # stagnation rather than firing every boundary.
            self._progress_boundary = self.boundaries
            self._progress_wall = self.clock()
            self._trip(
                "gvt_stall", position,
                {"stuck_boundaries": stuck_boundaries,
                 "stuck_wall": round(stuck_wall, 3)},
                engine=engine,
            )

    def _check_livelock(self, position: float, events, *, engine=None) -> None:
        cfg = self.cfg
        bound = self._bound
        if (bound is None or not cfg.livelock_check_every
                or self.boundaries % cfg.livelock_check_every):
            return
        worst = -1.0
        for ev in events():
            data = ev.data
            if type(data) is dict:
                inject = data.get("inject_step")
            elif type(data) is tuple and len(data) >= 7:
                # SoA payload: (step, dest, priority, inject_step, ...).
                inject = data[3]
            else:
                continue
            if inject is None:
                continue
            age = position - inject
            if age > worst:
                worst = age
        if worst > bound:
            self._trip(
                "livelock", position,
                {"oldest_packet_age": worst, "bound": bound},
                engine=engine,
            )

    # ------------------------------------------------------------------
    # The degradation ladder.
    # ------------------------------------------------------------------
    def _trip(self, detector: str, position: float, detail: dict,
              *, engine=None) -> None:
        if self.boundaries < self._quiet_until:
            return
        action = self._next_action(engine)
        event = HealthEvent(
            detector=detector,
            action=action,
            engine=self._engine_kind,
            boundary=self.boundaries,
            position=position,
            wall=self.clock() - self._t0,
            detail=detail,
        )
        self.events.append(event)
        if self.sink is not None:
            self.sink.write_health(event.to_dict())
        self._quiet_until = self.boundaries + self.cfg.cooldown_boundaries
        if action == "throttle":
            self._tighten_throttle(engine)
            return
        raise HealthIntervention(action, event)

    def _next_action(self, engine) -> str:
        """Current ladder rung, skipping rungs this engine cannot apply."""
        ladder = self.cfg.ladder
        while self.rung < len(ladder) - 1:
            action = ladder[self.rung]
            if action == "throttle":
                throttle = getattr(engine, "throttle", None)
                if (throttle is None
                        or throttle.factor <= throttle.cfg.floor
                        or self._throttle_steps >= self.cfg.throttle_steps):
                    self.rung += 1
                    continue
            return action
        return ladder[-1] if ladder else "abort"

    def _tighten_throttle(self, kernel) -> None:
        """Rung 1: halve the optimism factor (respecting its floor)."""
        throttle = kernel.throttle
        new = max(throttle.cfg.floor, throttle.factor / 2.0)
        if new != throttle.factor:
            throttle.factor = new
            throttle.adjustments += 1
        self._throttle_steps += 1
        if new <= throttle.cfg.floor or self._throttle_steps >= self.cfg.throttle_steps:
            # Throttle exhausted; next trip escalates.
            self.rung += 1
