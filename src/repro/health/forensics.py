"""Forensics bundle: everything a post-mortem needs, in one directory.

When the degradation ladder reaches ``abort`` the run is dead, but the
evidence is not: the telemetry recording, the span stream, the last good
snapshot, and the watchdog's own event log together tell the story of
how the run got sick.  :func:`write_forensics_bundle` gathers those
pointers (and a critical-path report, when a committed trace is on disk)
into ``<dir>/forensics.json`` + ``critpath.json`` so ``repro.obs`` can
pick the investigation up offline::

    python -m repro.obs summary <recording>     # from the manifest
    python -m repro.obs critpath <recording>    # matches critpath.json
    python -m repro.ckpt info <snapshot dir>    # last good snapshot

This module is deliberately append-only and exception-tolerant: a
forensics write must never mask the failure it is documenting.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["write_forensics_bundle"]

#: Manifest format version (bump on incompatible changes).
BUNDLE_VERSION = 1


def write_forensics_bundle(
    directory: str | Path,
    *,
    event=None,
    watchdog=None,
    ckpt=None,
    recordings=(),
    actions=(),
    extra=None,
) -> Path:
    """Write a forensics bundle and return the manifest path.

    Parameters
    ----------
    directory:
        Bundle directory (created if missing).
    event:
        The :class:`~repro.health.HealthEvent` that triggered the abort.
    watchdog:
        The :class:`~repro.health.Watchdog`; its full event log goes in
        the manifest.
    ckpt:
        The run's :class:`~repro.ckpt.Checkpointer`; contributes the
        snapshot directory and last snapshot path.
    recordings:
        Telemetry file paths (recording / spans JSONL) to reference.  A
        readable recording with committed trace lines also yields a
        ``critpath.json`` next to the manifest.
    actions:
        The recovery runner's action journal.
    extra:
        Free-form dict merged into the manifest (campaign seed,
        episode id ...).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "version": BUNDLE_VERSION,
        "trigger": event.to_dict() if event is not None else None,
        "health_events": (
            [e.to_dict() for e in watchdog.events] if watchdog is not None else []
        ),
        "actions": list(actions),
        "recordings": [str(p) for p in recordings],
        "snapshot_dir": str(ckpt.dir) if ckpt is not None else None,
        "last_snapshot": (
            str(ckpt.last_path)
            if ckpt is not None and ckpt.last_path is not None
            else None
        ),
        "critpath": None,
    }
    if extra:
        manifest.update(extra)
    report = _try_critpath(recordings)
    if report is not None:
        critpath_path = directory / "critpath.json"
        critpath_path.write_text(
            json.dumps(report, sort_keys=True, indent=2) + "\n"
        )
        manifest["critpath"] = str(critpath_path)
    path = directory / "forensics.json"
    path.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return path


def _try_critpath(recordings) -> dict | None:
    """Critical-path report from the first recording with commits, if any.

    Forensics runs while everything is on fire; a torn or trace-less
    file yields ``None`` rather than a second failure.
    """
    from repro.obs.critpath import critical_path
    from repro.obs.recorder import load_recording

    for path in recordings:
        try:
            rec = load_recording(path)
            commits = rec.committed_sequence()
        except Exception:
            continue
        if commits:
            return critical_path(commits).as_dict()
    return None
