"""The recovery runner: act on watchdog interventions outside ``run()``.

The watchdog (:mod:`repro.health.watchdog`) can tighten the optimistic
throttle from *inside* a run, but the heavier rungs of the degradation
ladder — restore from the last good snapshot, fall back to a more
conservative engine, abort — need a fresh engine, which only the caller
can build.  :func:`run_with_recovery` is that caller: a loop that builds
an engine, runs it, and catches :class:`~repro.errors.HealthIntervention`
to walk the remaining rungs:

* ``restore`` — rebuild the *same* engine kind, graft the last good
  snapshot through the checkpointer (``ckpt.load_latest()`` +
  ``attach_checkpointer``), and re-run, with bounded retries and
  exponential backoff (:class:`RecoveryPolicy`, generalizing the
  experiment supervisor's per-point retry policy).
* ``fallback`` — rebuild on the next engine down the chain
  (optimistic → conservative → sequential) and re-run from the start.
  Snapshots are deliberately engine-bound (``restore_state`` refuses a
  cross-kind graft), so a fallback re-runs the workload rather than
  pretending foreign state is compatible; committed results are
  engine-independent, so the committed sequence is unchanged.
* ``abort`` — write a forensics bundle
  (:func:`repro.health.write_forensics_bundle`) and raise
  :class:`~repro.errors.HealthAbort`.

Every action is journaled in ``RecoveryResult.actions`` (and through the
watchdog's sink as ``health`` lines), so supervisors and the chaos
harness can replay exactly what the ladder did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError, HealthAbort, HealthIntervention

__all__ = ["RecoveryPolicy", "RecoveryResult", "run_with_recovery", "FALLBACK_CHAIN"]

#: Fallback order: each engine falls back to the one after it.
FALLBACK_CHAIN = ("optimistic", "conservative", "sequential")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry / backoff / fallback policy for sick runs.

    This generalizes the knobs the experiment supervisor has always had
    (``max_retries`` / ``backoff_base`` / ``fallback``) into a reusable
    object the watchdog ladder, the supervisor, and the chaos harness
    all consult.
    """

    #: Snapshot-restore attempts before the restore rung is exhausted.
    max_restores: int = 2
    #: Fallback rebuilds before the fallback rung is exhausted (the
    #: chain itself also bounds this: sequential has nowhere to go).
    max_fallbacks: int = 2
    #: First restore waits this long; each further restore doubles it.
    backoff_base: float = 0.5
    #: Allow engine-kind fallback at all (off = escalate straight to
    #: abort once restores are exhausted).
    fallback: bool = True
    #: Where the abort rung writes its forensics bundle (None = skip).
    forensics_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.max_restores < 0 or self.max_fallbacks < 0:
            raise ConfigurationError(
                "max_restores and max_fallbacks must be >= 0"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before restore ``attempt`` (1-based): exponential."""
        return self.backoff_base * 2 ** (attempt - 1)

    def next_kind(self, kind: str) -> str | None:
        """Engine kind to fall back to, or ``None`` at the chain's end."""
        if not self.fallback:
            return None
        try:
            i = FALLBACK_CHAIN.index(kind)
        except ValueError:
            return None
        return FALLBACK_CHAIN[i + 1] if i + 1 < len(FALLBACK_CHAIN) else None


@dataclass
class RecoveryResult:
    """What :func:`run_with_recovery` did and what the run produced."""

    #: The final (successful) engine's ``run()`` result.
    result: object
    #: The engine that completed the run (inspect its tracer/stats).
    engine: object
    #: Engine kind that finally completed.
    kind: str
    #: Action journal: one dict per recovery action, in order
    #: (``{"action", "kind", "detector", "boundary", ...}``).
    actions: list[dict] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True when at least one ladder action beyond throttle ran."""
        return bool(self.actions)


def run_with_recovery(
    build,
    watchdog,
    *,
    kind: str = "optimistic",
    policy: RecoveryPolicy | None = None,
    ckpt=None,
    sleep=time.sleep,
    on_action=None,
):
    """Run ``build(kind)`` under ``watchdog``, recovering per ``policy``.

    Parameters
    ----------
    build:
        ``build(kind) -> engine``: construct a fresh, fully configured
        engine of the given kind ("optimistic" / "conservative" /
        "sequential") over the same workload.  Called once per attempt;
        the runner attaches the watchdog (and checkpointer, when one is
        given) itself.
    watchdog:
        The :class:`~repro.health.Watchdog` to attach.  Its ladder rung
        and event log persist across attempts, so repeated sickness
        escalates instead of looping.
    kind:
        Engine kind to start with.
    policy:
        :class:`RecoveryPolicy`; ``None`` uses the defaults.
    ckpt:
        Optional :class:`~repro.ckpt.Checkpointer`.  Required for the
        restore rung to do anything (without one, restore escalates to
        fallback immediately); also re-attached on every attempt so
        snapshots keep flowing after a recovery.
    sleep:
        Injectable backoff sleeper (tests pass a recorder).
    on_action:
        Optional callback ``on_action(record: dict)`` fired for every
        recovery action as it happens (the chaos harness journals these).

    Returns
    -------
    RecoveryResult

    Raises
    ------
    HealthAbort
        When the ladder is exhausted.  The forensics bundle path (if
        one was written) is in the message.
    """
    if policy is None:
        policy = RecoveryPolicy()
    actions: list[dict] = []
    restores = 0
    fallbacks = 0
    restore_pending = False

    def _record(action: str, event, **extra) -> dict:
        rec = {
            "action": action,
            "kind": kind,
            "detector": event.detector,
            "boundary": event.boundary,
            "position": event.position,
            **extra,
        }
        actions.append(rec)
        if on_action is not None:
            on_action(rec)
        return rec

    while True:
        engine = build(kind)
        if ckpt is not None:
            if restore_pending:
                ckpt.load_latest()
                restore_pending = False
            engine.attach_checkpointer(ckpt)
        engine.attach_health(watchdog)
        try:
            result = engine.run()
            return RecoveryResult(
                result=result, engine=engine, kind=kind, actions=actions
            )
        except HealthIntervention as exc:
            action, event = exc.action, exc.event
            if action == "restore":
                can_restore = (
                    ckpt is not None
                    and ckpt.last_path is not None
                    and restores < policy.max_restores
                )
                if can_restore:
                    restores += 1
                    delay = policy.backoff(restores)
                    _record("restore", event, attempt=restores,
                            backoff=delay, snapshot=str(ckpt.last_path))
                    if delay:
                        sleep(delay)
                    restore_pending = True
                    continue
                # Restore rung exhausted (or impossible): escalate.
                watchdog.rung = min(
                    watchdog.rung + 1, len(watchdog.cfg.ladder) - 1
                )
                action = "fallback"
            if action == "fallback":
                nxt = policy.next_kind(kind)
                if nxt is not None and fallbacks < policy.max_fallbacks:
                    fallbacks += 1
                    _record("fallback", event, to=nxt, attempt=fallbacks)
                    kind = nxt
                    # A fallback rebuilds from scratch: snapshots are
                    # engine-bound, so the new engine re-runs the whole
                    # workload (committed results are engine-independent).
                    continue
                action = "abort"
            # action == "abort" (or an unknown action: treat as abort).
            bundle = None
            if policy.forensics_dir is not None:
                from repro.health.forensics import write_forensics_bundle

                bundle = write_forensics_bundle(
                    policy.forensics_dir,
                    event=event,
                    watchdog=watchdog,
                    ckpt=ckpt,
                    actions=actions,
                )
            _record("abort", event,
                    bundle=str(bundle) if bundle is not None else None)
            where = f" (forensics: {bundle})" if bundle is not None else ""
            raise HealthAbort(
                f"degradation ladder exhausted after "
                f"{event.detector} on {kind} engine{where}"
            ) from exc
