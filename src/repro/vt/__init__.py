"""Virtual time primitives: timestamps, event keys, and the total order.

Discrete-event simulators require a *total* order over events so that every
engine — the sequential oracle and any optimistic schedule — commits events
in exactly the same sequence.  ROSS breaks timestamp ties "arbitrarily",
which makes parallel runs non-repeatable; the paper's fix (§3.2.2) is to
randomise arrival times so ties never occur.  We go one step further and
make the order total *by construction*: events are keyed by

    ``(recv_ts, origin_lp, origin_seq)``

where ``origin_seq`` is a per-LP monotone send counter that is itself part
of rolled-back state.  The random arrival jitter of the paper is still
implemented (and toggleable) in the hot-potato model, but repeatability no
longer depends on it.
"""

from repro.vt.time import (
    EventKey,
    KEY_EPOCH,
    KEY_HORIZON,
    TIME_EPOCH,
    TIME_HORIZON,
)

__all__ = ["EventKey", "KEY_EPOCH", "KEY_HORIZON", "TIME_EPOCH", "TIME_HORIZON"]
