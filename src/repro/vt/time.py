"""Event keys and virtual-time constants."""

from __future__ import annotations

from typing import NamedTuple

#: The beginning of virtual time.  No event may be scheduled before this.
TIME_EPOCH: float = 0.0

#: A timestamp greater than any legal event time; used as the "no event"
#: sentinel in GVT reductions (ROSS uses DBL_MAX the same way).
TIME_HORIZON: float = float("inf")


class EventKey(NamedTuple):
    """Total-order key for events.

    Attributes
    ----------
    ts:
        Receive timestamp in virtual time.
    origin:
        Id of the LP that *sent* (created) the event.
    seq:
        The sender's send-sequence number at creation time.  Unique per
        origin, restored on rollback, hence identical across re-executions.
    """

    ts: float
    origin: int
    seq: int

    def __str__(self) -> str:
        return f"@{self.ts:.6f}<{self.origin}:{self.seq}>"


#: Key that compares before every real event key.
KEY_EPOCH = EventKey(TIME_EPOCH, -1, -1)

#: Key that compares after every real event key.
KEY_HORIZON = EventKey(TIME_HORIZON, 1 << 62, 1 << 62)
