"""Benchmark runner, trajectory files and regression comparison.

A full run produces one ``BENCH_<n>.json`` in the target directory, where
``n`` is one more than the highest existing index (the seed repo starts
the trajectory at ``BENCH_0.json``).  The file records, per suite, the
best wall-clock committed-events/second over the repeats plus the
simulation counters that make the number interpretable (rollback ratio,
peak live events, seed).  When a previous trajectory file exists, the new
results are compared against it and any suite whose throughput falls
below ``threshold × previous`` is reported as a regression (non-zero exit
from the CLI).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.suites import SUITES, Suite

__all__ = [
    "BenchResult",
    "run_suite",
    "run_suites",
    "load_previous",
    "load_trajectory",
    "compare",
    "compare_files",
    "write_trajectory",
    "mp_block",
]

#: Trajectory file pattern: BENCH_0.json, BENCH_1.json, ...
_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: Default regression gate: fail when a suite drops below 80% of the
#: previous trajectory's committed-events/sec (wall-clock noise on shared
#: machines makes a tighter default gate flaky).
DEFAULT_THRESHOLD = 0.8


@dataclass
class BenchResult:
    """Measured outcome of one suite."""

    name: str
    engine: str
    workload: str
    seed: int
    repeats: int
    committed: int
    processed: int
    events_rolled_back: int
    rollback_ratio: float
    peak_pending: int
    peak_processed: int
    pool_hits: int
    pool_allocs: int
    best_seconds: float
    mean_seconds: float
    committed_per_sec: float
    #: Pending-queue implementation and cancellation mode the suite ran
    #: under ("n/a" for engines without a pending queue).  Schema 2.
    queue_impl: str = "n/a"
    cancellation: str = "n/a"
    #: LP stepping mode ("scalar" or "vectorized").  Schema 2; older
    #: files load with the "scalar" default (the only mode they had).
    executor: str = "scalar"
    #: Wall-clock percentiles over the repeats (== best/worst at 3
    #: repeats, informative at higher repeat counts).  Schema 2.
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0
    wall_seconds: list[float] = field(default_factory=list)
    #: Worker-process count and cross-process transport counters (1/0/0/0
    #: for in-process suites; see repro.mp).  Schema 3.
    procs: int = 1
    ring_messages: int = 0
    ring_bytes: int = 0
    ring_full_stalls: int = 0
    gvt_token_rounds: int = 0

    def as_dict(self) -> dict:
        """Flat JSON-ready dict (wall-clock samples rounded to microseconds)."""
        d = dict(self.__dict__)
        d["wall_seconds"] = [round(s, 6) for s in self.wall_seconds]
        return d


def _quantile(sorted_walls: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sample list."""
    if not sorted_walls:
        return 0.0
    if len(sorted_walls) == 1:
        return sorted_walls[0]
    pos = q * (len(sorted_walls) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_walls) - 1)
    frac = pos - lo
    return sorted_walls[lo] * (1.0 - frac) + sorted_walls[hi] * frac


def run_suite(
    suite: Suite,
    repeats: int = 3,
    smoke: bool = False,
    telemetry_dir: Path | None = None,
    queue: str | None = None,
    cancellation: str | None = None,
    executor: str | None = None,
) -> BenchResult:
    """Run one suite ``repeats`` times and keep the best wall clock.

    The *best* run defines throughput (minimum interference from the OS);
    the mean is recorded so noisy environments are visible in the file.
    Garbage from earlier suites/repeats is collected *outside* the timed
    region (events sit in reference cycles via their prebuilt heap entry,
    so dead kernels are reclaimed only by the cycle collector — without
    this, later suites pay earlier suites' collection debt).

    With ``telemetry_dir``, one *extra untimed* run records GVT-interval
    metrics and wall-clock phase spans to ``<dir>/<suite>.jsonl`` (see
    :mod:`repro.obs`) — untimed so the throughput numbers measure the
    exact detached configuration.
    """
    walls: list[float] = []
    result = None
    for _ in range(max(1, repeats)):
        gc.collect()
        t0 = time.perf_counter()
        result = suite.run(
            smoke, queue=queue, cancellation=cancellation, executor=executor,
        )
        walls.append(time.perf_counter() - t0)
        del result.lps[:]  # drop the LP population before the next repeat
    assert result is not None
    if telemetry_dir is not None:
        from repro.obs.capture import RunCapture

        telemetry_dir.mkdir(parents=True, exist_ok=True)
        capture = RunCapture(
            metrics_out=telemetry_dir / f"{suite.name}.jsonl",
            spans_out=telemetry_dir / f"{suite.name}.jsonl",
            meta={
                "suite": suite.name,
                "engine": suite.engine,
                "workload": suite.workload,
                "seed": suite.seed,
                "smoke": smoke,
                "queue": queue or "heap",
                "cancellation": cancellation or "aggressive",
                "executor": executor or "scalar",
            },
        )
        try:
            telemetry_result = suite.run(
                smoke, metrics=capture.metrics, spans=capture.spans,
                queue=queue, cancellation=cancellation, executor=executor,
            )
        except KeyboardInterrupt:
            # Flush and close the sink so the partial recording is
            # loadable (the loader tolerates one torn trailing line, not
            # an unterminated stream) before the CLI exits 130.
            capture.finalize(None)
            raise
        capture.finalize(telemetry_result)
        del telemetry_result.lps[:]
    run = result.run
    best = min(walls)
    committed = run.committed
    ordered = sorted(walls)
    optimistic = suite.engine == "optimistic"
    return BenchResult(
        name=suite.name,
        engine=suite.engine,
        workload=suite.workload,
        seed=suite.seed,
        repeats=len(walls),
        committed=committed,
        processed=run.processed,
        events_rolled_back=run.events_rolled_back,
        rollback_ratio=(
            run.events_rolled_back / run.processed if run.processed else 0.0
        ),
        peak_pending=run.peak_pending,
        peak_processed=run.peak_processed,
        pool_hits=getattr(run, "pool_hits", 0),
        pool_allocs=getattr(run, "pool_allocs", 0),
        best_seconds=best,
        mean_seconds=sum(walls) / len(walls),
        committed_per_sec=committed / best if best > 0 else 0.0,
        queue_impl=(queue or "heap") if optimistic else "n/a",
        cancellation=(cancellation or "aggressive") if optimistic else "n/a",
        executor=executor or "scalar",
        p50_seconds=_quantile(ordered, 0.50),
        p95_seconds=_quantile(ordered, 0.95),
        wall_seconds=walls,
        procs=getattr(run, "procs", 1),
        ring_messages=getattr(run, "ring_messages", 0),
        ring_bytes=getattr(run, "ring_bytes", 0),
        ring_full_stalls=getattr(run, "ring_full_stalls", 0),
        gvt_token_rounds=getattr(run, "gvt_token_rounds", 0),
    )


def run_suites(
    repeats: int = 3,
    smoke: bool = False,
    only: list[str] | None = None,
    report=print,
    telemetry_dir: Path | None = None,
    queue: str | None = None,
    cancellation: str | None = None,
    executor: str | None = None,
) -> list[BenchResult]:
    """Run the (optionally filtered) suite matrix, reporting as it goes."""
    selected = [s for s in SUITES if only is None or s.name in only]
    if only is not None:
        unknown = set(only) - {s.name for s in SUITES}
        if unknown:
            raise SystemExit(
                f"unknown suite(s) {sorted(unknown)}; "
                f"choose from {[s.name for s in SUITES]}"
            )
    results = []
    for suite in selected:
        res = run_suite(
            suite, repeats=repeats, smoke=smoke, telemetry_dir=telemetry_dir,
            queue=queue, cancellation=cancellation, executor=executor,
        )
        report(
            f"  {res.name:<16} {res.committed_per_sec:>12,.0f} ev/s  "
            f"({res.committed:,} committed, best {res.best_seconds:.3f}s "
            f"of {res.repeats}, rb {res.rollback_ratio:.1%})"
        )
        results.append(res)
    return results


# ----------------------------------------------------------------------
# Trajectory files.
# ----------------------------------------------------------------------
def _indexed(directory: Path) -> list[tuple[int, Path]]:
    found = []
    for p in directory.iterdir():
        m = _BENCH_RE.match(p.name)
        if m:
            found.append((int(m.group(1)), p))
    return sorted(found)


#: Highest trajectory-file schema this loader understands.
SCHEMA_VERSION = 3


def _upgrade(doc: dict) -> dict:
    """Normalise an older-schema trajectory document in place.

    Schema 1 files predate the ``queue_impl`` / ``cancellation`` fields
    and the wall-clock percentiles; fill the values those runs actually
    used (the schema-1 harness always ran the heap queue with aggressive
    cancellation) so newer consumers can read any file on disk.  Schema 3
    adds the per-suite ``procs`` + ring counters and the top-level ``mp``
    scaling block; older files were all in-process (procs=1, no rings)
    and simply have no ``mp`` block to gate on.
    """
    schema = doc.get("schema", 1)
    if schema > SCHEMA_VERSION:
        raise ValueError(
            f"trajectory file schema {schema} is newer than this loader "
            f"(max {SCHEMA_VERSION})"
        )
    for suite in doc.get("suites", {}).values():
        if schema < 2:
            optimistic = suite.get("engine") == "optimistic"
            suite.setdefault("queue_impl", "heap" if optimistic else "n/a")
            suite.setdefault(
                "cancellation", "aggressive" if optimistic else "n/a"
            )
            walls = sorted(suite.get("wall_seconds", []))
            suite.setdefault("p50_seconds", _quantile(walls, 0.50))
            suite.setdefault("p95_seconds", _quantile(walls, 0.95))
        if schema < 3:
            suite.setdefault("procs", 1)
            suite.setdefault("ring_messages", 0)
            suite.setdefault("ring_bytes", 0)
            suite.setdefault("ring_full_stalls", 0)
            suite.setdefault("gvt_token_rounds", 0)
        suite.setdefault("executor", "scalar")
    return doc


#: Multicore acceptance gates, recorded in (and enforced from) the
#: trajectory file's ``mp`` block: at 4 worker processes the scale
#: workload must run at least this much faster than the same workload on
#: 1 worker process, and the 1-worker configuration may cost at most
#: this multiple of the plain in-process run (fork + rings + wave
#: overhead).  The speedup gate is physically meaningless on a host with
#: fewer cores than workers, so ``mp_block`` records it as waived there
#: (with the core count, so the waiver is auditable) and ``compare_files``
#: only enforces what the measuring host could actually show.
MP_SPEEDUP_MIN = 1.5
MP_OVERHEAD_MAX = 1.15


def mp_block(results: list[BenchResult]) -> dict | None:
    """Build the trajectory file's ``mp`` multicore-scaling block.

    ``None`` when no mp-hotpotato suite was run (e.g. ``--suite`` filters
    them out), so older-shaped files keep being written for in-process
    measurement sessions.
    """
    walls = {
        str(r.procs): r.best_seconds
        for r in results
        if r.name.startswith("mp-hotpotato-p")
    }
    if not walls:
        return None
    host_cores = os.cpu_count() or 1
    block: dict = {
        "host_cores": host_cores,
        "wall_seconds": {k: round(v, 6) for k, v in sorted(walls.items())},
        "speedup_min": MP_SPEEDUP_MIN,
        "overhead_max": MP_OVERHEAD_MAX,
    }
    w1, w4 = walls.get("1"), walls.get("4")
    if w1 and w4:
        block["speedup_4"] = round(w1 / w4, 4)
    base = next(
        (r for r in results if r.name == "opt-hotpotato-n128"), None
    )
    if w1 and base is not None and base.best_seconds:
        block["overhead_p1"] = round(w1 / base.best_seconds, 4)
    block["gate"] = (
        "enforced" if host_cores >= 4
        else f"waived: host has {host_cores} core(s), speedup needs >= 4"
    )
    return block


def load_trajectory(path: Path) -> dict:
    """Load one BENCH_<n>.json, upgrading older schemas (see _upgrade)."""
    with path.open() as f:
        return _upgrade(json.load(f))


def load_previous(directory: Path) -> tuple[dict | None, Path | None]:
    """Load the highest-index BENCH_<n>.json, if any."""
    found = _indexed(directory)
    if not found:
        return None, None
    _, path = found[-1]
    return load_trajectory(path), path


def next_path(directory: Path) -> Path:
    """Path of the next trajectory file (one past the highest index)."""
    found = _indexed(directory)
    n = found[-1][0] + 1 if found else 0
    return directory / f"BENCH_{n}.json"


def compare(
    results: list[BenchResult],
    previous: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[dict, list[str]]:
    """Compare against a previous trajectory file.

    Returns the per-suite comparison dict (stored in the new file) and a
    list of human-readable regression messages (empty = pass).
    """
    prev_suites = previous.get("suites", {})
    comparison: dict = {}
    regressions: list[str] = []
    for res in results:
        prev = prev_suites.get(res.name)
        if prev is None:
            continue
        prev_rate = prev.get("committed_per_sec", 0.0)
        speedup = res.committed_per_sec / prev_rate if prev_rate else float("inf")
        comparison[res.name] = {
            "previous_committed_per_sec": prev_rate,
            "committed_per_sec": res.committed_per_sec,
            "speedup": round(speedup, 4),
        }
        if prev_rate and speedup < threshold:
            regressions.append(
                f"{res.name}: {res.committed_per_sec:,.0f} ev/s is "
                f"{speedup:.2f}x the previous {prev_rate:,.0f} ev/s "
                f"(threshold {threshold:.2f}x)"
            )
    return comparison, regressions


def compare_files(
    path_a: Path,
    path_b: Path,
    threshold: float = DEFAULT_THRESHOLD,
    report=print,
) -> int:
    """Compare two trajectory files suite by suite (B measured against A).

    Prints a ratio table over the suites present in both files and
    returns the number of suites whose throughput in B fell below
    ``threshold × A`` — the CLI exit code, so 0 means no regression.
    Suites present in only one file are listed but not gated (a new
    suite has no baseline; a removed one has no measurement).
    """
    doc_a = load_trajectory(path_a)
    doc_b = load_trajectory(path_b)
    suites_a = doc_a.get("suites", {})
    suites_b = doc_b.get("suites", {})
    report(
        f"{'suite':<22} {path_a.name:>14} {path_b.name:>14} "
        f"{'ratio':>8}  config (B)"
    )
    regressions = 0
    for name in sorted(suites_a.keys() | suites_b.keys()):
        a = suites_a.get(name)
        b = suites_b.get(name)
        if a is None or b is None:
            only = path_b.name if a is None else path_a.name
            report(f"{name:<22} {'—':>14} {'—':>14} {'—':>8}  only in {only}")
            continue
        rate_a = a.get("committed_per_sec", 0.0)
        rate_b = b.get("committed_per_sec", 0.0)
        ratio = rate_b / rate_a if rate_a else float("inf")
        flag = ""
        if rate_a and ratio < threshold:
            regressions += 1
            flag = f"  REGRESSION (< {threshold:.2f}x)"
        config = (
            f"{b.get('queue_impl', '?')}/{b.get('cancellation', '?')}"
            f"/{b.get('executor', 'scalar')}"
        )
        report(
            f"{name:<22} {rate_a:>12,.0f}/s {rate_b:>12,.0f}/s "
            f"{ratio:>7.2f}x  {config}{flag}"
        )
    regressions += _check_mp_block(doc_b, report)
    return regressions


def _check_mp_block(doc: dict, report=print) -> int:
    """Gate a trajectory file's ``mp`` multicore-scaling block.

    Returns the number of failed gates (0 when the block is absent, or
    when it was recorded as waived because the measuring host had fewer
    cores than workers — the waiver and core count are printed so a
    single-core CI runner can't silently masquerade as a scaling result).
    """
    mp = doc.get("mp")
    if not mp:
        return 0
    speedup = mp.get("speedup_4")
    overhead = mp.get("overhead_p1")
    report(
        f"mp scaling: {mp.get('host_cores', '?')} host core(s), "
        f"p4 speedup {speedup if speedup is not None else '—'}x, "
        f"p1 overhead {overhead if overhead is not None else '—'}x "
        f"[{mp.get('gate', '?')}]"
    )
    if not str(mp.get("gate", "")).startswith("enforced"):
        return 0
    failures = 0
    speedup_min = mp.get("speedup_min", MP_SPEEDUP_MIN)
    overhead_max = mp.get("overhead_max", MP_OVERHEAD_MAX)
    if speedup is not None and speedup < speedup_min:
        report(
            f"  MP GATE FAIL: p4 speedup {speedup:.2f}x < {speedup_min}x"
        )
        failures += 1
    if overhead is not None and overhead > overhead_max:
        report(
            f"  MP GATE FAIL: p1 overhead {overhead:.2f}x > {overhead_max}x"
        )
        failures += 1
    return failures


def write_trajectory(
    path: Path,
    results: list[BenchResult],
    comparison: dict,
    baseline_name: str | None,
    threshold: float,
    mp: dict | None = None,
) -> None:
    """Write one BENCH_<n>.json trajectory file."""
    doc = {
        "schema": SCHEMA_VERSION,
        "label": path.stem,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cores": os.cpu_count() or 1,
        "threshold": threshold,
        "baseline": baseline_name,
        "suites": {r.name: r.as_dict() for r in results},
        "comparison": comparison,
    }
    if mp is not None:
        doc["mp"] = mp
    with path.open("w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
