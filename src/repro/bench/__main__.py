"""CLI entry point: ``python -m repro.bench``.

Full mode runs the fixed suite, writes the next ``BENCH_<n>.json`` and
exits non-zero when any suite regressed past the threshold against the
previous trajectory file.  ``--smoke`` runs a sub-second version of the
matrix with no file output — a CI liveness check that also asserts the
optimistic engine commits exactly what the sequential oracle does on the
smoke workload.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.harness import (
    DEFAULT_THRESHOLD,
    compare,
    load_previous,
    next_path,
    run_suites,
    write_trajectory,
)
from repro.bench.suites import SUITES

#: Faults-off guard gate: an attached-but-empty fault driver may not cost
#: more than this multiple of the undecorated run.  Generous on purpose —
#: the smoke workload is sub-second, so timer noise dominates any real
#: per-round cost; the point is to catch a hook accidentally moved onto
#: the per-event path (which shows up as far more than 1.6x).
FAULT_OVERHEAD_LIMIT = 1.6


def _fault_hooks_overhead_ok() -> bool:
    """Assert the fault hooks cost nothing measurable when no plan is set.

    Runs the opt-hotpotato smoke workload twice (best of 3 each): once
    plain, once with an *empty* FaultPlan's EngineFaults attached.  The
    empty driver exercises every ``faults is not None`` check the engines
    gained — per scheduler round, never per event — without wrapping the
    transport, so the two runs must commit identically and take
    indistinguishable time.
    """
    import time

    from repro.bench.suites import _opt_hotpotato
    from repro.core.config import EngineConfig
    from repro.core.optimistic import run_optimistic
    from repro.bench.suites import BENCH_SEED, _hotpotato_cfg
    from repro.faults import EngineFaults, FaultPlan
    from repro.hotpotato.model import HotPotatoModel

    def best(runner) -> tuple[float, int]:
        elapsed, committed = float("inf"), -1
        for _ in range(3):
            start = time.perf_counter()
            result = runner()
            elapsed = min(elapsed, time.perf_counter() - start)
            committed = result.run.committed
        return elapsed, committed

    def faulted():
        cfg = _hotpotato_cfg(True)
        ecfg = EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64,
            seed=BENCH_SEED,
        )
        return run_optimistic(
            HotPotatoModel(cfg), ecfg, faults=EngineFaults(FaultPlan())
        )

    plain_s, plain_committed = best(lambda: _opt_hotpotato(True))
    hooked_s, hooked_committed = best(faulted)
    ratio = hooked_s / plain_s if plain_s else 1.0
    print(
        f"fault-hook overhead: plain {plain_s * 1e3:.1f}ms, "
        f"empty-plan {hooked_s * 1e3:.1f}ms ({ratio:.2f}x)"
    )
    if hooked_committed != plain_committed:
        print(
            f"FAIL: empty fault plan changed committed count "
            f"({hooked_committed} != {plain_committed})"
        )
        return False
    if ratio > FAULT_OVERHEAD_LIMIT:
        print(
            f"FAIL: attached-but-empty fault driver costs {ratio:.2f}x "
            f"(limit {FAULT_OVERHEAD_LIMIT}x) — a hook has crept onto a "
            "hot path"
        )
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny suite, no trajectory file; includes a determinism check",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path("."),
        help="directory holding BENCH_<n>.json files (default: cwd)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per suite (best kept)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression gate: fail below this fraction of the previous rate",
    )
    parser.add_argument(
        "--suite",
        action="append",
        dest="suites",
        metavar="NAME",
        help=f"run only the named suite(s); choices: {[s.name for s in SUITES]}",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and compare but do not write a trajectory file",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="record per-suite GVT-interval metrics to DIR/<suite>.jsonl "
        "via one extra untimed run each (inspect with python -m repro.obs)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        print("repro.bench --smoke (liveness + determinism, not a benchmark)")
        results = run_suites(
            repeats=1, smoke=True, only=args.suites,
            telemetry_dir=args.telemetry_dir,
        )
        by_name = {r.name: r for r in results}
        seq = by_name.get("seq-hotpotato")
        opt = by_name.get("opt-hotpotato")
        if seq is not None and opt is not None and seq.committed != opt.committed:
            print(
                f"FAIL: optimistic committed {opt.committed} != "
                f"sequential {seq.committed} on the smoke workload"
            )
            return 1
        if not _fault_hooks_overhead_ok():
            return 1
        print("smoke ok")
        return 0

    directory = args.dir
    directory.mkdir(parents=True, exist_ok=True)
    previous, prev_path = load_previous(directory)
    label = "none (first trajectory point)" if prev_path is None else prev_path.name
    print(f"repro.bench: {args.repeats} repeats/suite, baseline {label}")
    results = run_suites(
        repeats=args.repeats, only=args.suites, telemetry_dir=args.telemetry_dir
    )

    comparison: dict = {}
    regressions: list[str] = []
    if previous is not None:
        comparison, regressions = compare(results, previous, args.threshold)
        for name, row in comparison.items():
            print(f"  {name:<16} {row['speedup']:>6.2f}x vs {prev_path.name}")

    if not args.no_write:
        out = next_path(directory)
        write_trajectory(
            out,
            results,
            comparison,
            prev_path.name if prev_path is not None else None,
            args.threshold,
        )
        print(f"wrote {out}")

    if regressions:
        print("PERFORMANCE REGRESSION:")
        for msg in regressions:
            print(f"  {msg}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
