"""CLI entry point: ``python -m repro.bench``.

Full mode runs the fixed suite, writes the next ``BENCH_<n>.json`` and
exits non-zero when any suite regressed past the threshold against the
previous trajectory file.  ``--smoke`` runs a sub-second version of the
matrix with no file output — a CI liveness check that also asserts the
optimistic engine commits exactly what the sequential oracle does on the
smoke workload.  ``--queue``/``--cancellation`` select the optimistic
engine's scheduler structures and ``--executor`` the scalar vs
vectorized LP stepping mode (the committed counts must not change);
``--compare A.json B.json`` diffs two existing trajectory files without
running anything.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.harness import (
    DEFAULT_THRESHOLD,
    compare,
    compare_files,
    load_previous,
    mp_block,
    next_path,
    run_suites,
    write_trajectory,
)
from repro.bench.suites import SUITES

#: Faults-off guard gate: an attached-but-empty fault driver may not cost
#: more than this multiple of the undecorated run.  Generous on purpose —
#: the smoke workload is sub-second, so timer noise dominates any real
#: per-round cost; the point is to catch a hook accidentally moved onto
#: the per-event path (which shows up as far more than 1.6x).
FAULT_OVERHEAD_LIMIT = 1.6

#: Checkpointing-off guard gate, same philosophy: an idle Checkpointer
#: (attached, cadence too long to ever write) exercises every
#: ``ckpt is not None`` branch the engines gained without touching disk,
#: so it may not cost more than this multiple of the detached run.
CKPT_OVERHEAD_LIMIT = 1.6

#: Span-tracer-attached gate.  Unlike the two above this one times the
#: hooks doing *real work* (a clock read and a ring append per phase
#: boundary), so the budget is the flight deck's promise: attaching the
#: span tracer may not slow the smoke workload by more than 10%.  Best
#: of 5 on both sides to keep sub-second timer noise out of the ratio.
SPANS_OVERHEAD_LIMIT = 1.10

#: Liveness-watchdog-attached gate (docs/HEALTH.md): the watchdog is
#: consulted only at GVT boundaries, so attaching it may not slow the
#: smoke workload by more than 10% — and a *healthy* run must produce
#: zero health events at the default thresholds.  Detached it costs
#: nothing (the golden committed counts above pin that path).
HEALTH_OVERHEAD_LIMIT = 1.10

#: Golden committed counts for the smoke workloads, pinned from the
#: pre-checkpointing tree.  Checkpoint/paranoid/fault hooks live off the
#: fused fast paths; if a detached-hook run commits anything else, event
#: order (and therefore science) changed, not just speed.
SMOKE_GOLDEN = {
    "seq-phold": 584,
    "cons-phold": 584,
    "opt-phold": 584,
    "seq-hotpotato": 1055,
    "cons-hotpotato": 1055,
    "opt-hotpotato": 1055,
    # The stress suites commit the same work under every --queue,
    # --cancellation and --executor combination; CI runs them all, so
    # these pins double as the cross-mode determinism gate.
    "opt-phold-stress": 657,
    "opt-hotpotato-stress": 1055,
    # The multicore suites run the same smoke network as the in-process
    # hot-potato suites, so matching the 1055 golden at every process
    # count IS the cross-process determinism smoke gate.
    "opt-hotpotato-n128": 1055,
    "mp-hotpotato-p1": 1055,
    "mp-hotpotato-p2": 1055,
    "mp-hotpotato-p4": 1055,
}


def _fault_hooks_overhead_ok() -> bool:
    """Assert the fault hooks cost nothing measurable when no plan is set.

    Runs the opt-hotpotato smoke workload twice (best of 3 each): once
    plain, once with an *empty* FaultPlan's EngineFaults attached.  The
    empty driver exercises every ``faults is not None`` check the engines
    gained — per scheduler round, never per event — without wrapping the
    transport, so the two runs must commit identically and take
    indistinguishable time.
    """
    import time

    from repro.bench.suites import _opt_hotpotato
    from repro.core.config import EngineConfig
    from repro.core.optimistic import run_optimistic
    from repro.bench.suites import BENCH_SEED, _hotpotato_cfg
    from repro.faults import EngineFaults, FaultPlan
    from repro.hotpotato.model import HotPotatoModel

    def best(runner) -> tuple[float, int]:
        elapsed, committed = float("inf"), -1
        for _ in range(3):
            start = time.perf_counter()
            result = runner()
            elapsed = min(elapsed, time.perf_counter() - start)
            committed = result.run.committed
        return elapsed, committed

    def faulted():
        cfg = _hotpotato_cfg(True)
        ecfg = EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64,
            seed=BENCH_SEED,
        )
        return run_optimistic(
            HotPotatoModel(cfg), ecfg, faults=EngineFaults(FaultPlan())
        )

    plain_s, plain_committed = best(lambda: _opt_hotpotato(True))
    hooked_s, hooked_committed = best(faulted)
    ratio = hooked_s / plain_s if plain_s else 1.0
    print(
        f"fault-hook overhead: plain {plain_s * 1e3:.1f}ms, "
        f"empty-plan {hooked_s * 1e3:.1f}ms ({ratio:.2f}x)"
    )
    if hooked_committed != plain_committed:
        print(
            f"FAIL: empty fault plan changed committed count "
            f"({hooked_committed} != {plain_committed})"
        )
        return False
    if ratio > FAULT_OVERHEAD_LIMIT:
        print(
            f"FAIL: attached-but-empty fault driver costs {ratio:.2f}x "
            f"(limit {FAULT_OVERHEAD_LIMIT}x) — a hook has crept onto a "
            "hot path"
        )
        return False
    return True


def _ckpt_overhead_ok() -> bool:
    """Assert checkpointing costs nothing measurable while detached.

    Three opt-hotpotato smoke configurations:

    * plain (best of 3) — the baseline;
    * idle ``Checkpointer(every=2**30)`` attached (best of 3) — every
      ``ckpt is not None`` branch runs, no snapshot is ever written;
      must commit identically and take indistinguishable time;
    * ``every=1`` in a temp dir (once, untimed) — must still commit
      identically and actually write snapshots, proving the hook is
      live and harmless rather than dead.
    """
    import tempfile
    import time

    from repro.bench.suites import BENCH_SEED, _hotpotato_cfg, _opt_hotpotato
    from repro.ckpt import SNAPSHOT_SUFFIX, Checkpointer
    from repro.core.config import EngineConfig
    from repro.core.optimistic import run_optimistic
    from repro.hotpotato.model import HotPotatoModel

    def checkpointed(ckpt) -> "RunResult":
        cfg = _hotpotato_cfg(True)
        ecfg = EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64,
            seed=BENCH_SEED,
        )
        return run_optimistic(HotPotatoModel(cfg), ecfg, checkpointer=ckpt)

    def best(runner) -> tuple[float, int]:
        elapsed, committed = float("inf"), -1
        for _ in range(3):
            start = time.perf_counter()
            result = runner()
            elapsed = min(elapsed, time.perf_counter() - start)
            committed = result.run.committed
        return elapsed, committed

    with tempfile.TemporaryDirectory() as tmp:
        plain_s, plain_committed = best(lambda: _opt_hotpotato(True))
        idle_s, idle_committed = best(
            lambda: checkpointed(Checkpointer(f"{tmp}/idle", every=1 << 30))
        )
        hot = Checkpointer(f"{tmp}/hot", every=1)
        hot_committed = checkpointed(hot).run.committed
        snapshots = hot.written
    ratio = idle_s / plain_s if plain_s else 1.0
    print(
        f"checkpoint overhead: plain {plain_s * 1e3:.1f}ms, "
        f"idle-checkpointer {idle_s * 1e3:.1f}ms ({ratio:.2f}x); "
        f"every=1 wrote {snapshots} snapshot(s)"
    )
    if idle_committed != plain_committed or hot_committed != plain_committed:
        print(
            f"FAIL: checkpointer changed committed count (plain "
            f"{plain_committed}, idle {idle_committed}, every=1 {hot_committed})"
        )
        return False
    if not snapshots:
        print(f"FAIL: every=1 checkpointer wrote no {SNAPSHOT_SUFFIX} snapshot")
        return False
    if ratio > CKPT_OVERHEAD_LIMIT:
        print(
            f"FAIL: attached-but-idle checkpointer costs {ratio:.2f}x "
            f"(limit {CKPT_OVERHEAD_LIMIT}x) — the boundary hook has crept "
            "onto a hot path"
        )
        return False
    return True


def _spans_overhead_ok() -> bool:
    """Assert an attached span tracer stays within its 10% wall budget.

    Runs the opt-hotpotato smoke workload plain and with a
    :class:`~repro.obs.spans.SpanTracer` attached, in back-to-back pairs,
    and takes the **median of the per-pair ratios**: adjacent runs see the
    same CPU frequency/scheduling state, so drift cancels within a pair
    and the median discards pairs a noise burst landed in (best-of-N on
    two separated blocks flaked on shared runners).  Each timed run gets
    a clean garbage-collector slate (collect, then disable during the
    run): on a ~10ms workload, the previous run's GC debt otherwise lands
    on whichever run comes second and reads as a fake ~10% "overhead" —
    a plain-vs-plain control showed the same skew.  The attached run must
    commit identically — spans never touch simulation state — must
    actually record spans (the hooks are live), and may not exceed
    ``SPANS_OVERHEAD_LIMIT`` x the plain wall time.
    """
    import gc
    import time

    from repro.bench.suites import BENCH_SEED, _hotpotato_cfg, _opt_hotpotato
    from repro.core.config import EngineConfig
    from repro.core.optimistic import run_optimistic
    from repro.hotpotato.model import HotPotatoModel
    from repro.obs.spans import SpanTracer

    def spanned():
        cfg = _hotpotato_cfg(True)
        ecfg = EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64,
            seed=BENCH_SEED,
        )
        spans = SpanTracer()
        return run_optimistic(HotPotatoModel(cfg), ecfg, spans=spans), spans

    def timed(runner) -> tuple[float, int, object]:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result, extra = runner()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return elapsed, result.run.committed, extra

    pairs = 7
    ratios: list[float] = []
    plain_s = traced_s = float("inf")
    plain_committed = traced_committed = -1
    spans = None
    for _ in range(pairs):
        p, plain_committed, _unused = timed(lambda: (_opt_hotpotato(True), None))
        t, traced_committed, spans = timed(spanned)
        ratios.append(t / p if p else 1.0)
        plain_s = min(plain_s, p)
        traced_s = min(traced_s, t)
    ratio = sorted(ratios)[pairs // 2]
    print(
        f"span-tracer overhead: plain {plain_s * 1e3:.1f}ms, "
        f"attached {traced_s * 1e3:.1f}ms "
        f"(median of {pairs} paired ratios {ratio:.2f}x); "
        f"{len(spans)} span(s) recorded"
    )
    if traced_committed != plain_committed:
        print(
            f"FAIL: span tracer changed committed count "
            f"({traced_committed} != {plain_committed})"
        )
        return False
    if not len(spans):
        print("FAIL: attached span tracer recorded nothing — hooks are dead")
        return False
    if ratio > SPANS_OVERHEAD_LIMIT:
        print(
            f"FAIL: attached span tracer costs {ratio:.2f}x "
            f"(limit {SPANS_OVERHEAD_LIMIT}x) — a span record has crept "
            "onto the per-event path"
        )
        return False
    return True


def _health_overhead_ok() -> bool:
    """Assert an attached liveness watchdog stays within its 10% budget.

    Same paired-ratio protocol as :func:`_spans_overhead_ok` (adjacent
    plain/attached runs, median per-pair ratio, clean GC slate per run).
    The attached run must commit identically — the watchdog only reads
    at GVT boundaries, except for the throttle rung, which a healthy run
    never reaches — must actually have been consulted (boundaries > 0),
    must produce **zero** health events at the default thresholds on
    this healthy workload, and may not exceed
    ``HEALTH_OVERHEAD_LIMIT`` x the plain wall time.
    """
    import gc
    import time

    from repro.bench.suites import BENCH_SEED, _hotpotato_cfg, _opt_hotpotato
    from repro.core.config import EngineConfig
    from repro.core.optimistic import run_optimistic
    from repro.health import Watchdog
    from repro.hotpotato.model import HotPotatoModel

    def watched():
        cfg = _hotpotato_cfg(True)
        ecfg = EngineConfig(
            end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64,
            seed=BENCH_SEED,
        )
        wd = Watchdog()
        return run_optimistic(HotPotatoModel(cfg), ecfg, health=wd), wd

    def timed(runner) -> tuple[float, int, object]:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result, extra = runner()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return elapsed, result.run.committed, extra

    pairs = 7
    ratios: list[float] = []
    plain_s = watched_s = float("inf")
    plain_committed = watched_committed = -1
    wd = None
    for _ in range(pairs):
        p, plain_committed, _unused = timed(lambda: (_opt_hotpotato(True), None))
        w, watched_committed, wd = timed(watched)
        ratios.append(w / p if p else 1.0)
        plain_s = min(plain_s, p)
        watched_s = min(watched_s, w)
    ratio = sorted(ratios)[pairs // 2]
    print(
        f"watchdog overhead: plain {plain_s * 1e3:.1f}ms, "
        f"attached {watched_s * 1e3:.1f}ms "
        f"(median of {pairs} paired ratios {ratio:.2f}x); "
        f"{wd.boundaries} boundary check(s), {len(wd.events)} event(s)"
    )
    if watched_committed != plain_committed:
        print(
            f"FAIL: watchdog changed committed count "
            f"({watched_committed} != {plain_committed})"
        )
        return False
    if not wd.boundaries:
        print("FAIL: attached watchdog was never consulted — hooks are dead")
        return False
    if wd.events:
        print(
            f"FAIL: healthy smoke run tripped the watchdog "
            f"{len(wd.events)} time(s) at default thresholds: "
            + "; ".join(str(e) for e in wd.events)
        )
        return False
    if ratio > HEALTH_OVERHEAD_LIMIT:
        print(
            f"FAIL: attached watchdog costs {ratio:.2f}x "
            f"(limit {HEALTH_OVERHEAD_LIMIT}x) — a health check has "
            "crept onto the per-event path"
        )
        return False
    return True


def _smoke_golden_ok(by_name: dict) -> bool:
    """Pin every smoke suite's committed count to the golden fixture."""
    ok = True
    for name, want in SMOKE_GOLDEN.items():
        result = by_name.get(name)
        if result is None:
            continue  # suite filtered out with --suite
        if result.committed != want:
            print(
                f"FAIL: {name} committed {result.committed} != golden {want} "
                "(no-checkpoint runs must stay bit-identical to the "
                "pre-checkpoint tree)"
            )
            ok = False
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny suite, no trajectory file; includes a determinism check",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=Path("."),
        help="directory holding BENCH_<n>.json files (default: cwd)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed runs per suite (best kept)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression gate: fail below this fraction of the previous rate",
    )
    parser.add_argument(
        "--suite",
        action="append",
        dest="suites",
        metavar="NAME",
        help=f"run only the named suite(s); choices: {[s.name for s in SUITES]}",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="measure and compare but do not write a trajectory file",
    )
    parser.add_argument(
        "--queue",
        choices=("heap", "ladder", "splay"),
        default=None,
        help="pending-queue implementation for the optimistic suites "
        "(default: the engine default, heap)",
    )
    parser.add_argument(
        "--cancellation",
        choices=("aggressive", "lazy"),
        default=None,
        help="anti-message cancellation mode for the optimistic suites "
        "(default: the engine default, aggressive)",
    )
    parser.add_argument(
        "--executor",
        choices=("scalar", "vectorized"),
        default=None,
        help="LP stepping mode for every suite (default: the engine "
        "default, scalar); committed counts must not change",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        type=Path,
        metavar=("A.json", "B.json"),
        default=None,
        help="compare two existing trajectory files (B against A) and "
        "exit non-zero when any shared suite in B falls below "
        "--threshold x A; no suites are run",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="record per-suite GVT-interval metrics to DIR/<suite>.jsonl "
        "via one extra untimed run each (inspect with python -m repro.obs)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="after the timed suites, run the headline opt-hotpotato "
        "workload once untimed with a checkpointer writing snapshots to "
        "DIR (inspect with python -m repro.ckpt info DIR)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        metavar="N",
        help="snapshot cadence in GVT boundaries for --checkpoint-dir "
        "(default 4)",
    )
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


def _checkpointed_run(directory: Path, every: int, smoke: bool) -> None:
    """One untimed checkpointed opt-hotpotato run writing into ``directory``."""
    from repro.bench.suites import BENCH_SEED, _hotpotato_cfg
    from repro.ckpt import Checkpointer
    from repro.core.config import EngineConfig
    from repro.core.optimistic import run_optimistic
    from repro.hotpotato.model import HotPotatoModel

    cfg = _hotpotato_cfg(smoke)
    ecfg = EngineConfig(
        end_time=cfg.duration, n_pes=4, n_kps=16, batch_size=64, seed=BENCH_SEED
    )
    ckpt = Checkpointer(
        directory,
        every=every,
        marker={"suite": "opt-hotpotato", "smoke": smoke, "seed": BENCH_SEED},
    )
    result = run_optimistic(HotPotatoModel(cfg), ecfg, checkpointer=ckpt)
    print(
        f"checkpointed opt-hotpotato: {result.run.committed:,} committed, "
        f"{ckpt.written} snapshot(s) in {directory}"
    )


def _run(args) -> int:

    if args.compare is not None:
        path_a, path_b = args.compare
        for p in (path_a, path_b):
            if not p.is_file():
                print(f"no such trajectory file: {p}", file=sys.stderr)
                return 2
        regressions = compare_files(path_a, path_b, args.threshold)
        if regressions:
            print(f"PERFORMANCE REGRESSION: {regressions} suite(s) below "
                  f"{args.threshold:.2f}x")
            return 1
        return 0

    if args.smoke:
        mode = f"queue={args.queue or 'heap'}, " \
               f"cancellation={args.cancellation or 'aggressive'}, " \
               f"executor={args.executor or 'scalar'}"
        print(f"repro.bench --smoke ({mode}; liveness + determinism, "
              "not a benchmark)")
        results = run_suites(
            repeats=1, smoke=True, only=args.suites,
            telemetry_dir=args.telemetry_dir,
            queue=args.queue, cancellation=args.cancellation,
            executor=args.executor,
        )
        by_name = {r.name: r for r in results}
        seq = by_name.get("seq-hotpotato")
        opt = by_name.get("opt-hotpotato")
        if seq is not None and opt is not None and seq.committed != opt.committed:
            print(
                f"FAIL: optimistic committed {opt.committed} != "
                f"sequential {seq.committed} on the smoke workload"
            )
            return 1
        if not _smoke_golden_ok(by_name):
            return 1
        if not _fault_hooks_overhead_ok():
            return 1
        if not _ckpt_overhead_ok():
            return 1
        if not _spans_overhead_ok():
            return 1
        if not _health_overhead_ok():
            return 1
        if args.checkpoint_dir is not None:
            _checkpointed_run(args.checkpoint_dir, args.checkpoint_every, True)
        print("smoke ok")
        return 0

    directory = args.dir
    directory.mkdir(parents=True, exist_ok=True)
    previous, prev_path = load_previous(directory)
    label = "none (first trajectory point)" if prev_path is None else prev_path.name
    print(f"repro.bench: {args.repeats} repeats/suite, baseline {label}")
    results = run_suites(
        repeats=args.repeats, only=args.suites,
        telemetry_dir=args.telemetry_dir,
        queue=args.queue, cancellation=args.cancellation,
        executor=args.executor,
    )
    if args.checkpoint_dir is not None:
        _checkpointed_run(args.checkpoint_dir, args.checkpoint_every, False)

    comparison: dict = {}
    regressions: list[str] = []
    if previous is not None:
        comparison, regressions = compare(results, previous, args.threshold)
        for name, row in comparison.items():
            print(f"  {name:<16} {row['speedup']:>6.2f}x vs {prev_path.name}")

    mp = mp_block(results)
    if mp is not None:
        print(
            f"mp scaling: {mp['host_cores']} host core(s), "
            f"p4 speedup {mp.get('speedup_4', '—')}x, "
            f"p1 overhead {mp.get('overhead_p1', '—')}x [{mp['gate']}]"
        )

    if not args.no_write:
        out = next_path(directory)
        write_trajectory(
            out,
            results,
            comparison,
            prev_path.name if prev_path is not None else None,
            args.threshold,
            mp=mp,
        )
        print(f"wrote {out}")

    if regressions:
        print("PERFORMANCE REGRESSION:")
        for msg in regressions:
            print(f"  {msg}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
