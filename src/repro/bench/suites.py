"""The fixed benchmark suite: engines × workloads with pinned seeds.

Every suite builds its model and engine from scratch on each run (so no
state leaks between repeats) and returns the engine's
:class:`~repro.core.result.RunResult`.  Workload sizes are chosen so one
repeat of the full matrix takes a few seconds; ``smoke=True`` shrinks
everything to CI-smoke scale (< 1 s total) and is used by the harness's
cross-engine determinism check rather than for throughput numbers.

The optimistic suites additionally accept ``queue`` and ``cancellation``
overrides (the CLI's ``--queue`` / ``--cancellation``), so the same
pinned workloads can be measured under the ladder/splay queues and lazy
cancellation; every suite accepts an ``executor`` override selecting the
scalar or vectorized (struct-of-arrays) LP stepping mode.  The committed
counts must not change with any of these knobs — the smoke goldens in
:mod:`repro.bench.__main__` enforce that.

The ``*-stress`` suites are deliberately rollback-heavy: PHOLD with
near-zero lookahead and a 90% remote fraction, and the saturated
hot-potato network with a large optimism batch.  They exist to show how
the scheduler structures behave when cancellation dominates — the regime
where lazy cancellation and the ladder queue earn their keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import EngineConfig
from repro.core.conservative import ConservativeConfig, run_conservative
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.result import RunResult
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.models.phold import PholdConfig, PholdModel

__all__ = ["Suite", "SUITES"]

#: Global seed shared by every suite (per-LP streams derive from it).
BENCH_SEED = 0xB5EED


@dataclass(frozen=True)
class Suite:
    """One (engine, workload) cell of the benchmark matrix.

    ``run(smoke, metrics=None, spans=None, queue=None,
    cancellation=None)`` builds the model and engine from scratch and
    executes; the optional ``metrics`` recorder (see
    :mod:`repro.obs.metrics`) and ``spans`` tracer (see
    :mod:`repro.obs.spans`) enable per-cell telemetry capture — the
    harness attaches them only on a dedicated untimed run, so the timed
    repeats measure the exact detached configuration.  ``queue``/``cancellation`` select the pending-queue
    implementation and cancellation mode on the optimistic engine (the
    other engines accept and ignore them); ``executor`` selects scalar
    vs vectorized LP stepping on every engine.
    """

    name: str
    engine: str
    workload: str
    seed: int
    run: Callable[..., RunResult]


def _phold_cfg(smoke: bool) -> tuple[PholdConfig, float]:
    if smoke:
        return PholdConfig(n_lps=32, jobs_per_lp=2), 10.0
    return PholdConfig(n_lps=256, jobs_per_lp=8), 30.0


def _phold_stress_cfg(smoke: bool) -> tuple[PholdConfig, float]:
    """Rollback-heavy PHOLD: almost no lookahead, 90% remote hops."""
    if smoke:
        return (
            PholdConfig(
                n_lps=32, jobs_per_lp=2, lookahead=0.01, remote_fraction=0.9
            ),
            10.0,
        )
    return (
        PholdConfig(
            n_lps=256, jobs_per_lp=8, lookahead=0.01, remote_fraction=0.9
        ),
        15.0,
    )


def _hotpotato_cfg(smoke: bool) -> HotPotatoConfig:
    if smoke:
        return HotPotatoConfig(n=4, duration=10.0, injector_fraction=1.0)
    return HotPotatoConfig(n=8, duration=60.0, injector_fraction=1.0)


def _hotpotato_n128_cfg(smoke: bool) -> HotPotatoConfig:
    """The multicore scale workload: >= 128 LPs.

    The grid is square, so 128 LPs rounds up to the next square number:
    n=12 gives 144 routers.  The duration is the longest in the matrix
    because the mp suites pay fixed per-run costs (fork, ring setup,
    shard merge) that must amortize for the p1-overhead number to
    measure the *transport*, not process startup.  Smoke scale reuses
    the 4x4 smoke network so the mp suites' committed counts pin to the
    same golden as the in-process hot-potato suites — the identity IS
    the check.
    """
    if smoke:
        return HotPotatoConfig(n=4, duration=10.0, injector_fraction=1.0)
    return HotPotatoConfig(n=12, duration=240.0, injector_fraction=1.0)


def _engine_overrides(queue, cancellation, executor=None) -> dict:
    overrides = {}
    if queue is not None:
        overrides["queue"] = queue
    if cancellation is not None:
        overrides["cancellation"] = cancellation
    if executor is not None:
        overrides["executor"] = executor
    return overrides


# ----------------------------------------------------------------------
# Suite bodies.
# ----------------------------------------------------------------------
def _seq_phold(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg, end = _phold_cfg(smoke)
    return run_sequential(
        PholdModel(cfg), end, seed=BENCH_SEED,
        executor=executor or "scalar", metrics=metrics, spans=spans,
    )


def _seq_hotpotato(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg = _hotpotato_cfg(smoke)
    return run_sequential(
        HotPotatoModel(cfg), cfg.duration, seed=BENCH_SEED,
        executor=executor or "scalar", metrics=metrics, spans=spans,
    )


def _cons_phold(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg, end = _phold_cfg(smoke)
    ccfg = ConservativeConfig(
        end_time=end, n_pes=4, sync="yawns", seed=BENCH_SEED,
        executor=executor or "scalar",
    )
    return run_conservative(PholdModel(cfg), ccfg, metrics=metrics, spans=spans)


def _cons_hotpotato(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg = _hotpotato_cfg(smoke)
    ccfg = ConservativeConfig(
        end_time=cfg.duration, n_pes=4, sync="yawns", seed=BENCH_SEED,
        executor=executor or "scalar",
    )
    return run_conservative(HotPotatoModel(cfg), ccfg, metrics=metrics, spans=spans)


def _opt_phold(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg, end = _phold_cfg(smoke)
    ecfg = EngineConfig(
        end_time=end, n_pes=4, n_kps=16, batch_size=32, seed=BENCH_SEED,
        **_engine_overrides(queue, cancellation, executor),
    )
    return run_optimistic(PholdModel(cfg), ecfg, metrics=metrics, spans=spans)


def _opt_phold_stress(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg, end = _phold_stress_cfg(smoke)
    ecfg = EngineConfig(
        end_time=end, n_pes=4, n_kps=16, batch_size=256, seed=BENCH_SEED,
        **_engine_overrides(queue, cancellation, executor),
    )
    return run_optimistic(PholdModel(cfg), ecfg, metrics=metrics, spans=spans)


def _opt_hotpotato(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg = _hotpotato_cfg(smoke)
    ecfg = EngineConfig(
        end_time=cfg.duration,
        n_pes=4,
        n_kps=16,
        batch_size=64,
        seed=BENCH_SEED,
        **_engine_overrides(queue, cancellation, executor),
    )
    return run_optimistic(HotPotatoModel(cfg), ecfg, metrics=metrics, spans=spans)


def _opt_hotpotato_stress(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg = _hotpotato_cfg(smoke)
    ecfg = EngineConfig(
        end_time=cfg.duration,
        n_pes=4,
        n_kps=16,
        batch_size=512,
        seed=BENCH_SEED,
        **_engine_overrides(queue, cancellation, executor),
    )
    return run_optimistic(HotPotatoModel(cfg), ecfg, metrics=metrics, spans=spans)


def _opt_hotpotato_n128(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
    cfg = _hotpotato_n128_cfg(smoke)
    ecfg = EngineConfig(
        end_time=cfg.duration,
        n_pes=4,
        n_kps=16,
        batch_size=64,
        seed=BENCH_SEED,
        **_engine_overrides(queue, cancellation, executor),
    )
    return run_optimistic(HotPotatoModel(cfg), ecfg, metrics=metrics, spans=spans)


def _mp_hotpotato(procs: int):
    """Build the mp-hotpotato suite body for one process count.

    Identical workload and engine geometry to ``opt-hotpotato-n128``
    (4 PEs over the 144-LP network), differing only in how the PEs are
    scheduled: ``procs`` forked OS processes over shared-memory rings.
    ``procs=1`` is the honest single-worker configuration — same fork,
    rings and GVT waves with nobody to talk to — whose distance from
    ``opt-hotpotato-n128`` *is* the process-mode overhead.  GVT runs
    every 16 rounds because in process mode each GVT is a cross-process
    stop-and-drain wave (the in-process default of 1 would serialize on
    wave latency, not event processing).
    """

    def run(smoke: bool, metrics=None, spans=None, queue=None, cancellation=None, executor=None) -> RunResult:
        cfg = _hotpotato_n128_cfg(smoke)
        ecfg = EngineConfig(
            end_time=cfg.duration,
            n_pes=4,
            n_kps=16,
            batch_size=64,
            seed=BENCH_SEED,
            parallelism="process",
            procs=procs,
            gvt_interval=16,
            **_engine_overrides(queue, cancellation, executor),
        )
        return run_optimistic(
            HotPotatoModel(cfg), ecfg, metrics=metrics, spans=spans
        )

    return run


#: The fixed matrix, in reporting order.  ``opt-hotpotato`` is the
#: headline suite tracked by the PR acceptance criteria; the ``*-stress``
#: suites characterise the rollback-dominated regime; the
#: ``mp-hotpotato-p*`` family measures true-multicore scaling against
#: ``opt-hotpotato-n128`` on the same 144-LP workload (the trajectory
#: file's ``mp`` block and ``--compare`` gate read these).
SUITES: tuple[Suite, ...] = (
    Suite("seq-phold", "sequential", "phold", BENCH_SEED, _seq_phold),
    Suite("seq-hotpotato", "sequential", "hotpotato", BENCH_SEED, _seq_hotpotato),
    Suite("cons-phold", "conservative", "phold", BENCH_SEED, _cons_phold),
    Suite("cons-hotpotato", "conservative", "hotpotato", BENCH_SEED, _cons_hotpotato),
    Suite("opt-phold", "optimistic", "phold", BENCH_SEED, _opt_phold),
    Suite("opt-hotpotato", "optimistic", "hotpotato", BENCH_SEED, _opt_hotpotato),
    Suite("opt-phold-stress", "optimistic", "phold-stress", BENCH_SEED, _opt_phold_stress),
    Suite(
        "opt-hotpotato-stress",
        "optimistic",
        "hotpotato-stress",
        BENCH_SEED,
        _opt_hotpotato_stress,
    ),
    Suite(
        "opt-hotpotato-n128",
        "optimistic",
        "hotpotato-n128",
        BENCH_SEED,
        _opt_hotpotato_n128,
    ),
    Suite("mp-hotpotato-p1", "multiprocess", "hotpotato-n128", BENCH_SEED, _mp_hotpotato(1)),
    Suite("mp-hotpotato-p2", "multiprocess", "hotpotato-n128", BENCH_SEED, _mp_hotpotato(2)),
    Suite("mp-hotpotato-p4", "multiprocess", "hotpotato-n128", BENCH_SEED, _mp_hotpotato(4)),
)
