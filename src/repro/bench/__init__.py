"""Tracked wall-clock performance harness (``python -m repro.bench``).

The repo's figures come from *virtual* (cost-model) time; this package
measures the other axis — real committed-events/second of the Python hot
path — and makes the number durable: every full run writes a
``BENCH_<n>.json`` trajectory file next to the previous one and fails when
throughput regresses beyond a threshold.  The suite is fixed (engines ×
workloads × seeds) so consecutive files are directly comparable on the
same machine.

Usage::

    python -m repro.bench                # full suite, writes BENCH_<n>.json
    python -m repro.bench --smoke        # tiny CI suite, no file written
    python -m repro.bench --repeats 5    # more repeats per suite

See ``docs/KERNEL.md`` ("Performance & benchmarking") for how the numbers
relate to the hot-path design.
"""

from repro.bench.harness import (
    BenchResult,
    compare,
    load_previous,
    run_suite,
    run_suites,
)
from repro.bench.suites import SUITES, Suite

__all__ = [
    "BenchResult",
    "SUITES",
    "Suite",
    "compare",
    "load_previous",
    "run_suite",
    "run_suites",
]
