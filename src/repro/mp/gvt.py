"""Cross-process GVT waves: Mattern-style token counting over a control ring.

Workers form a unidirectional token ring on the control rings
(worker ``i`` writes only to ``(i+1) % procs``).  Worker 0 is the
*leader*; it starts a wave every ``gvt_interval`` scheduling rounds (or
when idle).  A wave is stop-and-drain: once a worker joins it stops
executing pending events and only drains its incoming data rings
(arrivals may still trigger rollbacks, whose anti-messages are sent and
counted like any other frame) until the leader broadcasts the result.

Each token pass carries, per worker, the *cumulative* data-ring frames
sent and received (positives **and** antis — a lost in-flight anti would
silently corrupt a later resumed shard) plus the worker's local virtual
minimum.  The leader ends the wave when two consecutive passes are
globally balanced (Σsent == Σrecv) **and** element-wise identical:
monotone counters mean an unchanged balanced vector proves no frame
moved anywhere between the two passes, so at the instant of the last
pass's final report the rings were truly empty and every local minimum
exact — the classic two-identical-cuts termination of Mattern's
algorithm, with the token slots playing the red/white counters.  The
resulting GVT is ``min`` over the local minima, clamped monotone.

The RESULT broadcast travels the same ring (each worker forwards it
onward; the leader absorbs its own copy coming back around) and carries
the new GVT plus two flags: *stop* (GVT reached end_time — exit after
this boundary) and *intr* (some worker observed SIGINT — every worker
writes a final checkpoint shard at this same wave and exits, keeping the
shard set mutually consistent; a worker must never unilaterally abandon
the token ring or its peers deadlock).
"""

from __future__ import annotations

import struct

from repro.errors import ConfigurationError

__all__ = ["WaveCodec", "TOKEN", "RESULT"]

TOKEN = 0x54   # "T"
RESULT = 0x52  # "R"

_RESULT = struct.Struct("<BdB")
_STOP = 0x01
_INTR = 0x02


class WaveCodec:
    """Token / RESULT frame packing for a ``procs``-worker ring."""

    __slots__ = ("procs", "_token")

    def __init__(self, procs: int) -> None:
        if procs < 2:
            raise ConfigurationError("GVT waves need at least 2 workers")
        self.procs = procs
        # type, pass number, then per worker (sent, recv, min, intr).
        self._token = struct.Struct("<BI" + "QQdB" * procs)

    # -- token ---------------------------------------------------------
    def encode_token(self, pass_no: int, slots) -> bytes:
        """Pack one token pass: per-worker ``(sent, recv, min, intr)``."""
        flat = [TOKEN, pass_no]
        for sent, recv, local_min, intr in slots:
            flat.extend((sent, recv, local_min, 1 if intr else 0))
        return self._token.pack(*flat)

    def decode_token(self, frame: bytes):
        """Returns ``(pass_no, [(sent, recv, min, intr), ...])``."""
        values = self._token.unpack(frame)
        pass_no = values[1]
        slots = [
            (values[2 + 4 * i], values[3 + 4 * i],
             values[4 + 4 * i], bool(values[5 + 4 * i]))
            for i in range(self.procs)
        ]
        return pass_no, slots

    # -- result --------------------------------------------------------
    @staticmethod
    def encode_result(gvt: float, stop: bool, intr: bool) -> bytes:
        flags = (_STOP if stop else 0) | (_INTR if intr else 0)
        return _RESULT.pack(RESULT, gvt, flags)

    @staticmethod
    def decode_result(frame: bytes):
        """Returns ``(gvt, stop, intr)``."""
        _, gvt, flags = _RESULT.unpack(frame)
        return gvt, bool(flags & _STOP), bool(flags & _INTR)

    @staticmethod
    def frame_type(frame: bytes) -> int:
        return frame[0]
