"""True multicore Time Warp: multiprocess PEs over shared-memory rings.

This package implements ``EngineConfig.parallelism = "process"``: the
PE population is split across ``procs`` forked OS processes, events
that cross workers travel pickle-free over single-producer
single-consumer shared-memory byte rings, and GVT comes from
Mattern-style counting token waves on a control ring.  Committed
sequences are bit-identical to the sequential oracle regardless of the
process count — the schedule-invariance property every engine in this
repository maintains.

Layout:

* :mod:`repro.mp.ring`      — the SPSC shared-memory byte ring.
* :mod:`repro.mp.codec`     — struct encoding of events and antis.
* :mod:`repro.mp.gvt`       — token/RESULT wave frames and termination.
* :mod:`repro.mp.transport` — the per-worker ring transport.
* :mod:`repro.mp.kernel`    — the worker-side Time Warp kernel.
* :mod:`repro.mp.worker`    — forked-child harness and shard resume.
* :mod:`repro.mp.runtime`   — parent orchestration and result merge.

See ``docs/KERNEL.md`` ("Multicore execution") for the ring layout, the
wave protocol, and the failure-mode catalogue.
"""

from repro.mp.codec import EventCodec
from repro.mp.ring import DEFAULT_RING_BYTES, SpscRing, destroy_segment
from repro.mp.runtime import run_multiprocess

__all__ = [
    "DEFAULT_RING_BYTES",
    "EventCodec",
    "SpscRing",
    "destroy_segment",
    "run_multiprocess",
]
