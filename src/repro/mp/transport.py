"""The ring transport: cross-process event delivery for one worker.

Each worker kernel owns one :class:`RingTransport`.  It plugs into the
Time Warp kernel exactly where the mailbox transport would (``name`` is
not ``"immediate"``, so every send routes through ``_emit`` →
``deliver``), but the far side of a remote send is another OS process:

* **Within-worker** sends (destination PE owned by this worker) are
  handed to ``kernel._receive`` immediately — identical semantics to the
  immediate transport the inline kernel uses.
* **Cross-worker** sends are struct-encoded (:mod:`repro.mp.codec`) and
  appended to the one :class:`~repro.mp.ring.SpscRing` this worker
  writes toward the destination worker.  The sender's journal copy of
  the event stays alive locally (for rollback cancellation) stamped with
  the frame's ``uid`` in ``Event.color``; the receiver materialises an
  independent copy and records it in ``_remote_live`` under the same
  uid, so a later anti-message annihilates exactly the right copy.

Full rings never block.  ``SpscRing.try_write`` fails fast and the frame
goes to a per-destination overflow deque, flushed opportunistically
(every scheduling round and continuously during GVT waves).  Blocking
here could deadlock two workers mid-rollback writing toward each other;
spilling cannot.  FIFO per destination is preserved — a frame bypasses
the deque only when the deque is empty — which is what makes the
anti-after-its-positive ordering guarantee hold.

Wave accounting: ``sent_total`` counts frames at *enqueue* time and
``recv_total`` at decode time, positives and antis alike.  The GVT wave
terminates only when the global sent/recv vectors are balanced and
stable (see :mod:`repro.mp.gvt`), which therefore also proves every
overflow deque is empty — a frame parked in a deque is counted as sent
but cannot yet have been received.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchedulingError
from repro.vt.time import TIME_HORIZON, EventKey

__all__ = ["RingTransport"]

_tuple_new = tuple.__new__


class RingTransport:
    """Cross-process transport for one worker (see the module docstring)."""

    name = "ring"

    def __init__(
        self,
        worker_index: int,
        procs: int,
        pes_per_worker: int,
        codec,
        out_rings: dict,
        in_rings: list,
    ) -> None:
        #: ``out_rings``: destination worker -> SpscRing this worker
        #: produces into.  ``in_rings``: ``(source worker, SpscRing)``
        #: pairs this worker consumes, in source order (determinism: the
        #: drain order is part of the execution interleaving, which the
        #: committed sequence is invariant under — but keeping it fixed
        #: makes *diagnostic* counters repeatable too).
        self.index = worker_index
        self.procs = procs
        self.pes_per_worker = pes_per_worker
        self.codec = codec
        self.out = out_rings
        self.inbound = in_rings
        self.kernel = None
        self._overflow = {w: deque() for w in out_rings}
        #: Sender-unique frame ids: ``index + procs * k`` for k >= 1, so
        #: uid 0 never occurs (``Event.color == 0`` means "local") and
        #: two workers can never mint the same uid.
        self._next_uid = worker_index + procs
        #: Remote-born live events by uid (receiver side); pruned below
        #: GVT each wave, *before* fossil collection recycles the objects.
        self._remote_live: dict = {}
        #: Wave accounting (cumulative frames, positives + antis).
        self.sent_total = 0
        self.recv_total = 0
        #: Frames that could not be written on first try (ring full).
        self.full_stalls = 0

    def bind(self, kernel) -> None:
        """Attach the worker kernel this transport delivers into."""
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Producer side.
    # ------------------------------------------------------------------
    def deliver(self, ev, src_pe: int, dst_pe: int) -> None:
        """Route one send: local arrival or encode-and-enqueue."""
        dst_worker = dst_pe // self.pes_per_worker
        if dst_worker == self.index:
            self.kernel._receive(ev)
            return
        uid = self._next_uid
        self._next_uid = uid + self.procs
        ev.color = uid
        self._enqueue(dst_worker, self.codec.encode_event(ev, uid))

    def send_anti(self, ev) -> None:
        """Transmit the anti-message for a previously sent positive.

        Travels the same src->dst ring as its positive, so FIFO delivery
        guarantees the anti can never overtake it.
        """
        dst_worker = (
            self.kernel.pe_of_lp[ev.dst] // self.pes_per_worker
        )
        self._enqueue(dst_worker, self.codec.encode_anti(ev, ev.color))

    def _enqueue(self, dst_worker: int, frame: bytes) -> None:
        self.sent_total += 1
        q = self._overflow[dst_worker]
        if q or not self.out[dst_worker].try_write(frame):
            self.full_stalls += 1
            q.append(frame)

    def flush_out(self) -> bool:
        """Move spilled frames into their rings; True when all drained.

        Also heartbeats every outbound ring's shared tail cursor (see
        :meth:`repro.mp.ring.SpscRing.republish_tail`): flush_out runs
        every scheduling round and continuously during GVT waves, so a
        lost tail store heals before it can strand published frames.
        """
        drained = True
        for w, q in self._overflow.items():
            if not q:
                continue
            ring = self.out[w]
            while q:
                if ring.try_write(q[0]):
                    q.popleft()
                else:
                    drained = False
                    break
        for ring in self.out.values():
            ring.republish_tail()
        return drained

    # ------------------------------------------------------------------
    # Consumer side.
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Consume every readable frame from every inbound ring.

        Positive frames become fresh local events (through the kernel's
        allocator, so pooling applies) and go through the full Time Warp
        arrival path — straggler check, rollback, cancellation cascades.
        Anti frames annihilate the ``_remote_live`` entry minted when
        their positive arrived.  Returns the number of frames consumed.
        """
        kernel = self.kernel
        alloc = kernel._alloc
        decode = self.codec.decode
        remote_live = self._remote_live
        n = 0
        for src, ring in self.inbound:
            read = ring.try_read
            while True:
                frame = read()
                if frame is None:
                    break
                n += 1
                decoded = decode(frame)
                if decoded[0] == "pos":
                    _, uid, ts, origin, seq, dst, kind, data = decoded
                    ev = alloc(
                        _tuple_new(EventKey, (ts, origin, seq)), dst, kind, data
                    )
                    ev.color = uid
                    remote_live[uid] = ev
                    kernel._receive(ev)
                else:
                    _, uid, ts, origin, seq, dst = decoded
                    ev = remote_live.pop(uid, None)
                    if ev is None:
                        raise SchedulingError(
                            f"worker {self.index}: anti-message for unknown "
                            f"uid {uid} (key ({ts}, {origin}, {seq}) -> "
                            f"lp{dst}); positive lost or double-cancelled"
                        )
                    kernel._cancel(ev)
            # Heartbeat the shared head (twin of flush_out's tail
            # republish): heals a lost head store that would otherwise
            # make the producer see the ring as permanently full.
            ring.republish_head()
        if n:
            self.recv_total += n
            kernel._drain_cancels()
        return n

    def prune_below(self, gvt: float) -> None:
        """Forget remote-born events committed below ``gvt``.

        Must run *before* fossil collection each wave: collection recycles
        the Event objects through the pool, and a stale uid mapping to a
        recycled object would let a (bug-induced) late anti cancel an
        unrelated event.  Anti-messages always target ts > GVT (their
        sender's parent was still rollback-able), so pruning strictly
        below GVT can never drop a uid that still has an anti in flight.
        """
        live = self._remote_live
        if not live:
            return
        dead = [uid for uid, ev in live.items() if ev.key.ts < gvt]
        for uid in dead:
            del live[uid]

    # ------------------------------------------------------------------
    # Kernel-facing transport surface (the parts the base kernel calls).
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Round-boundary hook of the transport ABI: spill flush only.

        Inbound draining is driven explicitly by the worker run loop (it
        must interleave with wave participation), not by this hook.
        """
        self.flush_out()
        return 0

    def annihilate(self) -> int:
        """In-transit annihilation is per-uid via anti frames; no sweep."""
        return 0

    def min_in_flight_ts(self) -> float:
        """Unknowable locally; the GVT waves account for in-flight frames
        by counting, never by timestamp inspection."""
        return TIME_HORIZON

    def in_flight_count(self) -> int:
        """Locally held undelivered frames (checkpoint precondition).

        Only the overflow spill is locally visible; ring emptiness at
        checkpoint boundaries is guaranteed by the wave protocol.
        """
        return sum(len(q) for q in self._overflow.values())

    # ------------------------------------------------------------------
    # Counters for RunStats / obs.
    # ------------------------------------------------------------------
    def ring_messages(self) -> int:
        """Frames this worker wrote across all its outbound rings."""
        return sum(r.messages_written for r in self.out.values())

    def ring_bytes(self) -> int:
        """Payload bytes this worker wrote across its outbound rings."""
        return sum(r.bytes_written for r in self.out.values())
