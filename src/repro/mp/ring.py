"""Single-producer single-consumer byte rings over shared memory.

One :class:`SpscRing` is one direction of one worker pair: exactly one
process writes frames, exactly one process reads them, and the two never
share a cursor.  The layout inside the ``multiprocessing.shared_memory``
segment is::

    offset 0    head  (u64, little-endian) — written by the CONSUMER only
    offset 64   tail  (u64, little-endian) — written by the PRODUCER only
    offset 128  data  (capacity bytes, byte-granular wrap-around)

``head`` and ``tail`` are monotone absolute byte counters (never reduced
modulo the capacity), padded to separate cache lines so the two sides
never write the same line.  A frame is a ``u32`` length prefix followed
by the payload; both may wrap around the end of the data region.

Why this is safe without locks: each 8-byte cursor has exactly one
writer, CPython writes it with a single aligned ``struct.pack_into``
(no torn 8-byte stores on the 64-bit platforms we run on), and x86-64's
total-store-order memory model guarantees the producer's payload bytes
are visible before the tail advance that publishes them (and
symmetrically for the consumer's head advance that frees them).  On
weakly-ordered ISAs this would need fences; the interpreter's own
internal locking makes the race window academic there, but the design
target is x86-64 Linux (documented in docs/KERNEL.md).

Each side keeps its OWN cursor authoritative in ordinary process memory
(``self.tail`` for the producer, ``self.head`` for the consumer) and
treats the shared copy as write-only: published after every operation
and republished by the ``republish_*`` heartbeats each scheduling round.
A side only ever *reads* the other side's cursor from shared memory.
This makes the ring self-healing against lost cursor stores (observed
in the wild on a virtualized kernel: a hot 8-byte cursor slot reverted
to its initial value while every neighbouring byte kept its latest
write).  A reverted shared cursor can then only *under*-report the
other side's progress — the ring looks briefly empty to the consumer or
full to the producer, both safe outcomes — and the next republish
heals it.  Frame payloads are written once, never rewritten, so they do
not share this exposure; ``try_read`` still validates every length
prefix and fails loudly rather than propagating garbage.

Full-ring behaviour is the caller's problem by design: ``try_write``
returns ``False`` (counting a full-stall) instead of blocking, and the
:class:`~repro.mp.transport.RingTransport` spills to a local overflow
queue — a worker must never block mid-rollback waiting for a peer that
may itself be blocked writing back (the classic transport deadlock).
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

from repro.errors import ConfigurationError

__all__ = ["SpscRing", "DEFAULT_RING_BYTES", "destroy_segment"]

#: Default data-region size per ring.  Event frames are ~60 bytes, so a
#: mebibyte buffers ~17k in-flight events per directed worker pair —
#: far beyond what the stop-and-drain GVT waves let accumulate.
DEFAULT_RING_BYTES = 1 << 20

_CURSOR = struct.Struct("<Q")
_LEN = struct.Struct("<I")
_HEAD_OFF = 0
_TAIL_OFF = 64
_DATA_OFF = 128


class SpscRing:
    """One direction of one worker pair (see the module docstring).

    The parent process creates every ring pre-fork with ``create=True``;
    workers inherit the same object through ``fork`` and use it as-is —
    no name lookup, no pickling, no re-attachment.
    """

    __slots__ = (
        "shm", "capacity", "_buf", "tail", "head",
        "messages_written", "bytes_written", "full_stalls",
        "messages_read", "bytes_read",
    )

    def __init__(self, size: int = DEFAULT_RING_BYTES) -> None:
        if size < _DATA_OFF + 64:
            raise ConfigurationError(f"ring size {size} too small")
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.capacity = self.shm.size - _DATA_OFF
        self._buf = self.shm.buf
        self._buf[:_DATA_OFF] = bytes(_DATA_OFF)
        # Authoritative own-side cursors.  The producer trusts only
        # ``self.tail`` and the consumer only ``self.head``; the shared
        # copies exist solely for the *other* side to read.  Rings are
        # created pre-fork at zero, so both children inherit matching
        # caches.
        self.tail = 0
        self.head = 0
        # Producer-side counters (the consumer keeps its own read side).
        self.messages_written = 0
        self.bytes_written = 0
        self.full_stalls = 0
        self.messages_read = 0
        self.bytes_read = 0

    # -- cursor access -------------------------------------------------
    def _head(self) -> int:
        return _CURSOR.unpack_from(self._buf, _HEAD_OFF)[0]

    def _tail(self) -> int:
        return _CURSOR.unpack_from(self._buf, _TAIL_OFF)[0]

    # -- producer side -------------------------------------------------
    def try_write(self, frame: bytes) -> bool:
        """Append one frame; ``False`` (+ a full-stall count) if no room."""
        need = _LEN.size + len(frame)
        if need > self.capacity:
            raise ConfigurationError(
                f"frame of {len(frame)} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        tail = self.tail
        # A stale (lost-store) shared head only under-reports consumer
        # progress, making this check conservative: worst case a
        # spurious full-stall, never an overwrite of unread frames.
        if self.capacity - (tail - self._head()) < need:
            self.full_stalls += 1
            return False
        self._put(tail, _LEN.pack(len(frame)))
        self._put(tail + _LEN.size, frame)
        self.tail = tail + need
        # Publish: the payload stores above precede this tail store in
        # program order, which x86-TSO preserves for the consumer.
        _CURSOR.pack_into(self._buf, _TAIL_OFF, self.tail)
        self.messages_written += 1
        self.bytes_written += len(frame)
        return True

    def republish_tail(self) -> None:
        """Rewrite the shared tail from the producer's cache.

        Heartbeat against lost cursor stores: the transport calls this
        every flush and the kernel calls it while spinning in control
        waves, so a reverted shared tail heals within one round instead
        of stranding published frames (which would unbalance the GVT
        wave counts and hang the token).  Producer-only.
        """
        _CURSOR.pack_into(self._buf, _TAIL_OFF, self.tail)

    def _put(self, pos: int, data: bytes) -> None:
        cap = self.capacity
        idx = pos % cap
        end = idx + len(data)
        if end <= cap:
            self._buf[_DATA_OFF + idx:_DATA_OFF + end] = data
        else:
            first = cap - idx
            self._buf[_DATA_OFF + idx:_DATA_OFF + cap] = data[:first]
            self._buf[_DATA_OFF:_DATA_OFF + end - cap] = data[first:]

    # -- consumer side -------------------------------------------------
    def try_read(self) -> bytes | None:
        """Pop the oldest frame, or ``None`` when the ring is empty."""
        head = self.head
        tail = self._tail()
        # ``<=`` rather than ``==``: a reverted shared tail reads below
        # our own head, and must mean "nothing visible yet", not "the
        # ring wrapped" — the producer's next republish restores it.
        if tail <= head:
            return None
        length = _LEN.unpack(self._get(head, _LEN.size))[0]
        if length == 0 or _LEN.size + length > self.capacity:
            raise ConfigurationError(
                f"corrupt frame length {length} at ring offset {head} "
                f"(head={head} tail={tail} capacity={self.capacity})"
            )
        frame = self._get(head + _LEN.size, length)
        self.head = head + _LEN.size + length
        _CURSOR.pack_into(self._buf, _HEAD_OFF, self.head)
        self.messages_read += 1
        self.bytes_read += length
        return frame

    def republish_head(self) -> None:
        """Rewrite the shared head from the consumer's cache.

        Consumer-side twin of :meth:`republish_tail`: heals a reverted
        shared head, which would otherwise make the producer
        under-estimate free space and spill to its overflow queue
        forever.
        """
        _CURSOR.pack_into(self._buf, _HEAD_OFF, self.head)

    def _get(self, pos: int, length: int) -> bytes:
        cap = self.capacity
        idx = pos % cap
        end = idx + length
        if end <= cap:
            return bytes(self._buf[_DATA_OFF + idx:_DATA_OFF + end])
        first = cap - idx
        return bytes(self._buf[_DATA_OFF + idx:_DATA_OFF + cap]) + bytes(
            self._buf[_DATA_OFF:_DATA_OFF + end - cap]
        )

    def __len__(self) -> int:
        """Unread bytes currently in the ring (either side may ask).

        Reads both shared cursors (neither side owns both), so a stale
        copy can transiently under-report; clamped at zero so a reverted
        cursor never yields a negative length.
        """
        return max(0, self._tail() - self._head())

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._buf = None
        self.shm.close()


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment (parent-side teardown).

    ``unlink`` both removes the POSIX name and unregisters it from the
    ``resource_tracker`` (CPython 3.9+), so this must only ever run in
    the creating process, exactly once per segment — a second unregister
    would make the tracker log a spurious ``KeyError``.
    """
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
