"""Parent-side orchestration of a multiprocess Time Warp run.

:func:`run_multiprocess` is the process-mode twin of
:func:`repro.core.optimistic.run_optimistic` — same signature, same
RunResult — reached through the same entry point whenever
``EngineConfig.parallelism == "process"``.

Topology: the parent creates every shared-memory segment *before*
forking — one data ring per ordered worker pair, one small control ring
per edge of the GVT token ring, one result pipe per worker — then forks
``procs`` workers with plain ``fork`` (children inherit the mappings;
no pickling, no name lookups).  Each worker runs its PE slice of the
model; the parent only monitors liveness, forwards interrupts, and
merges results.

The parent holds the *pristine* model: workers fork from it before any
LP is built, so every worker's copy-on-write population starts
identical, and the parent builds its own population only after the
forks — that population receives the workers' exported per-LP state and
is what ``collect_stats`` finally runs over.

Interrupt story: SIGINT (terminal or forwarded) reaches the workers,
whose handlers set a flag that rides the next GVT wave; every worker
writes a final checkpoint shard at the same wave and reports
``interrupted``, after which the parent re-raises KeyboardInterrupt —
callers see exactly the inline engine's behaviour.  A worker that dies
without reporting gets its siblings interrupted, then killed, and the
run fails loudly with the death noted.
"""

from __future__ import annotations

import json
import os
import signal
import time
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import wait as conn_wait

from repro.core.result import RunResult
from repro.core.stats import RunStats
from repro.core.trace import EXEC, UNDO
from repro.errors import ConfigurationError, HealthIntervention
from repro.mp.codec import EventCodec
from repro.mp.ring import DEFAULT_RING_BYTES, SpscRing, destroy_segment
from repro.mp.worker import shard_dir, worker_main
from repro.obs.metrics import MetricSample
from repro.obs.spans import Span
from repro.vt.time import EventKey

__all__ = ["run_multiprocess"]

#: Control rings carry one token (~30 bytes/worker) or RESULT at a time.
CTL_RING_BYTES = 1 << 16

#: Grace period between SIGINT and SIGKILL during failure teardown.
_KILL_GRACE_SECONDS = 5.0


class _WorkerSpec:
    """Everything one worker inherits through fork (never pickled)."""

    __slots__ = (
        "index", "procs", "model", "config", "codec",
        "out_rings", "in_rings", "ctl_in", "ctl_out", "conn",
        "want_trace", "want_metrics", "want_spans", "health_config",
        "ckpt_dir", "ckpt_every", "ckpt_marker", "ckpt_heartbeat", "resume",
    )


class _EventStub:
    """Minimal event-shaped object for tracer commit replay."""

    __slots__ = ("key", "dst", "kind")


def _forward_sigint(children) -> None:
    for proc in children:
        if proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGINT)
            except (ProcessLookupError, OSError):
                pass


def _kill_children(children) -> None:
    """Failure teardown: SIGINT, a grace period, then SIGKILL."""
    _forward_sigint(children)
    deadline = time.monotonic() + _KILL_GRACE_SECONDS
    for proc in children:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
    for proc in children:
        if proc.is_alive():
            proc.kill()
            proc.join()


def _merge_run_stats(parts: list[RunStats], config) -> RunStats:
    """Fold per-worker RunStats into one run-level view.

    Counters sum; the virtual makespan is the slowest worker's (they ran
    concurrently); GVT rounds are lockstep so the max is the shared wave
    count; queue peaks sum (each worker sampled its own slice — an upper
    bound on the true global instantaneous peak).
    """
    out = RunStats(engine="optimistic")
    out.n_pes = config.n_pes
    out.n_kps = config.n_kps
    out.procs = config.procs
    for field in (
        "committed", "processed", "events_rolled_back", "rollbacks",
        "false_rollback_events", "stragglers", "cancelled_direct",
        "cancelled_via_rollback", "lazy_reused", "antimsg_batches",
        "soa_batches", "soa_lps_stepped", "throttle_adjustments",
        "local_sends", "remote_sends", "fossil_collected",
        "pool_hits", "pool_allocs", "peak_pending", "peak_processed",
        "total_busy_seconds", "ring_messages", "ring_bytes",
        "ring_full_stalls",
    ):
        setattr(out, field, sum(getattr(p, field) for p in parts))
    out.gvt_rounds = max(p.gvt_rounds for p in parts)
    out.gvt_token_rounds = max(p.gvt_token_rounds for p in parts)
    out.makespan_seconds = max(p.makespan_seconds for p in parts)
    out.throttle_final_factor = min(p.throttle_final_factor for p in parts)
    for p in parts:
        if p.soa_decline_reason:
            out.soa_decline_reason = p.soa_decline_reason
            break
    busy = [0.0] * config.n_pes
    for p in parts:
        for i, seconds in enumerate(p.per_pe_busy_seconds):
            busy[i] += seconds
    out.per_pe_busy_seconds = busy
    out.event_rate = (
        out.committed / out.makespan_seconds if out.makespan_seconds else 0.0
    )
    return out


def _replay_commits(tracer, parts) -> None:
    """Feed the union of worker commit logs to the parent tracer.

    Replayed in global key order — the canonical order of a committed
    sequence (per-worker logs are each in local commit order; schedule
    invariance makes the sorted union the sequential oracle's sequence).
    """
    merged: list[tuple] = []
    for part in parts:
        if part["commits"]:
            merged.extend(part["commits"])
    merged.sort()
    stub = _EventStub()
    on_commit = tracer.on_commit
    for ts, origin, seq, dst, kind in merged:
        stub.key = EventKey(ts, origin, seq)
        stub.dst = dst
        stub.kind = kind
        on_commit(stub)
    counts = getattr(tracer, "counts", None)
    if counts is not None:
        counts[EXEC] += sum(p["exec_count"] for p in parts)
        counts[UNDO] += sum(p["undo_count"] for p in parts)


_SAMPLE_SUM_FIELDS = (
    "committed", "processed", "rolled_back", "rollbacks", "stragglers",
    "fossil_collected", "pending", "processed_depth", "lazy_hits",
    "antimsg_batches", "gvt_incremental_rounds", "soa_batches",
    "soa_lps_stepped",
)


def _merge_metrics(recorder, parts) -> None:
    """Merge per-worker wave samples into the parent recorder.

    The waves are global barriers, so sample *j* of every worker
    describes the same GVT interval: counters sum, the per-KP delta maps
    are disjoint (each KP is owned by exactly one worker) and union
    cleanly.  An interrupted worker may be one sample short; the merged
    series stops at the shortest log.
    """
    lists = [p["metrics"] for p in parts if p["metrics"] is not None]
    if not lists:
        return
    n = min(len(rows) for rows in lists)
    for j in range(n):
        rows = [rows_[j] for rows_ in lists]
        merged = {"round": recorder.n_samples}
        merged["gvt"] = max(r["gvt"] for r in rows)
        for field in _SAMPLE_SUM_FIELDS:
            merged[field] = sum(r[field] for r in rows)
        merged["throttle"] = min(r["throttle"] for r in rows)
        merged["pool_hit_rate"] = max(r["pool_hit_rate"] for r in rows)
        kp: dict = {}
        for r in rows:
            kp.update(r.get("kp_rolled_back", {}))
        merged["kp_rolled_back"] = kp
        sample = MetricSample.from_dict(merged)
        recorder.n_samples += 1
        if recorder.sink is not None:
            recorder.sink.write_metric(sample)
        if recorder.keep:
            recorder.samples.append(sample)


def _merge_spans(tracer, parts) -> None:
    """Ingest worker span windows; fold over-window residue into totals.

    Worker ``t0`` values are relative to each worker's own epoch (see
    :meth:`SpanTracer.ingest`); phase totals stay exact even when a
    worker's ring buffer wrapped, via the shipped totals.
    """
    for part in parts:
        if part["spans"] is None:
            continue
        window = [Span.from_dict(d) for d in part["spans"]]
        for span in window:
            tracer.ingest(span)
        totals = part["span_totals"] or {}
        window_count: dict[str, list] = {}
        for span in window:
            agg = window_count.setdefault(span.phase, [0, 0.0])
            agg[0] += 1
            agg[1] += span.dt
        for phase, (count, seconds) in totals.items():
            seen = window_count.get(phase, (0, 0.0))
            extra = count - seen[0]
            if extra > 0:
                tot = tracer.totals[phase]
                tot[0] += extra
                tot[1] += seconds - seen[1]
                tracer.n_spans += extra
                tracer.dropped += extra


def run_multiprocess(
    model,
    config,
    *,
    tracer=None,
    metrics=None,
    spans=None,
    faults=None,
    checkpointer=None,
    health=None,
) -> RunResult:
    """Run ``model`` across ``config.procs`` worker processes."""
    procs = config.procs
    if faults is not None:
        raise ConfigurationError(
            "engine fault injection (transport/PE-stall faults) is not "
            "supported in process mode — the fault driver wraps one "
            "in-process transport; model-level fault plans work unchanged"
        )
    if "fork" not in get_all_start_methods():
        raise ConfigurationError(
            "process mode needs the 'fork' start method (workers inherit "
            "the shared-memory rings); this platform does not provide it"
        )
    codec = None
    if procs >= 2:
        codec = EventCodec(model.mp_event_schema())

    ctx = get_context("fork")
    segments: list = []
    data_rings: dict[tuple[int, int], SpscRing] = {}
    ctl_rings: list[SpscRing] = []
    if procs >= 2:
        for src in range(procs):
            for dst in range(procs):
                if src != dst:
                    ring = SpscRing(DEFAULT_RING_BYTES)
                    data_rings[(src, dst)] = ring
                    segments.append(ring.shm)
        for i in range(procs):
            ring = SpscRing(CTL_RING_BYTES)
            ctl_rings.append(ring)
            segments.append(ring.shm)

    resume = bool(getattr(checkpointer, "mp_resume", False))
    if checkpointer is not None:
        manifest = {
            "format": "mp-manifest",
            "procs": procs,
            "shards": [f"shard_{i}" for i in range(procs)],
            "marker": checkpointer.marker,
        }
        (checkpointer.dir / "manifest.json").write_text(
            json.dumps(manifest, indent=2) + "\n"
        )

    specs = []
    for i in range(procs):
        spec = _WorkerSpec()
        spec.index = i
        spec.procs = procs
        spec.model = model
        spec.config = config
        spec.codec = codec
        spec.out_rings = {
            d: data_rings[(i, d)] for d in range(procs) if d != i
        }
        spec.in_rings = [
            (s, data_rings[(s, i)]) for s in range(procs) if s != i
        ]
        # Token ring topology: worker i consumes ctl ring i and produces
        # into ctl ring (i+1) % procs.
        spec.ctl_in = ctl_rings[i] if ctl_rings else None
        spec.ctl_out = ctl_rings[(i + 1) % procs] if ctl_rings else None
        spec.want_trace = tracer is not None
        spec.want_metrics = metrics is not None
        spec.want_spans = spans is not None
        spec.health_config = health.cfg if health is not None else None
        spec.ckpt_dir = checkpointer.dir if checkpointer is not None else None
        spec.ckpt_every = checkpointer.every if checkpointer is not None else 1
        spec.ckpt_marker = (
            checkpointer.marker if checkpointer is not None else {}
        )
        spec.ckpt_heartbeat = (
            checkpointer.heartbeat if checkpointer is not None else None
        )
        spec.resume = resume
        specs.append(spec)

    children = []
    parent_conns = []
    results: dict[int, dict] = {}
    died: list[int] = []
    try:
        # Pipe creation, fork and parent-side send-end close interleave
        # per worker: a pipe created before a sibling's fork would leave
        # its send end open inside that sibling, and a killed worker's
        # pipe would then never reach EOF while any sibling lived.
        for spec in specs:
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            spec.conn = send_conn
            proc = ctx.Process(
                target=worker_main, args=(spec,), name=f"repro-mp-{spec.index}"
            )
            proc.start()
            send_conn.close()
            spec.conn = None
            parent_conns.append(recv_conn)
            children.append(proc)

        index_of = {conn: i for i, conn in enumerate(parent_conns)}
        pending = set(parent_conns)
        forwarded = False
        while pending:
            if (
                checkpointer is not None
                and checkpointer.interrupted
                and not forwarded
            ):
                # The CLI's deferred-interrupt (or deadline) handler set
                # the parent flag; relay it to the workers, who turn it
                # into a coordinated final-shard wave.
                checkpointer.interrupted = False
                _forward_sigint(children)
                forwarded = True
            try:
                ready = conn_wait(list(pending), timeout=0.2)
            except KeyboardInterrupt:
                _forward_sigint(children)
                forwarded = True
                continue
            failed = False
            for conn in ready:
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    died.append(index_of[conn])
                    pending.discard(conn)
                    continue
                except KeyboardInterrupt:
                    _forward_sigint(children)
                    forwarded = True
                    break
                results[payload["index"]] = payload
                pending.discard(conn)
                if "error" in payload or "health_abort" in payload:
                    # A worker that stopped participating in GVT waves
                    # would deadlock its siblings; stop the run now and
                    # report with whatever results already arrived.
                    failed = True
            if died or failed:
                break
        if died:
            _kill_children(children)
            raise ConfigurationError(
                f"worker process(es) {sorted(died)} died without reporting "
                "a result (killed or crashed hard); partial results from "
                f"{sorted(results)} discarded"
            )
        if pending:
            # A worker reported an error; its siblings may be stuck in a
            # wave that can no longer complete — take them down.
            _kill_children(children)
        for proc in children:
            proc.join()
    finally:
        for proc in children:
            if proc.is_alive():
                _kill_children(children)
                break
        for conn in parent_conns:
            try:
                conn.close()
            except OSError:
                pass
        for shm in segments:
            destroy_segment(shm)

    for i in range(procs):
        part = results.get(i)
        if part is None:
            raise ConfigurationError(f"worker {i} produced no result")
        if "error" in part:
            raise ConfigurationError(
                f"worker {i} failed:\n{part['error']}"
            )
    aborts = [p["health_abort"] for p in results.values() if "health_abort" in p]
    if aborts:
        # Same exception type and message as the worker's watchdog raised.
        exc = HealthIntervention.__new__(HealthIntervention)
        Exception.__init__(exc, aborts[0])
        raise exc

    parts = [results[i] for i in range(procs)]
    if tracer is not None:
        _replay_commits(tracer, parts)
    if metrics is not None:
        _merge_metrics(metrics, parts)
    if spans is not None:
        _merge_spans(spans, parts)
    if health is not None and health.sink is not None:
        for part in parts:
            for row in part["health"] or ():
                health.sink.write_health(row)

    if any(p["interrupted"] for p in parts):
        raise KeyboardInterrupt

    merged = _merge_run_stats([p["run"] for p in parts], config)
    parent_lps = model.build()
    for part in parts:
        for lp_id, blob in part["lp_blobs"].items():
            model.mp_import_lp(parent_lps[lp_id], blob)
    model.mp_merge_shards([p["model_shard"] for p in parts])
    model_stats = model.collect_stats(parent_lps)
    return RunResult(model_stats=model_stats, run=merged, lps=parent_lps)
