"""The worker-side Time Warp kernel for multiprocess execution.

One :class:`MPWorkerKernel` runs in each forked worker process.  It *is*
a full :class:`~repro.core.optimistic.TimeWarpKernel` — same rollback
machinery, same queues, same fossil collection — specialised three ways:

* its transport is a :class:`~repro.mp.transport.RingTransport`, so
  sends whose destination PE belongs to another worker are struct-encoded
  onto a shared-memory ring instead of delivered in-process;
* rollback of a send whose positive already crossed a ring transmits an
  anti *frame* down the same ring (FIFO guarantees it cannot overtake
  its positive) instead of cancelling a shared object;
* GVT comes from cross-process token waves (:mod:`repro.mp.gvt`) over
  the control rings, not from inspecting other workers' queues.

The scheduling loop mirrors the base kernel's round structure but only
steps this worker's *owned* PE slice, drains the inbound rings every
round, and turns every GVT boundary into a stop-and-drain wave: worker 0
(the leader) initiates, everyone else joins when the token reaches them.
All the boundary machinery — fossil collection, throttle, metrics,
health watchdog, checkpoint shards — runs at wave boundaries exactly
like the inline kernel runs it at GVT boundaries.

Interrupts never raise inside a worker: the SIGINT handler only sets
``self.intr``, the flag rides the next token, and the RESULT broadcast
makes *every* worker write a final checkpoint shard at the same wave
before exiting — a worker that unilaterally abandoned the token ring
would deadlock its peers mid-wave.
"""

from __future__ import annotations

import time

from repro.core.optimistic import TimeWarpKernel
from repro.errors import SchedulingError
from repro.mp.gvt import TOKEN, WaveCodec
from repro.vt.time import TIME_HORIZON

__all__ = ["MPWorkerKernel"]

#: Back-off while spinning on a control ring.  On single-core hosts this
#: sleep is what hands the CPU to the peer we are waiting for.
_SPIN_SLEEP = 0.0002
_SPIN_FAST = 64
#: A control frame that fails to arrive for this long means a peer died
#: or its publication was irrecoverably lost: raise instead of spinning
#: forever.  Wave passes normally complete in milliseconds; the margin
#: covers single-core scheduling of procs+1 processes plus checkpoint
#: I/O at a shared boundary.
_CTL_STALL_SECONDS = 120.0


class MPWorkerKernel(TimeWarpKernel):
    """One worker process's slice of a multiprocess Time Warp run."""

    def __init__(
        self,
        model,
        config,
        *,
        worker_index: int,
        transport,
        ctl_in,
        ctl_out,
    ) -> None:
        super().__init__(model, config)
        self.worker_index = worker_index
        self.procs = config.procs
        ppw = config.n_pes // config.procs
        self.pe_lo = worker_index * ppw
        self.pe_hi = self.pe_lo + ppw
        self.owned_pes = self.pes[self.pe_lo : self.pe_hi]
        #: lp id -> does this worker own the LP's PE (hot in the anti path).
        self._lp_owned = [
            self.pe_lo <= p < self.pe_hi for p in self.pe_of_lp
        ]
        # Swap in the ring transport.  ``_direct`` off keeps every send on
        # the generic _emit path (where the transport sees it) and makes
        # _install_fast_paths record the vectorization decline for us.
        transport.bind(self)
        self.transport = transport
        self.ring_transport = transport
        self._direct = False
        self._wave_codec = WaveCodec(config.procs)
        self._ctl_in = ctl_in
        self._ctl_out = ctl_out
        #: Token passes this worker took part in (RunStats.gvt_token_rounds).
        self.gvt_token_rounds = 0
        #: Set asynchronously by the worker's SIGINT handler; piggybacked
        #: on the next wave token, never acted on unilaterally.
        self.intr = False
        #: True once a wave told us to exit early (parent re-raises).
        self.interrupted = False
        #: Optional callable merged into the checkpoint loop dict (the
        #: worker harness persists its commit log through this).
        self.loop_extra = None

    # ------------------------------------------------------------------
    # Anti-messages across the rings.
    # ------------------------------------------------------------------
    def _flag_cancelled(self, ev) -> None:
        """Rollback found a sent message to cancel.

        If its positive crossed a ring (``color`` carries the frame uid
        stamped at send time), transmit the anti frame *before* the base
        bookkeeping marks the journal copy cancelled — the guard on
        ``ev.cancelled`` keeps a twice-rolled-back send from emitting a
        second anti for the same uid.
        """
        if ev.color and not ev.cancelled and not self._lp_owned[ev.dst]:
            self.ring_transport.send_anti(ev)
        super()._flag_cancelled(ev)

    # ------------------------------------------------------------------
    # Wave plumbing.
    # ------------------------------------------------------------------
    def _local_min(self) -> float:
        """Minimum virtual time of this worker's pending events."""
        best = TIME_HORIZON
        for pe in self.owned_pes:
            key = pe.pending.peek_key()
            if key is not None and key.ts < best:
                best = key.ts
        return best

    def _ctl_send(self, frame: bytes) -> None:
        ring = self._ctl_out
        while not ring.try_write(frame):
            # Full ctl ring: the peer is behind.  Republish our tail so
            # it cannot be *stuck* behind on a lost publication.
            ring.republish_tail()
            time.sleep(_SPIN_SLEEP)

    def _ctl_recv(self) -> bytes:
        """Next control frame; keeps the data plane moving while waiting.

        The spin loop heartbeats this worker's own control cursors (its
        ctl-out tail is what the *downstream* peer is waiting on, and
        the whole ring of workers spins here during a wave, so a lost
        token publication heals within one spin).  A frame that never
        arrives raises after :data:`_CTL_STALL_SECONDS` rather than
        deadlocking the token ring silently.
        """
        read = self._ctl_in.try_read
        ctl_in = self._ctl_in
        ctl_out = self._ctl_out
        transport = self.ring_transport
        spins = 0
        deadline = None
        while True:
            frame = read()
            if frame is not None:
                return frame
            transport.flush_out()
            transport.drain()
            ctl_out.republish_tail()
            ctl_in.republish_head()
            spins += 1
            if spins >= _SPIN_FAST:
                now = time.monotonic()
                if deadline is None:
                    deadline = now + _CTL_STALL_SECONDS
                elif now > deadline:
                    raise SchedulingError(
                        f"worker {self.worker_index}: no control frame for "
                        f"{_CTL_STALL_SECONDS:.0f}s (peer dead or token "
                        f"publication lost)"
                    )
                time.sleep(_SPIN_SLEEP)

    def _report_slot(self):
        t = self.ring_transport
        return (t.sent_total, t.recv_total, self._local_min(), self.intr)

    def _lead_wave(self):
        """Worker 0: run token passes until two identical balanced cuts."""
        codec = self._wave_codec
        spans = self.spans
        t0 = spans.clock() if spans is not None else 0.0
        transport = self.ring_transport
        prev = None
        pass_no = 0
        while True:
            pass_no += 1
            self.gvt_token_rounds += 1
            transport.flush_out()
            transport.drain()
            slots = [(0, 0, TIME_HORIZON, False)] * self.procs
            slots[0] = self._report_slot()
            self._ctl_send(codec.encode_token(pass_no, slots))
            _, slots = codec.decode_token(self._ctl_recv())
            sent = sum(s[0] for s in slots)
            recv = sum(s[1] for s in slots)
            if sent == recv and slots == prev:
                break
            prev = slots
        gvt = min(s[2] for s in slots)
        if gvt < self.gvt:
            gvt = self.gvt
        stop = gvt >= self.cfg.end_time
        intr = self.intr or any(s[3] for s in slots)
        self._ctl_send(codec.encode_result(gvt, stop, intr))
        self._ctl_recv()  # absorb the RESULT coming back around
        if spans is not None:
            spans.record("gvt", t0, spans.clock(), n=pass_no)
        return gvt, stop, intr

    def _participate_wave(self, frame: bytes):
        """Workers 1..P-1: stop-and-drain until the RESULT broadcast."""
        codec = self._wave_codec
        spans = self.spans
        t0 = spans.clock() if spans is not None else 0.0
        transport = self.ring_transport
        idx = self.worker_index
        while True:
            if frame[0] == TOKEN:
                self.gvt_token_rounds += 1
                transport.flush_out()
                transport.drain()
                pass_no, slots = codec.decode_token(frame)
                slots[idx] = self._report_slot()
                self._ctl_send(codec.encode_token(pass_no, slots))
                frame = self._ctl_recv()
            else:
                self._ctl_send(frame)  # forward the broadcast onward
                if spans is not None:
                    spans.record("gvt", t0, spans.clock())
                return codec.decode_result(frame)

    def _rebuild_remote_live(self) -> None:
        """Resume: re-key remote-born live events by their frame uid.

        Every remote-born event still above GVT sits in an owned pending
        queue or an owned KP's processed list, stamped with its uid in
        ``color``; snapshots preserve ``color``, so a scan rebuilds the
        exact table the anti frames address.
        """
        from repro.ckpt.state import _queue_events

        live = self.ring_transport._remote_live
        live.clear()
        for pe in self.owned_pes:
            for ev in _queue_events(pe.pending):
                if ev.color:
                    live[ev.color] = ev
        for kp in self.kps:
            for ev in kp.processed:
                if ev.color:
                    live[ev.color] = ev

    # ------------------------------------------------------------------
    # The worker executive.
    # ------------------------------------------------------------------
    def run(self):
        """Run this worker's PE slice to ``end_time`` (or interruption).

        Returns the merged-ready RunResult, or ``None`` when a wave
        carried the interrupt flag (the final shard is already written;
        the parent turns this into KeyboardInterrupt).
        """
        self._install_fast_paths()
        cfg = self.cfg
        end = cfg.end_time
        transport = self.ring_transport
        resume = self._resume
        if resume is None:
            self._current_event = None
            # Bootstrap *owned* LPs only: every worker holds the full
            # population (fork inherits it), so seeding all of them would
            # duplicate each initial event once per worker.
            owned = self._lp_owned
            for lp in self.lps:
                if owned[lp.id]:
                    lp._now = -1.0
                    lp.on_init()
            transport.flush_out()

        pes = self.owned_pes
        stats_by_pe = [pe.stats for pe in pes]
        sched_per_round = self.cost.sched_per_round
        rounds = 0
        gvt_overhead = max(
            self.cost.gvt_overhead(pe.lp_count, len(pe.kp_ids)) for pe in pes
        )
        throttle = self.throttle
        metrics = self.metrics
        spans = self.spans
        clock = spans.clock if spans is not None else None
        ckpt = self.ckpt
        health = self.health
        eff_batch = cfg.batch_size
        eff_window = cfg.window
        last_processed = 0
        last_rolled = 0
        if resume is not None:
            rounds = resume["rounds"]
            eff_batch = resume["eff_batch"]
            eff_window = resume["eff_window"]
            last_processed = resume["last_processed"]
            last_rolled = resume["last_rolled"]
            transport._next_uid = resume["mp_uid"]
            self._rebuild_remote_live()
            self._resume = None
        leader = self.worker_index == 0
        interval = cfg.gvt_interval

        def loop_state():
            state = {
                "rounds": rounds,
                "eff_batch": eff_batch,
                "eff_window": eff_window,
                "last_processed": last_processed,
                "last_rolled": last_rolled,
                "mp_uid": transport._next_uid,
            }
            if self.loop_extra is not None:
                state.update(self.loop_extra())
            return state

        while True:
            if eff_window is not None:
                limit = min(end, self.gvt + eff_window)
            else:
                limit = end
            any_work = False
            for st in stats_by_pe:
                st.round_busy = 0.0
            for pe in pes:
                if spans is None:
                    done = pe.process_batch(self, eff_batch, limit)
                else:
                    t0 = clock()
                    done = pe.process_batch(self, eff_batch, limit)
                    if done:
                        spans.record("exec", t0, clock(), pe=pe.id, n=done)
                if done:
                    any_work = True
            rounds += 1
            round_max = 0.0
            for st in stats_by_pe:
                if st.round_busy > round_max:
                    round_max = st.round_busy
            self.makespan_units += round_max + sched_per_round
            transport.flush_out()
            if spans is None:
                transport.drain()
            else:
                t0 = clock()
                n = transport.drain()
                if n:
                    spans.record("transport", t0, clock(), n=n)

            # --- wave entry ------------------------------------------
            result = None
            if leader:
                if rounds % interval == 0 or not any_work or self.intr:
                    result = self._lead_wave()
            else:
                frame = self._ctl_in.try_read()
                if frame is not None:
                    result = self._participate_wave(frame)
                elif not any_work:
                    time.sleep(_SPIN_SLEEP)
            if result is None:
                continue

            # --- wave boundary (the inline kernel's GVT boundary) -----
            gvt, stop, intr = result
            self.gvt = gvt
            self.gvt_rounds += 1
            # Prune the uid table before collection recycles the objects.
            transport.prune_below(gvt)
            if spans is None:
                collected = self.fossil_collect(gvt)
            else:
                t0 = clock()
                collected = self.fossil_collect(gvt)
                if collected:
                    spans.record("fossil", t0, clock(), n=collected)
            self.makespan_units += gvt_overhead + (
                self.cost.fossil_per_event * collected / len(pes)
            )
            if throttle is not None:
                processed_now = sum(pe.stats.processed for pe in pes)
                rolled_now = sum(
                    kp.stats.events_rolled_back for kp in self.kps
                )
                throttle.update(
                    processed_now - last_processed, rolled_now - last_rolled
                )
                last_processed, last_rolled = processed_now, rolled_now
                eff_batch = throttle.scaled(cfg.batch_size, 1)
                if cfg.window is not None:
                    eff_window = throttle.scaled(cfg.window, cfg.window / 64.0)
            if metrics is not None:
                self._sample_metrics(metrics, min(gvt, end))
            if health is not None:
                health.boundary_optimistic(self)
            if intr:
                # Every worker writes its final shard at this same wave,
                # keeping the shard set resumable as a unit.
                if ckpt is not None:
                    if ckpt.heartbeat is not None:
                        ckpt.heartbeat.touch()
                    ckpt.boundaries += 1
                    ckpt.write(self, loop_state)
                self.interrupted = True
                return None
            if stop:
                break
            if ckpt is not None:
                # Worker checkpointers never carry ``interrupted`` (the
                # interrupt travels the wave instead), so this cannot
                # raise KeyboardInterrupt out of the token ring.
                ckpt.boundary(self, loop_state)

        transport.prune_below(TIME_HORIZON)
        self.fossil_collect(TIME_HORIZON)
        if metrics is not None:
            self._sample_metrics(metrics, end)
        return self._build_result(rounds)

    # ------------------------------------------------------------------
    def _build_result(self, rounds: int):
        result = super()._build_result(rounds)
        stats = result.run
        transport = self.ring_transport
        stats.procs = self.procs
        stats.ring_messages = transport.ring_messages()
        stats.ring_bytes = transport.ring_bytes()
        stats.ring_full_stalls = transport.full_stalls
        stats.gvt_token_rounds = self.gvt_token_rounds
        return result
