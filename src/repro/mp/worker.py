"""Worker process harness: bootstrap, telemetry shims, result marshaling.

``worker_main`` is the target of every forked worker process.  It builds
the worker's kernel (a full :class:`~repro.mp.kernel.MPWorkerKernel`, or
a plain inline kernel when ``procs == 1`` — the single-worker case needs
no rings, so its only overhead over in-process execution is the fork and
the result marshaling, which is what the ``--procs 1`` bench overhead
gate measures), attaches worker-local telemetry, runs, and ships one
result dict back over the spec's pipe.

The result pipe is the *only* pickled channel, and it carries end-of-run
aggregates exactly once — events never travel it.  Per-LP model state
crosses as ``Model.mp_export_lp`` blobs, kernel counters as the worker's
RunStats, committed events as plain key tuples, telemetry as the
samples' own dict forms.

Checkpoints are per-worker shards: ``<dir>/shard_<i>`` with the parent
marker extended by ``{"shard": i, "procs": P}``.  The wave protocol
makes every worker hit checkpoint boundaries at the same wave numbers,
so shard sequence numbers advance in lockstep; a kill can leave at most
a one-snapshot skew, which resume absorbs by loading the highest
sequence number present in *every* shard directory.
"""

from __future__ import annotations

import signal
import traceback
from dataclasses import replace
from pathlib import Path

from repro.ckpt.checkpoint import Checkpointer
from repro.ckpt.snapshot import SNAPSHOT_SUFFIX, list_snapshots, read_snapshot
from repro.core.optimistic import TimeWarpKernel
from repro.errors import HealthIntervention, SnapshotError
from repro.health.watchdog import Watchdog
from repro.mp.kernel import MPWorkerKernel
from repro.mp.transport import RingTransport
from repro.obs.metrics import MetricsRecorder
from repro.obs.spans import SpanTracer

__all__ = ["worker_main", "shard_dir", "common_resume_seq"]


class _CommitLog:
    """Tracer shim: committed key tuples plus exec/undo tallies.

    A full Tracer would retain every EXEC record in worker memory; the
    parent only needs the committed sequence (the schedule-invariant)
    and the lifecycle counts, so that is all this keeps.
    """

    __slots__ = ("commits", "exec_count", "undo_count")

    def __init__(self) -> None:
        self.commits: list[tuple] = []
        self.exec_count = 0
        self.undo_count = 0

    def on_exec(self, event) -> None:
        self.exec_count += 1

    def on_undo(self, event) -> None:
        self.undo_count += 1

    def on_commit(self, event) -> None:
        key = event.key
        self.commits.append((key.ts, key.origin, key.seq, event.dst, event.kind))


def shard_dir(parent_dir, index: int) -> Path:
    """The snapshot directory of one worker's checkpoint shard."""
    return Path(parent_dir) / f"shard_{index}"


def common_resume_seq(shard_dirs) -> int | None:
    """Highest snapshot sequence present in *every* shard directory.

    A kill between two workers' final writes leaves the shard set skewed
    by one sequence number; resuming from the common prefix keeps the
    restored cut consistent (all shards captured at the same wave).
    """
    common: set[int] | None = None
    for directory in shard_dirs:
        seqs = set()
        for path in list_snapshots(directory):
            stem = path.name[: -len(SNAPSHOT_SUFFIX)]
            try:
                seqs.add(int(stem.rsplit("_", 1)[-1]))
            except ValueError:
                continue
        common = seqs if common is None else common & seqs
    if not common:
        return None
    return max(common)


def _load_shard(ckpt: Checkpointer, seq: int) -> None:
    """Arm ``ckpt`` to restore one specific shard snapshot on bind."""
    path = ckpt.dir / f"ckpt_{seq:06d}{SNAPSHOT_SUFFIX}"
    payload = read_snapshot(path)
    marker = payload.get("marker", {})
    if marker != ckpt.marker:
        raise SnapshotError(
            f"{path}: shard marker mismatch (snapshot {marker!r} vs "
            f"run {ckpt.marker!r}); refusing to resume into a "
            "differently-configured run"
        )
    meta = payload.get("ckpt", {})
    ckpt.boundaries = meta.get("boundaries", 0)
    ckpt.seq = meta.get("seq", 0) + 1
    ckpt._restore_payload = payload


def _build_kernel(spec):
    cfg = spec.config
    if spec.procs == 1:
        # Single worker: no rings, no waves — the plain inline kernel in
        # a forked child, with inline interrupt semantics.
        return TimeWarpKernel(spec.model, replace(cfg, parallelism="inline"))
    transport = RingTransport(
        spec.index,
        spec.procs,
        cfg.n_pes // spec.procs,
        spec.codec,
        spec.out_rings,
        spec.in_rings,
    )
    return MPWorkerKernel(
        spec.model,
        cfg,
        worker_index=spec.index,
        transport=transport,
        ctl_in=spec.ctl_in,
        ctl_out=spec.ctl_out,
    )


def _run_worker(spec) -> dict:
    model = spec.model
    cfg = spec.config
    kernel = _build_kernel(spec)
    is_mp = spec.procs > 1

    tracer = _CommitLog() if spec.want_trace else None
    if tracer is not None:
        kernel.attach_tracer(tracer)
    metrics = MetricsRecorder() if spec.want_metrics else None
    if metrics is not None:
        kernel.attach_metrics(metrics)
    spans = SpanTracer() if spec.want_spans else None
    if spans is not None:
        kernel.attach_spans(spans)
    health = (
        Watchdog(spec.health_config) if spec.health_config is not None else None
    )
    if health is not None:
        kernel.attach_health(health)

    ckpt = None
    if spec.ckpt_dir is not None:
        marker = dict(spec.ckpt_marker)
        marker["shard"] = spec.index
        marker["procs"] = spec.procs
        ckpt = Checkpointer(
            shard_dir(spec.ckpt_dir, spec.index),
            every=spec.ckpt_every,
            marker=marker,
            # Only worker 0 touches the liveness heartbeat — one file,
            # one writer; the waves keep all workers in lockstep anyway.
            heartbeat=spec.ckpt_heartbeat if spec.index == 0 else None,
        )
        if spec.resume:
            seq = common_resume_seq(
                [shard_dir(spec.ckpt_dir, i) for i in range(spec.procs)]
            )
            if seq is None:
                raise SnapshotError(
                    f"no snapshot sequence common to all {spec.procs} "
                    f"checkpoint shards under {spec.ckpt_dir}; nothing to "
                    "resume from"
                )
            _load_shard(ckpt, seq)
        kernel.attach_checkpointer(ckpt)

    if kernel._resume is not None:
        # Shard snapshots persist the worker's commit log (committed
        # sequences must survive a kill+resume bit-identically); pop it
        # back out before the kernel consumes the loop dict.
        restored = kernel._resume.pop("mp_commits", None)
        if tracer is not None and restored:
            tracer.commits = list(restored)
        if metrics is not None:
            # Prime the recorder's cumulative baselines from the restored
            # counters, then discard the priming sample: the worker's
            # post-resume time series starts at the snapshot, not at 0.
            kernel._sample_metrics(metrics, min(kernel.gvt, cfg.end_time))
            metrics.samples.clear()
            metrics.n_samples = 0

    # Interrupts: never raise inside a multi-worker kernel (the flag
    # rides the next GVT wave so all shards stay consistent); the
    # single-worker child keeps the inline engine's semantics.
    if is_mp:
        def _on_sigint(signum, frame):
            kernel.intr = True
    else:
        def _on_sigint(signum, frame):
            if ckpt is not None:
                ckpt.request_interrupt()
            else:
                raise KeyboardInterrupt
    signal.signal(signal.SIGINT, _on_sigint)

    if is_mp and tracer is not None and ckpt is not None:
        kernel.loop_extra = lambda: {"mp_commits": list(tracer.commits)}

    interrupted = False
    result = None
    try:
        result = kernel.run()
    except KeyboardInterrupt:
        interrupted = True
    if result is None:
        interrupted = True

    payload = {
        "index": spec.index,
        "interrupted": interrupted,
        "run": None if result is None else result.run,
        "lp_blobs": {},
        "model_shard": None,
        "commits": None if tracer is None else tracer.commits,
        "exec_count": 0 if tracer is None else tracer.exec_count,
        "undo_count": 0 if tracer is None else tracer.undo_count,
        "metrics": (
            None if metrics is None else [s.as_dict() for s in metrics.samples]
        ),
        "spans": None if spans is None else [s.as_dict() for s in spans.spans()],
        "span_totals": None if spans is None else dict(spans.totals),
        "health": None if health is None else [e.to_dict() for e in health.events],
        "ckpt_written": 0 if ckpt is None else ckpt.written,
    }
    if not interrupted:
        owned = kernel._lp_owned if is_mp else None
        payload["lp_blobs"] = {
            lp.id: model.mp_export_lp(lp)
            for lp in kernel.lps
            if owned is None or owned[lp.id]
        }
        payload["model_shard"] = model.mp_export_shard()
    return payload


def worker_main(spec) -> None:
    """Forked-child entry point: run, marshal, send exactly one dict."""
    conn = spec.conn
    try:
        payload = _run_worker(spec)
    except HealthIntervention as exc:
        # The watchdog escalated past in-run remediation; the parent
        # re-raises a HealthIntervention with this message so callers see
        # the same exception type as an inline run.
        payload = {"index": spec.index, "health_abort": str(exc)}
    except BaseException:
        payload = {"index": spec.index, "error": traceback.format_exc()}
    try:
        conn.send(payload)
    finally:
        conn.close()
