"""Pickle-free event encoding for the shared-memory rings.

Every frame that crosses a data ring is fixed-width ``struct`` packing —
no pickle on the hot path, ever.  Two frame types:

* **positive** (``P``): a real event in flight to a remote worker's LP.
  Header ``<B Q d I I I B`` = (type, uid, ts, origin, seq, dst, kind_id)
  followed by the kind's payload struct.
* **anti** (``A``): a Time Warp anti-message for a previously sent
  positive, identified by the sender-assigned ``uid`` (the full event
  key rides along for error reporting only).

The payload layout is declared by the *model* through
``Model.mp_event_schema()``: a mapping of event kind to an ordered
``((field, struct_char), ...)`` tuple over the event's ``data`` dict.
Workers on both sides build identical codecs from the same model, so a
kind id is just the kind's index in sorted order.  A model without a
schema (or an event whose kind is missing from it) cannot cross a
process boundary, and the runtime refuses the run up front rather than
silently pickling.

The ``uid`` exists because lazy cancellation can put a *new, different*
positive for the same event key on the wire before the anti-message for
the old one (the divergent-resend window): keying the receiver's
live-remote table by event key would let the late anti kill the wrong
message.  Sender-unique uids (``worker_index + procs * counter``) make
every positive individually addressable.
"""

from __future__ import annotations

import struct

from repro.errors import ConfigurationError

__all__ = ["EventCodec", "POSITIVE", "ANTI"]

POSITIVE = 0x50  # "P"
ANTI = 0x41      # "A"

_POS_HEAD = struct.Struct("<BQdIIIB")
_ANTI = struct.Struct("<BQdIII")


class EventCodec:
    """Encode/decode events against one model's declared schema."""

    __slots__ = ("kinds", "_kind_id", "_fields", "_structs")

    def __init__(self, schema) -> None:
        if not schema:
            raise ConfigurationError(
                "model declares no mp event schema; process-mode runs need "
                "Model.mp_event_schema() (see docs/KERNEL.md)"
            )
        self.kinds = tuple(sorted(schema))
        if len(self.kinds) > 0xFF:
            raise ConfigurationError("more than 255 event kinds")
        self._kind_id = {kind: i for i, kind in enumerate(self.kinds)}
        self._fields = []
        self._structs = []
        for kind in self.kinds:
            spec = tuple(schema[kind])
            self._fields.append(tuple(name for name, _ in spec))
            self._structs.append(
                struct.Struct("<" + "".join(ch for _, ch in spec))
            )

    # -- positives -----------------------------------------------------
    def encode_event(self, ev, uid: int) -> bytes:
        """Pack one positive event into a frame addressed by ``uid``."""
        kind_id = self._kind_id.get(ev.kind)
        if kind_id is None:
            raise ConfigurationError(
                f"event kind {ev.kind!r} is not in the model's mp event "
                "schema; it cannot cross a process boundary"
            )
        key = ev.key
        head = _POS_HEAD.pack(
            POSITIVE, uid, key.ts, key.origin, key.seq, ev.dst, kind_id
        )
        fields = self._fields[kind_id]
        if not fields:
            return head
        data = ev.data
        return head + self._structs[kind_id].pack(
            *(data[name] for name in fields)
        )

    def decode(self, frame: bytes):
        """Decode one frame.

        Returns ``("pos", uid, ts, origin, seq, dst, kind, data)`` for a
        positive or ``("anti", uid, ts, origin, seq, dst)`` for an
        anti-message.
        """
        ftype = frame[0]
        if ftype == POSITIVE:
            _, uid, ts, origin, seq, dst, kind_id = _POS_HEAD.unpack_from(frame)
            fields = self._fields[kind_id]
            if fields:
                values = self._structs[kind_id].unpack_from(
                    frame, _POS_HEAD.size
                )
                data = dict(zip(fields, values))
            else:
                data = {}
            return ("pos", uid, ts, origin, seq, dst, self.kinds[kind_id], data)
        if ftype == ANTI:
            _, uid, ts, origin, seq, dst = _ANTI.unpack(frame)
            return ("anti", uid, ts, origin, seq, dst)
        raise ConfigurationError(f"corrupt ring frame (type byte {ftype:#x})")

    # -- antis ---------------------------------------------------------
    @staticmethod
    def encode_anti(ev, uid: int) -> bytes:
        """Pack the anti-message frame for the positive sent as ``uid``."""
        key = ev.key
        return _ANTI.pack(ANTI, uid, key.ts, key.origin, key.seq, ev.dst)
