"""A tandem M/M/1 queueing network — analytically checkable kernel food.

The hot-potato model validates the kernel against a *sequential oracle*;
this model validates it against *closed-form theory*: a line of M/M/1
queues with Poisson arrivals (rate λ) and exponential service (rate μ)
has, in steady state,

* utilisation        ρ = λ/μ,
* mean number in system   L = ρ / (1 − ρ),
* mean sojourn time        W = 1 / (μ − λ),
* and Little's law         L = λ·W  holds even out of steady state.

The test suite runs the model on every engine and checks the measured
statistics against these formulas — a correctness anchor that does not
depend on any other part of this repository being right.

Reverse computation note: each queue LP's state is (queue depth, busy
flag, accumulators); all transitions save what they need in the event,
so the model runs optimistically like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.event import Event
from repro.core.lp import LogicalProcess, Model
from repro.errors import ConfigurationError

__all__ = ["MM1Config", "QueueLP", "SourceLP", "SinkLP", "MM1Model"]

ARRIVAL = "ARRIVAL"
DEPART = "DEPART"
GENERATE = "GENERATE"

#: Fixed transfer delay between stations — also the model's lookahead.
TRANSFER = 0.05


@dataclass(frozen=True)
class MM1Config:
    """Tandem queue parameters."""

    #: Queueing stations in series.
    stations: int = 1
    #: Poisson arrival rate λ.
    arrival_rate: float = 0.5
    #: Exponential service rate μ per station.
    service_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.stations < 1:
            raise ConfigurationError("need at least one station")
        if self.arrival_rate <= 0 or self.service_rate <= 0:
            raise ConfigurationError("rates must be positive")
        if self.arrival_rate >= self.service_rate:
            raise ConfigurationError(
                f"unstable queue: λ={self.arrival_rate} >= μ={self.service_rate}"
            )

    @property
    def rho(self) -> float:
        """Offered load ρ = λ/μ."""
        return self.arrival_rate / self.service_rate

    @property
    def expected_sojourn(self) -> float:
        """Theoretical mean time in one station, W = 1/(μ-λ)."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def expected_in_system(self) -> float:
        """Theoretical mean jobs in one station, L = ρ/(1-ρ)."""
        return self.rho / (1.0 - self.rho)


class SourceLP(LogicalProcess):
    """Poisson job source (LP 0)."""

    def __init__(self, lp_id: int, cfg: MM1Config):
        super().__init__(lp_id)
        self.cfg = cfg
        self.state = [0]  # jobs generated

    def on_init(self) -> None:
        self.send(TRANSFER + self.rng.exponential(1.0 / self.cfg.arrival_rate),
                  self.id, GENERATE)

    def forward(self, event: Event) -> None:
        self.state[0] += 1
        # Hand the job to station 1 and schedule the next arrival.
        self.send(self.now + TRANSFER, self.id + 1, ARRIVAL,
                  {"born": self.now})
        gap = self.rng.exponential(1.0 / self.cfg.arrival_rate)
        self.send(self.now + TRANSFER + gap, self.id, GENERATE)

    def reverse(self, event: Event) -> None:
        self.state[0] -= 1


class QueueLP(LogicalProcess):
    """One M/M/1 station: FIFO queue + exponential server.

    Time-weighted queue-length integration (for L) uses the classic
    accumulate-on-change trick, fully reversible via saved deltas.
    """

    __slots__ = ("cfg",)

    def __init__(self, lp_id: int, cfg: MM1Config):
        super().__init__(lp_id)
        self.cfg = cfg
        self.state = {
            "queue": [],          # arrival payloads waiting (FIFO)
            "busy": False,
            "in_service": None,   # payload being served
            "last_change": 0.0,   # last time num-in-system changed
            "area": 0.0,          # ∫ num-in-system dt
            "completed": 0,
            "busy_area": 0.0,     # ∫ busy dt  (for utilisation)
        }

    # -- helpers ---------------------------------------------------------
    def _num_in_system(self) -> int:
        s = self.state
        return len(s["queue"]) + (1 if s["busy"] else 0)

    def _advance_clock(self, event: Event) -> None:
        # Reverse-computation pitfall: floating-point accumulation is NOT
        # reversible by subtraction — ``(a + x) - x`` can differ from ``a``
        # in the last ulp, and a single ulp breaks bit-identical engine
        # equivalence.  Save the old *values* and restore them instead.
        s = self.state
        event.saved["clock"] = (s["last_change"], s["area"], s["busy_area"])
        dt = self.now - s["last_change"]
        s["area"] += dt * self._num_in_system()
        if s["busy"]:
            s["busy_area"] += dt
        s["last_change"] = self.now

    def _rc_clock(self, event: Event) -> None:
        s = self.state
        s["last_change"], s["area"], s["busy_area"] = event.saved["clock"]

    # -- handlers --------------------------------------------------------
    def forward(self, event: Event) -> None:
        if event.kind == ARRIVAL:
            self._advance_clock(event)
            s = self.state
            if s["busy"]:
                s["queue"].append(event.data)
                event.saved["action"] = "queued"
            else:
                s["busy"] = True
                s["in_service"] = event.data
                service = self.rng.exponential(1.0 / self.cfg.service_rate)
                self.send(self.now + service, self.id, DEPART)
                event.saved["action"] = "served"
        else:  # DEPART
            self._advance_clock(event)
            s = self.state
            done = s["in_service"]
            event.saved["done"] = done
            s["completed"] += 1
            # Forward the job downstream (the sink is the last LP).
            self.send(self.now + TRANSFER, self.id + 1, ARRIVAL, dict(done))
            if s["queue"]:
                nxt = s["queue"].pop(0)
                s["in_service"] = nxt
                event.saved["action"] = "next"
                service = self.rng.exponential(1.0 / self.cfg.service_rate)
                self.send(self.now + service, self.id, DEPART)
            else:
                s["busy"] = False
                s["in_service"] = None
                event.saved["action"] = "idle"

    def reverse(self, event: Event) -> None:
        s = self.state
        action = event.saved["action"]
        if event.kind == ARRIVAL:
            if action == "queued":
                s["queue"].pop()
            else:  # served
                s["busy"] = False
                s["in_service"] = None
        else:  # DEPART
            if action == "next":
                s["queue"].insert(0, s["in_service"])
            s["in_service"] = event.saved["done"]
            s["busy"] = True
            s["completed"] -= 1
        self._rc_clock(event)


class SinkLP(LogicalProcess):
    """Absorbs finished jobs and accumulates sojourn statistics."""

    def __init__(self, lp_id: int):
        super().__init__(lp_id)
        self.state = [0, 0.0]  # [absorbed, total_sojourn]

    def forward(self, event: Event) -> None:
        # Same float-accumulator rule as QueueLP: save, don't subtract.
        event.saved["sojourn"] = self.state[1]
        self.state[0] += 1
        self.state[1] += self.now - event.data["born"]

    def reverse(self, event: Event) -> None:
        self.state[0] -= 1
        self.state[1] = event.saved["sojourn"]


class MM1Model(Model):
    """Source → stations… → sink, with closed-form expectations attached."""

    def __init__(self, cfg: MM1Config | None = None):
        self.cfg = cfg if cfg is not None else MM1Config()
        self.lookahead = TRANSFER

    def build(self) -> list[LogicalProcess]:
        cfg = self.cfg
        lps: list[LogicalProcess] = [SourceLP(0, cfg)]
        for i in range(cfg.stations):
            lps.append(QueueLP(1 + i, cfg))
        lps.append(SinkLP(1 + cfg.stations))
        return lps

    def collect_stats(self, lps: list[LogicalProcess]) -> dict[str, Any]:
        source: SourceLP = lps[0]  # type: ignore[assignment]
        sink: SinkLP = lps[-1]  # type: ignore[assignment]
        stations = lps[1:-1]
        per_station = []
        for q in stations:
            s = q.state
            per_station.append(
                {
                    "completed": s["completed"],
                    "area": s["area"],
                    "busy_area": s["busy_area"],
                    "last_change": s["last_change"],
                    "depth_now": len(s["queue"]) + (1 if s["busy"] else 0),
                }
            )
        absorbed, total_sojourn = sink.state
        return {
            "generated": source.state[0],
            "absorbed": absorbed,
            "mean_total_sojourn": total_sojourn / absorbed if absorbed else 0.0,
            "per_station": tuple(
                tuple(sorted(d.items())) for d in per_station
            ),
        }
