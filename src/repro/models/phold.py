"""PHOLD: the standard synthetic benchmark for Time Warp kernels.

Every LP starts with a fixed population of jobs.  Handling a job draws an
exponential service delay and a uniformly random destination LP (with a
configurable *remote fraction* biased toward self to model locality), then
forwards the job there.  Total job population is conserved, handler state is
a single counter — which makes PHOLD ideal for validating rollback
machinery: any kernel bug shows up as a job-count or handled-count mismatch
against the sequential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log
from typing import Any

from repro.core.event import Event
from repro.core.lp import LogicalProcess, Model
from repro.errors import ConfigurationError
from repro.rng.lcg import INCREMENT, MASK64, MULTIPLIER, _INV_2_53

__all__ = ["PholdConfig", "PholdLP", "PholdModel"]

#: Event kind used for every PHOLD job hop.
JOB = "job"


@dataclass(frozen=True)
class PholdConfig:
    """PHOLD workload parameters.

    Attributes
    ----------
    n_lps:
        Number of logical processes.
    jobs_per_lp:
        Initial job population per LP.
    mean_delay:
        Mean of the exponential hop delay.
    lookahead:
        Minimum hop delay added to every draw (keeps sends strictly in the
        future, as the kernel requires).
    remote_fraction:
        Probability that a hop leaves the current LP; otherwise the job is
        rescheduled locally.
    """

    n_lps: int = 64
    jobs_per_lp: int = 4
    mean_delay: float = 1.0
    lookahead: float = 0.1
    remote_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_lps < 1:
            raise ConfigurationError("PHOLD needs at least one LP")
        if self.jobs_per_lp < 0:
            raise ConfigurationError("jobs_per_lp cannot be negative")
        if self.lookahead <= 0:
            raise ConfigurationError("lookahead must be positive")
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ConfigurationError("remote_fraction must be in [0, 1]")


class PholdLP(LogicalProcess):
    """One PHOLD process: counts handled jobs and forwards them."""

    __slots__ = ("cfg", "_n_lps", "_neg_mean", "_lookahead", "_remote")

    def __init__(self, lp_id: int, cfg: PholdConfig) -> None:
        super().__init__(lp_id)
        self.cfg = cfg
        # Workload scalars cached off the frozen dataclass: ``forward``
        # reads them on every hop.  Negation is exact, so pre-negating
        # the mean preserves the exponential draw bit-for-bit.
        self._n_lps = cfg.n_lps
        self._neg_mean = -cfg.mean_delay
        self._lookahead = cfg.lookahead
        self._remote = cfg.remote_fraction
        # state = [handled_count]; a list so the default deepcopy snapshot
        # works under the state-saving strategy too.
        self.state = [0]

    def on_init(self) -> None:
        cfg = self.cfg
        for _ in range(cfg.jobs_per_lp):
            ts = cfg.lookahead + self.rng.exponential(cfg.mean_delay)
            self.send(ts, self.id, JOB)

    def forward(self, event: Event) -> None:
        # The RNG draws are the LCG step + output map of ReversibleStream
        # inlined (the same expressions, in the same order), because this
        # handler dominates every PHOLD benchmark: draw values, draw
        # counts and float arithmetic are bit-identical to calling
        # ``unif``/``integer``/``exponential`` — the determinism suite
        # pins the committed sequences that encode this.
        self.state[0] += 1
        rng = self.rng
        state = rng._state
        draws = 1
        dst = self.id
        remote = self._remote
        if remote > 0:
            # unif() < remote_fraction — note the short-circuit: with
            # remote_fraction == 0 no uniform is drawn at all.
            state = (MULTIPLIER * state + INCREMENT) & MASK64
            draws = 2
            if (state >> 11) * _INV_2_53 < remote:
                # integer(0, n_lps - 1)
                state = (MULTIPLIER * state + INCREMENT) & MASK64
                dst = int((state >> 11) * _INV_2_53 * self._n_lps)
                draws = 3
        # lookahead + exponential(mean)
        state = (MULTIPLIER * state + INCREMENT) & MASK64
        rng._state = state
        rng._count += draws
        delay = self._lookahead + self._neg_mean * log(
            1.0 - (state >> 11) * _INV_2_53
        )
        self.send(self._now + delay, dst, JOB)

    def reverse(self, event: Event) -> None:
        # The kernel reverses the RNG draws and cancels the send; the only
        # model state is the counter.
        self.state[0] -= 1


class PholdModel(Model):
    """The PHOLD LP population plus its statistics collector."""

    def __init__(self, cfg: PholdConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else PholdConfig()
        #: Every hop is delayed by at least cfg.lookahead — declared so the
        #: conservative engine can exploit it.
        self.lookahead = self.cfg.lookahead

    def build(self) -> list[LogicalProcess]:
        return [PholdLP(i, self.cfg) for i in range(self.cfg.n_lps)]

    def collect_stats(self, lps: list[LogicalProcess]) -> dict[str, Any]:
        handled = [lp.state[0] for lp in lps]
        return {
            "total_handled": sum(handled),
            "max_handled": max(handled),
            "min_handled": min(handled),
            # Full per-LP vector: the determinism tests compare this, so a
            # single misplaced rollback anywhere shows up.
            "per_lp_handled": tuple(handled),
        }
