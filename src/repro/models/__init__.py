"""Reference models that ship with the kernel.

* :mod:`repro.models.phold` — the classic PHOLD synthetic workload, used
  to exercise and benchmark the Time Warp kernel independently of the
  hot-potato routing model.
* :mod:`repro.models.mm1` — a tandem M/M/1 queueing network whose
  steady-state behaviour has closed forms (ρ, L, W, Little's law),
  validating the kernel against theory rather than another simulator.
"""

from repro.models.mm1 import MM1Config, MM1Model, QueueLP, SinkLP, SourceLP
from repro.models.phold import PholdConfig, PholdLP, PholdModel

__all__ = [
    "MM1Config",
    "MM1Model",
    "PholdConfig",
    "PholdLP",
    "PholdModel",
    "QueueLP",
    "SinkLP",
    "SourceLP",
]
