"""Exception hierarchy for the repro package.

Every error raised deliberately by the simulator derives from
:class:`ReproError` so applications can catch simulator faults separately
from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigurationError(ReproError):
    """An engine or model configuration value is invalid or inconsistent."""


class SchedulingError(ReproError):
    """An event was scheduled illegally (e.g. into the past, or after the

    simulation end barrier). In Time Warp terms this is the model violating
    causality *at send time*, which no rollback can repair.
    """


class RollbackError(ReproError):
    """The kernel failed to restore state during a rollback.

    This indicates a broken reverse handler in the model: forward and
    reverse computation are not inverses of each other.
    """


class TopologyError(ReproError):
    """A network topology query was invalid (bad coordinates, bad id)."""


class ModelError(ReproError):
    """A model handler violated a model-level invariant (e.g. a bufferless

    router received more packets in one time step than it has output links).
    """


class SnapshotError(ReproError):
    """A checkpoint snapshot could not be written, read, or applied.

    Raised for corrupted or truncated snapshot files (integrity-hash
    mismatch), unsupported format versions, and restore attempts against
    an engine whose configuration marker differs from the one recorded at
    capture time.
    """


class InvariantViolation(ReproError):
    """A --paranoid kernel invariant check failed at a GVT epoch.

    The message names the PE/KP/LP involved; a violation means kernel
    state is internally inconsistent and results can no longer be
    trusted.
    """
