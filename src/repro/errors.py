"""Exception hierarchy for the repro package.

Every error raised deliberately by the simulator derives from
:class:`ReproError` so applications can catch simulator faults separately
from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro simulator."""


class ConfigurationError(ReproError):
    """An engine or model configuration value is invalid or inconsistent."""


class SchedulingError(ReproError):
    """An event was scheduled illegally (e.g. into the past, or after the

    simulation end barrier). In Time Warp terms this is the model violating
    causality *at send time*, which no rollback can repair.
    """


class RollbackError(ReproError):
    """The kernel failed to restore state during a rollback.

    This indicates a broken reverse handler in the model: forward and
    reverse computation are not inverses of each other.
    """


class TopologyError(ReproError):
    """A network topology query was invalid (bad coordinates, bad id)."""


class ModelError(ReproError):
    """A model handler violated a model-level invariant (e.g. a bufferless

    router received more packets in one time step than it has output links).
    """


class SnapshotError(ReproError):
    """A checkpoint snapshot could not be written, read, or applied.

    Raised for corrupted or truncated snapshot files (integrity-hash
    mismatch), unsupported format versions, and restore attempts against
    an engine whose configuration marker differs from the one recorded at
    capture time.
    """


class InvariantViolation(ReproError):
    """A --paranoid kernel invariant check failed at a GVT epoch.

    The message names the PE/KP/LP involved; a violation means kernel
    state is internally inconsistent and results can no longer be
    trusted.
    """


class HealthIntervention(ReproError):
    """The liveness watchdog escalated past in-run remediation.

    Raised out of ``engine.run()`` at a quiescent boundary when the
    degradation ladder reaches an action the engine cannot apply to
    itself — restore from the last good snapshot, fall back to a more
    conservative engine, or abort.  Carries the requested ``action``
    and the triggering :class:`repro.health.HealthEvent`; the recovery
    runner (:func:`repro.health.run_with_recovery`) catches it and acts.
    """

    def __init__(self, action: str, event) -> None:
        super().__init__(f"watchdog requested {action!r}: {event}")
        self.action = action
        self.event = event


class HealthAbort(ReproError):
    """The degradation ladder is exhausted: the run was aborted.

    The message names the forensics bundle written for post-mortem
    analysis (see :mod:`repro.health.forensics`).
    """


class ResumeIntegrityError(ReproError):
    """A resumed sweep's input files no longer match the journaled hashes.

    Raised before any point runs when a scenario or fault-plan file
    referenced by the manifest hashes differently from (or has vanished
    since) the original launch.  The message names the offending file;
    resuming would silently compute a different experiment.
    """
