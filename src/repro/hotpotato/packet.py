"""Packets and their priority states.

"In the hot-potato model, the packet label contains only the destination
and priority" (§1.1.2).  Our packet also carries the bookkeeping the
report's statistics need (injection step, original distance) and the
per-packet arrival jitter that serialises same-step routing decisions
(§3.2.2).

Packets are *immutable in place*: every hop creates the next ARRIVE event
with a fresh field dict (via :meth:`Packet.hop`), so reverse computation
never has to undo packet mutations — only router state.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Mapping

__all__ = ["Priority", "Packet"]


class Priority(IntEnum):
    """The four packet priority states (§1.2.5), lowest to highest."""

    SLEEPING = 0
    ACTIVE = 1
    EXCITED = 2
    RUNNING = 3

    @property
    def route_rank(self) -> int:
        """Routing order within a time step: higher priority routes first.

        The simulation staggers ROUTE event time stamps by priority
        (§3.1.4); rank 0 routes first.
        """
        return 3 - int(self)


class Packet:
    """An in-flight packet: label fields plus measurement bookkeeping."""

    __slots__ = ("dest", "priority", "inject_step", "jitter", "distance", "src")

    def __init__(
        self,
        dest: int,
        priority: Priority,
        inject_step: int,
        jitter: float,
        distance: int,
        src: int,
    ) -> None:
        self.dest = dest
        self.priority = priority
        #: Time step at which the packet entered the network.
        self.inject_step = inject_step
        #: Per-packet arrival jitter in (0, 0.5], carried for its lifetime.
        self.jitter = jitter
        #: Distance from source to destination at injection ("how far they
        #: came", §3.1.5).
        self.distance = distance
        self.src = src

    # ------------------------------------------------------------------
    # Event payload (de)serialisation.  Events carry plain dicts so the
    # kernel never needs to deep-copy packets.
    # ------------------------------------------------------------------
    def fields(self, step: int) -> dict[str, Any]:
        """Payload dict for an ARRIVE/ROUTE event at the given step."""
        return {
            "step": step,
            "dest": self.dest,
            "priority": int(self.priority),
            "inject_step": self.inject_step,
            "jitter": self.jitter,
            "distance": self.distance,
            "src": self.src,
        }

    @classmethod
    def from_fields(cls, data: Mapping[str, Any]) -> "Packet":
        """Rebuild a packet from an event payload."""
        return cls(
            dest=data["dest"],
            priority=Priority(data["priority"]),
            inject_step=data["inject_step"],
            jitter=data["jitter"],
            distance=data["distance"],
            src=data["src"],
        )

    def hop(self, step: int, priority: Priority) -> dict[str, Any]:
        """Payload for the next hop with a (possibly) new priority."""
        d = self.fields(step)
        d["priority"] = int(priority)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(dest={self.dest}, {Priority(self.priority).name}, "
            f"injected@{self.inject_step})"
        )
