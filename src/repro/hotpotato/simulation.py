"""High-level facade: configure, run, and compare engines in one call."""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.result import RunResult
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.policy import RoutingPolicy

__all__ = ["HotPotatoSimulation"]


class HotPotatoSimulation:
    """One-stop API for running the hot-potato model.

    Examples
    --------
    >>> sim = HotPotatoSimulation(HotPotatoConfig(n=8, duration=50.0))
    >>> seq = sim.run()                      # sequential oracle
    >>> par = sim.run_parallel(n_pes=4, n_kps=16)
    >>> assert seq.model_stats == par.model_stats   # repeatability
    """

    def __init__(
        self,
        cfg: HotPotatoConfig | None = None,
        policy: RoutingPolicy | None = None,
        *,
        seed: int = 0x5EED,
        fault_plan=None,
        injection_plan=None,
    ) -> None:
        self.cfg = cfg if cfg is not None else HotPotatoConfig()
        self.policy = policy
        self.seed = seed
        #: Optional repro.faults.FaultPlan applied to every run started
        #: from this facade.  Model faults are compiled into the model
        #: (all engines see them identically); transport faults and PE
        #: stalls additionally perturb the parallel engines' scheduling
        #: without changing committed results.
        self.fault_plan = fault_plan
        #: Optional repro.scenarios.InjectionPlan: a scripted adversary
        #: replacing the Bernoulli injection application on every run.
        self.injection_plan = injection_plan

    def _model(self) -> HotPotatoModel:
        # A fresh model per run: LP state is single-use.
        return HotPotatoModel(
            self.cfg,
            self.policy,
            fault_plan=self.fault_plan,
            injection_plan=self.injection_plan,
        )

    def _engine_faults(self):
        plan = self.fault_plan
        if plan is None or not plan.has_engine_faults:
            return None
        from repro.faults.injector import EngineFaults

        return EngineFaults(plan)

    def run(
        self,
        *,
        tracer=None,
        metrics=None,
        spans=None,
        checkpointer=None,
        health=None,
        paranoid=False,
        executor: str = "scalar",
    ) -> RunResult:
        """Run on the sequential oracle engine (optionally instrumented)."""
        return run_sequential(
            self._model(),
            self.cfg.duration,
            seed=self.seed,
            paranoid=paranoid,
            executor=executor,
            tracer=tracer,
            metrics=metrics,
            spans=spans,
            checkpointer=checkpointer,
            health=health,
        )

    def run_parallel(
        self,
        n_pes: int = 4,
        n_kps: int = 64,
        *,
        batch_size: int = 16,
        engine_config: EngineConfig | None = None,
        tracer=None,
        metrics=None,
        spans=None,
        checkpointer=None,
        health=None,
        **overrides: Any,
    ) -> RunResult:
        """Run on the Time Warp engine.

        Either pass a full :class:`EngineConfig` (its ``end_time`` is
        overridden by the model duration) or let this method build one
        from ``n_pes`` / ``n_kps`` / ``batch_size`` plus keyword overrides
        (``mapping=...``, ``rollback=...``, ...).
        """
        if engine_config is not None:
            ecfg = replace(engine_config, end_time=self.cfg.duration)
        else:
            ecfg = EngineConfig(
                end_time=self.cfg.duration,
                n_pes=n_pes,
                n_kps=n_kps,
                batch_size=batch_size,
                seed=self.seed,
                **overrides,
            )
        return run_optimistic(
            self._model(),
            ecfg,
            tracer=tracer,
            metrics=metrics,
            spans=spans,
            faults=self._engine_faults(),
            checkpointer=checkpointer,
            health=health,
        )

    def validate_determinism(self, n_pes: int = 4, n_kps: int = 16) -> bool:
        """The report's Attachment-3 check: parallel results == sequential."""
        return (
            self.run().model_stats
            == self.run_parallel(n_pes=n_pes, n_kps=n_kps).model_stats
        )
