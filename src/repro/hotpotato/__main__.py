"""``python -m repro.hotpotato`` — run one simulation from the shell.

Mirrors the report's program parameters (§3.3.1): network size N, number
of processors, simulation duration, ``probability_i`` (the injector
fraction) and ``absorb_sleeping_packet`` — plus this implementation's
engine knobs.

Examples::

    python -m repro.hotpotato --n 8 --duration 200
    python -m repro.hotpotato --n 16 --processors 4 --kps 64 --probability-i 50
    python -m repro.hotpotato --n 8 --no-absorb-sleeping --validate
    python -m repro.hotpotato --n 8 --processors 4 --metrics-out run.jsonl \
        --trace-out run.jsonl        # then: python -m repro.obs timeline run.jsonl
    python -m repro.hotpotato --n 8 --fault-rate 10 --validate
    python -m repro.hotpotato --n 8 --fault-plan plan.json --processors 4
"""

from __future__ import annotations

import argparse
import sys

from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.simulation import HotPotatoSimulation
from repro.obs.capture import RunCapture

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.hotpotato",
        description="Simulate hot-potato routing on an N x N bufferless torus.",
    )
    parser.add_argument("--n", type=int, default=8, help="network dimension N (default 8)")
    parser.add_argument(
        "--processors",
        type=int,
        default=1,
        help="simulated PEs; 1 = sequential engine (default)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=100.0,
        help="SIMULATION_DURATION in time steps (default 100)",
    )
    parser.add_argument(
        "--probability-i",
        type=float,
        default=100.0,
        help="percent of routers hosting injection applications (default 100)",
    )
    parser.add_argument(
        "--no-absorb-sleeping",
        action="store_true",
        help="run the proof-verification mode: routers do not absorb "
        "sleeping packets at their destination",
    )
    parser.add_argument(
        "--topology",
        choices=("torus", "mesh"),
        default=None,
        help="grid topology by name (default torus)",
    )
    parser.add_argument(
        "--mesh",
        action="store_true",
        help="mesh instead of torus (legacy alias for --topology mesh)",
    )
    parser.add_argument(
        "--scenario",
        metavar="FILE",
        help="load the whole workload — topology, traffic, routing policy, "
        "faults, duration, seed — from a declarative scenario file "
        "(see docs/SCENARIOS.md); workload flags above are then ignored, "
        "engine flags still apply",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        metavar="P",
        help="run the optimistic engine across P OS processes (true "
        "multicore Time Warp over shared-memory rings; committed results "
        "are bit-identical to any other engine).  P must divide "
        "--processors.  --procs 1 forks a single worker — useful only "
        "for measuring process-mode overhead.  Default: in-process.",
    )
    parser.add_argument("--kps", type=int, default=16, help="kernel processes (default 16)")
    parser.add_argument("--batch", type=int, default=16, help="optimism batch size")
    parser.add_argument(
        "--gvt-interval",
        type=int,
        default=1,
        metavar="R",
        help="scheduling rounds between GVT computations (default 1).  "
        "With --procs every GVT is a cross-process stop-and-drain wave, "
        "so raise this (8-32) to amortise the barrier",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="global seed (default 0x5EED, or the scenario's seed)",
    )
    parser.add_argument(
        "--queue",
        choices=("heap", "ladder", "splay"),
        default="heap",
        help="pending-queue implementation for the optimistic engine "
        "(ignored with --processors 1; results are identical either way)",
    )
    parser.add_argument(
        "--executor",
        choices=("scalar", "vectorized"),
        default="scalar",
        help="LP stepping mode: 'vectorized' batches same-timestamp-band "
        "events into struct-of-arrays steps (committed results are "
        "identical either way; see docs/KERNEL.md)",
    )
    parser.add_argument(
        "--cancellation",
        choices=("aggressive", "lazy"),
        default="aggressive",
        help="anti-message cancellation mode for the optimistic engine "
        "(ignored with --processors 1; results are identical either way)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also run the other engine and check the results are identical",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="record GVT-interval metric samples to this JSONL file "
        "(inspect with python -m repro.obs)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="record the full event-lifecycle trace to this JSONL file; "
        "may equal --metrics-out to combine both streams in one recording",
    )
    parser.add_argument(
        "--spans-out",
        metavar="FILE",
        help="record wall-clock phase spans (exec/rollback/gvt/...) to "
        "this JSONL file; may equal --metrics-out/--trace-out to combine "
        "streams in one recording",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="FILE",
        help="inject faults from this JSON FaultPlan "
        "(author one with python -m repro.faults generate)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="PCT",
        help="quick fault mode: fail this percent of links permanently "
        "(generated deterministically from --fault-seed; ignored when "
        "--fault-plan is given)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for --fault-rate plan generation (default: repro.faults default)",
    )
    parser.add_argument(
        "--paranoid",
        action="store_true",
        help="run the opt-in kernel invariant checks at every GVT epoch "
        "(queue order, GVT monotonicity, packet conservation)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write crash-safe snapshots to DIR at GVT boundaries "
        "(see docs/CHECKPOINT.md); Ctrl-C then writes a final snapshot "
        "and exits 130",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        metavar="N",
        help="snapshot every N GVT/scheduler boundaries (default 4)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore the latest snapshot in --checkpoint-dir and continue; "
        "all other flags must match the interrupted run",
    )
    parser.add_argument(
        "--deadline-seconds",
        type=float,
        default=None,
        metavar="SEC",
        help="wall-clock cutoff: after SEC seconds the run is interrupted "
        "through the same deferred path as Ctrl-C (final snapshot with "
        "--checkpoint-dir, sinks finalized) and exits 124",
    )
    parser.add_argument(
        "--watchdog",
        action="store_true",
        help="attach the liveness watchdog (GVT stall / livelock / rollback "
        "thrash / memory growth detectors at default thresholds; see "
        "docs/HEALTH.md); trips tighten the optimistic throttle, then abort",
    )
    parser.add_argument(
        "--health-out",
        metavar="FILE",
        help="record watchdog health events to this JSONL file (implies "
        "--watchdog); may equal the other --*-out paths to combine streams",
    )
    return parser


def _resolve_fault_plan(args, cfg: HotPotatoConfig):
    """Build the FaultPlan the flags ask for, or None."""
    if args.fault_plan:
        from repro.faults import load_plan

        return load_plan(args.fault_plan)
    if args.fault_rate:
        from repro.faults import DEFAULT_FAULT_SEED, generate_plan
        from repro.net import MeshTopology, TorusTopology

        topo_cls = TorusTopology if cfg.torus else MeshTopology
        return generate_plan(
            topo_cls(cfg.n),
            duration=cfg.duration,
            link_fail_rate=args.fault_rate / 100.0,
            seed=args.fault_seed if args.fault_seed is not None else DEFAULT_FAULT_SEED,
        )
    return None


def _config_marker(args, seed: int, scenario_meta: dict) -> dict:
    """The configuration fingerprint stored in (and checked against)
    every snapshot — resuming under different flags is refused.

    For scenario runs the marker pins the scenario *content hash*, not
    just the path: editing the file between interrupt and resume is a
    different experiment and is refused like any other flag change.
    """
    return {
        "workload": "hotpotato",
        "scenario": args.scenario,
        "scenario_hash": scenario_meta.get("scenario_hash"),
        "n": args.n,
        "duration": args.duration,
        "probability_i": args.probability_i,
        "absorb_sleeping": not args.no_absorb_sleeping,
        "topology": args.topology or ("mesh" if args.mesh else "torus"),
        "processors": args.processors,
        "kps": args.kps,
        "batch": args.batch,
        "gvt_interval": args.gvt_interval,
        "procs": args.procs,
        "queue": args.queue,
        "cancellation": args.cancellation,
        "executor": args.executor,
        "seed": seed,
        "paranoid": args.paranoid,
        "fault_plan": args.fault_plan,
        "fault_rate": args.fault_rate,
        "fault_seed": args.fault_seed,
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not 0.0 <= args.probability_i <= 100.0:
        print("--probability-i must be within [0, 100]")
        return 2
    if not 0.0 <= args.fault_rate <= 100.0:
        print("--fault-rate must be within [0, 100]")
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir")
        return 2
    if args.procs is not None:
        if args.procs < 1:
            print("--procs must be >= 1")
            return 2
        if args.processors < args.procs or args.processors % args.procs:
            print(f"--procs must divide --processors "
                  f"(processors={args.processors}, procs={args.procs})")
            return 2
        if args.paranoid and args.procs > 1:
            print("--paranoid checks are per-worker and cannot see "
                  "cross-worker packet conservation; drop one of the flags")
            return 2
    policy = None
    injection_plan = None
    scenario_meta: dict = {}
    if args.scenario:
        from repro.scenarios import ScenarioError, compile_scenario, load_scenario

        try:
            compiled = compile_scenario(load_scenario(args.scenario))
        except (ScenarioError, OSError) as exc:
            print(f"scenario error: {exc}", file=sys.stderr)
            return 2
        cfg = compiled.cfg
        policy = compiled.policy
        fault_plan = compiled.fault_plan
        injection_plan = compiled.injection_plan
        seed = args.seed if args.seed is not None else compiled.seed
        scenario_meta = {
            "scenario": compiled.name,
            "scenario_hash": compiled.scenario_hash(),
        }
    else:
        cfg = HotPotatoConfig(
            n=args.n,
            duration=args.duration,
            injector_fraction=args.probability_i / 100.0,
            absorb_sleeping=not args.no_absorb_sleeping,
            topology=args.topology or ("mesh" if args.mesh else "torus"),
        )
        seed = args.seed if args.seed is not None else 0x5EED
        try:
            fault_plan = _resolve_fault_plan(args, cfg)
        except Exception as exc:  # bad plan file / invalid plan
            print(f"fault plan error: {exc}", file=sys.stderr)
            return 2
    sim = HotPotatoSimulation(
        cfg, policy, seed=seed, fault_plan=fault_plan,
        injection_plan=injection_plan,
    )
    use_parallel = args.processors > 1 or args.procs is not None
    engine = "optimistic" if use_parallel else "sequential"

    ckpt = None
    if args.checkpoint_dir:
        from repro.ckpt import Checkpointer

        ckpt = Checkpointer(
            args.checkpoint_dir,
            every=args.checkpoint_every,
            marker=_config_marker(args, seed, scenario_meta),
        )
    resumed_payload = None
    if args.resume:
        from repro.errors import SnapshotError

        if args.procs is not None:
            # Process-mode snapshots are per-worker shards under
            # <dir>/shard_<i>; the workers locate and load the newest
            # consistent shard set themselves (docs/CHECKPOINT.md).
            ckpt.mp_resume = True
        else:
            try:
                resumed_payload = ckpt.load_latest()
            except SnapshotError as exc:
                print(f"resume failed: {exc}", file=sys.stderr)
                return 2
    if resumed_payload is not None and resumed_payload.get("obs") is not None:
        capture = RunCapture.resume(resumed_payload["obs"])
    else:
        capture = RunCapture(
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            spans_out=args.spans_out,
            health_out=args.health_out,
            meta={
                "engine": engine,
                "workload": "hotpotato",
                "n": cfg.n,
                "topology": cfg.topology,
                "duration": cfg.duration,
                "probability_i": 100.0 * cfg.injector_fraction,
                "seed": seed,
                "processors": args.processors,
                **scenario_meta,
            },
            fault_plan=fault_plan,
            injection_plan=injection_plan,
        )
    if ckpt is not None:
        ckpt.capture = capture

    watchdog = None
    if args.watchdog or args.health_out:
        from repro.health import HealthConfig, Watchdog

        # A bare CLI run has no recovery loop to restore or fall back
        # for it, so the ladder is throttle-then-abort; use
        # repro.health.run_with_recovery (or the supervisor / chaos
        # harness) for the full ladder.
        watchdog = Watchdog(
            HealthConfig(ladder=("throttle", "abort")),
            sink=capture.health_sink,
        )

    from repro.ckpt import deferred_interrupts, wall_deadline
    from repro.errors import HealthIntervention

    try:
        with wall_deadline(args.deadline_seconds, ckpt) as deadline_expired, \
                deferred_interrupts(ckpt):
            if not use_parallel:
                result = sim.run(
                    tracer=capture.tracer,
                    metrics=capture.metrics,
                    spans=capture.spans,
                    checkpointer=ckpt,
                    health=watchdog,
                    paranoid=args.paranoid,
                    executor=args.executor,
                )
            else:
                mp_overrides = {}
                if args.procs is not None:
                    mp_overrides = {
                        "parallelism": "process",
                        "procs": args.procs,
                    }
                result = sim.run_parallel(
                    n_pes=args.processors,
                    n_kps=args.kps,
                    batch_size=args.batch,
                    gvt_interval=args.gvt_interval,
                    tracer=capture.tracer,
                    metrics=capture.metrics,
                    spans=capture.spans,
                    checkpointer=ckpt,
                    health=watchdog,
                    paranoid=args.paranoid,
                    queue=args.queue,
                    cancellation=args.cancellation,
                    executor=args.executor,
                    **mp_overrides,
                )
    except KeyboardInterrupt:
        capture.finalize(None)
        if deadline_expired():
            where = (
                f"; resume from {ckpt.last_path} with --resume"
                if ckpt is not None and ckpt.last_path is not None
                else ""
            )
            print(f"\ndeadline of {args.deadline_seconds:g}s reached{where}",
                  file=sys.stderr)
            return 124
        if ckpt is not None and ckpt.last_path is not None:
            print(f"\ninterrupted; resume from {ckpt.last_path} with --resume",
                  file=sys.stderr)
        else:
            print("\ninterrupted", file=sys.stderr)
        return 130
    except HealthIntervention as exc:
        capture.finalize(None)
        print(f"\nwatchdog abort: {exc}", file=sys.stderr)
        if watchdog is not None and watchdog.events:
            for ev in watchdog.events:
                print(f"  {ev}", file=sys.stderr)
        return 1
    capture.finalize(result)
    if ckpt is not None and ckpt.written:
        print(f"{ckpt.written} snapshot(s) in {ckpt.dir}")
    if watchdog is not None and watchdog.events:
        print(f"{len(watchdog.events)} watchdog trip(s):")
        for ev in watchdog.events:
            print(f"  {ev}")
    for out in sorted({str(s.path) for s in capture._sinks if s.path is not None}):
        print(f"telemetry written to {out}")

    ms = result.model_stats
    run = result.run
    label = f", scenario={scenario_meta['scenario']}" if scenario_meta else ""
    procs_label = f" x {run.procs} procs" if run.procs > 1 else ""
    print(f"{cfg.n}x{cfg.n} {cfg.topology}, {sum(sim._model().injectors)} injectors, "
          f"{cfg.duration:.0f} steps, engine={run.engine} "
          f"({run.n_pes} PE{procs_label}){label}")
    print(f"  events committed   : {run.committed:,}")
    if run.soa_decline_reason:
        print(f"  executor fallback  : {run.soa_decline_reason}")
    if injection_plan is not None:
        print(f"  adversary          : {injection_plan.strategy} "
              f"({len(injection_plan.entries):,} scripted injections)")
    if run.engine == "optimistic":
        print(f"  events rolled back : {run.events_rolled_back:,}")
        print(f"  event rate (model) : {run.event_rate:,.0f} ev/s")
    print(f"  packets injected   : {ms['injected']:,} (+{ms['initial_packets']} initial)")
    print(f"  packets delivered  : {ms['delivered']:,}")
    print(f"  avg delivery time  : {ms['avg_delivery_time']:.3f} steps")
    print(f"  max delivery time  : {ms['max_delivery_time']} steps")
    print(f"  avg wait to inject : {ms['avg_inject_wait']:.3f} steps")
    print(f"  max wait to inject : {ms['max_inject_wait']} steps")
    print(f"  deflection rate    : {100 * ms['deflection_rate']:.2f}%")
    if fault_plan is not None:
        print(f"  fault events       : {ms.get('fault_events', 0):,} "
              f"({ms.get('failed_links', 0)} links statically failed)")
        print(f"  dropped at faults  : {ms.get('fault_dropped', 0):,} "
              f"(crash {ms.get('fault_dropped_crash', 0):,}, "
              f"no-link {ms.get('fault_dropped_no_link', 0):,})")
        print(f"  fault deflections  : {ms.get('fault_deflections', 0):,}")
        if fault_plan.has_transport_faults or fault_plan.has_stalls:
            print(f"  transport faults   : {run.transport_dropped:,} dropped, "
                  f"{run.transport_duplicated:,} duplicated, "
                  f"{run.transport_delayed:,} delayed; "
                  f"{run.pe_stall_rounds:,} PE stall rounds")

    if args.validate:
        other = (
            sim.run_parallel(
                n_pes=4, n_kps=args.kps, batch_size=args.batch,
                queue=args.queue, cancellation=args.cancellation,
                executor=args.executor,
            )
            if args.processors <= 1
            else sim.run()
        )
        identical = other.model_stats == ms
        print(f"  cross-engine check : {'IDENTICAL' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
