"""The hot-potato network model: router population plus stat collection."""

from __future__ import annotations

from typing import Any

from repro.core.lp import LogicalProcess, Model
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.policy import BuschHotPotatoPolicy, RoutingPolicy
from repro.hotpotato.router import MODEL_LOOKAHEAD, RouterLP
from repro.hotpotato.stats import aggregate_router_stats, stats_from_signature
from repro.net import TOPOLOGIES, GridTopology, TorusTopology
from repro.rng.streams import ReversibleStream, derive_seed

__all__ = ["HotPotatoModel", "choose_injectors"]


def choose_injectors(cfg: HotPotatoConfig) -> tuple[bool, ...]:
    """Decide which routers host packet injection applications.

    Exact mode places ``round(fraction * n²)`` injectors evenly over the
    id space (deterministic, load-comparable across runs).  Probabilistic
    mode implements the report's ``probability_i`` literally: each router
    is an injector with probability ``fraction``, drawn from a dedicated
    layout stream so engine seeds don't change the workload.
    """
    num = cfg.num_routers
    frac = cfg.injector_fraction
    if frac <= 0.0:
        return (False,) * num
    if frac >= 1.0:
        return (True,) * num
    if cfg.exact_injectors:
        k = max(1, round(frac * num))
        marks = [False] * num
        for i in range(k):
            marks[(i * num) // k] = True
        return tuple(marks)
    flags = []
    for node in range(num):
        stream = ReversibleStream(derive_seed(cfg.layout_seed, node), node)
        flags.append(stream.unif() < frac)
    return tuple(flags)


class HotPotatoModel(Model):
    """N×N torus (or mesh) of bufferless hot-potato routers."""

    def __init__(
        self,
        cfg: HotPotatoConfig | None = None,
        policy: RoutingPolicy | None = None,
        fault_plan=None,
        injection_plan=None,
    ) -> None:
        self.cfg = cfg if cfg is not None else HotPotatoConfig()
        self.policy = policy if policy is not None else BuschHotPotatoPolicy()
        #: Why build_vectorized() declined, for RunStats.soa_decline_reason
        #: ("" until a vectorized build is attempted and refused).
        self.soa_decline_reason = ""
        #: Optional repro.faults.FaultPlan; its *model* faults (link and
        #: router schedules) are compiled here so every engine — including
        #: the sequential oracle — sees the identical fault timeline.
        self.fault_plan = fault_plan
        failed: tuple = ()
        self._fault_views: dict = {}
        if fault_plan is not None and fault_plan.has_model_faults:
            from repro.faults.views import compile_node_views, static_failed_links

            fault_plan.validate(num_nodes=self.cfg.num_routers)
            # Links dead from step 0 that never heal are boot-time
            # knowledge: bake them into the topology so route_info plans
            # around them; everything time-varying stays in the per-node
            # views and is handled by local deflection.
            failed = static_failed_links(fault_plan)
        topo_cls = TOPOLOGIES[self.cfg.topology]
        self.topo: GridTopology = topo_cls(self.cfg.n, failed_links=failed)
        if fault_plan is not None and fault_plan.has_model_faults:
            self._fault_views = compile_node_views(fault_plan, self.topo)
        #: Grid shape consumed by the block LP/KP/PE mapping.
        self.grid = (self.cfg.n, self.cfg.n)
        #: Declared lookahead for conservative execution (see router.py).
        self.lookahead = MODEL_LOOKAHEAD
        #: Optional repro.scenarios.InjectionPlan: a precompiled adversary
        #: script replacing the Bernoulli injection application.  Like the
        #: fault plan, it is pure data — injections are a function of
        #: (plan, node, step) — so every engine and every Time Warp
        #: re-execution sees the identical workload.
        self.injection_plan = injection_plan
        if injection_plan is not None:
            injection_plan.validate(num_nodes=self.cfg.num_routers)
            self._adversary_scripts = injection_plan.compile(
                self.cfg.num_routers
            )
            # The adversary decides who injects: exactly the routers its
            # script names (cfg.injector_fraction is ignored).
            self.injectors = tuple(
                bool(s) for s in self._adversary_scripts
            )
        else:
            self._adversary_scripts = None
            self.injectors = choose_injectors(self.cfg)
        #: Commit-time (delivery_step, latency) log; populated during the
        #: run when cfg.delivery_log is set.  Entries commit in per-KP key
        #: order, so sort before time-series analysis.
        self.delivery_log: list[tuple[int, int]] = []

    def build(self) -> list[LogicalProcess]:
        log = self.delivery_log if self.cfg.delivery_log else None
        lps = [
            RouterLP(i, self.cfg, self.topo, self.policy, self.injectors[i], log)
            for i in range(self.cfg.num_routers)
        ]
        views = self._fault_views
        if views:
            for i, faults in views.items():
                lps[i].faults = faults
        scripts = self._adversary_scripts
        if scripts is not None:
            for i, script in enumerate(scripts):
                if script:
                    lps[i].adversary = script
        return lps

    def build_vectorized(self):
        """SoA population + band-stepping plan (``executor="vectorized"``).

        Declines (returns None → engines fall back to :meth:`build`) when
        the routing policy is not exactly the Busch policy — the fused
        stepper inlines its ``route`` logic, so a subclass override would
        silently be ignored — when the topology is not the torus the
        band-edge proof was written against, or when an adversarial
        injection plan is attached (the fused INJECT step inlines the
        uniform destination draw).  Each refusal records its reason in
        ``soa_decline_reason`` so RunStats can surface it.
        """
        if type(self.policy) is not BuschHotPotatoPolicy:
            self.soa_decline_reason = (
                f"policy {self.policy.name!r} is not the Busch policy the "
                "fused stepper inlines"
            )
            return None
        if not isinstance(self.topo, TorusTopology):
            self.soa_decline_reason = (
                f"topology {self.cfg.topology!r} is not the torus the "
                "band-stepping plan was built for"
            )
            return None
        if self.injection_plan is not None:
            self.soa_decline_reason = (
                "adversarial injection plan attached (the fused INJECT "
                "step inlines the uniform destination draw)"
            )
            return None
        from repro.hotpotato.soa import build_soa

        return build_soa(self)

    def checkpoint_state(self) -> Any:
        """Model-level mutable state: the commit-time delivery log."""
        if not self.cfg.delivery_log:
            return None
        return list(self.delivery_log)

    def restore_checkpoint(self, state: Any) -> None:
        if state is None:
            return
        # In place: the RouterLPs built from this model hold a reference
        # to this exact list.
        self.delivery_log[:] = state

    # ------------------------------------------------------------------
    # Multiprocess hooks (see repro.mp).
    # ------------------------------------------------------------------
    def mp_event_schema(self) -> dict:
        """Wire layout per event kind for the shared-memory rings.

        Only ARRIVE ever actually crosses a worker boundary (every other
        kind is a self-send), but declaring all five keeps the codec
        total over the model's kinds, so a future mapping change cannot
        silently hit the "kind not in schema" refusal mid-run.
        """
        from repro.hotpotato.router import ARRIVE, HEARTBEAT, INIT, INJECT, ROUTE

        packet = (
            ("step", "i"),
            ("dest", "i"),
            ("priority", "B"),
            ("inject_step", "i"),
            ("jitter", "d"),
            ("distance", "i"),
            ("src", "i"),
        )
        tick = (("step", "i"),)
        return {
            INIT: (),
            ARRIVE: packet,
            ROUTE: packet,
            INJECT: tick,
            HEARTBEAT: tick,
        }

    def mp_export_lp(self, lp: LogicalProcess) -> tuple:
        return lp.stats.signature()

    def mp_import_lp(self, lp: LogicalProcess, blob: tuple) -> None:
        lp.stats = stats_from_signature(blob)

    def mp_export_shard(self) -> list | None:
        if not self.cfg.delivery_log:
            return None
        return list(self.delivery_log)

    def mp_merge_shards(self, shards: list) -> None:
        merged: list[tuple[int, int]] = []
        for shard in shards:
            if shard:
                merged.extend(shard)
        # Workers commit in local key order; the documented contract of
        # delivery_log is "sort before time-series analysis", so the
        # merged log is handed over globally sorted.
        merged.sort()
        self.delivery_log[:] = merged

    def check_conservation(self, lps: list[LogicalProcess]) -> str | None:
        """Packet-conservation invariant (see repro.core.invariants).

        Deliveries only ever come from injected or initially-seeded
        packets; hot-potato routing never fabricates one.  Returns a
        diagnostic string on violation, None when conserved.
        """
        delivered = injected = initial = 0
        for lp in lps:
            s = lp.stats
            if s.delivered < 0 or s.injected < 0 or s.initial_packets < 0:
                return (
                    f"router {lp.id} has a negative counter (delivered="
                    f"{s.delivered}, injected={s.injected}, "
                    f"initial={s.initial_packets})"
                )
            delivered += s.delivered
            injected += s.injected
            initial += s.initial_packets
        if delivered > injected + initial:
            return (
                f"{delivered} packets delivered but only {injected} injected "
                f"+ {initial} initial exist"
            )
        return None

    def collect_stats(self, lps: list[LogicalProcess]) -> dict[str, Any]:
        stats = aggregate_router_stats(lps)
        stats["policy"] = self.policy.name
        stats["n"] = self.cfg.n
        stats["topology"] = self.cfg.topology
        stats["injectors"] = sum(self.injectors)
        if self.injection_plan is not None:
            stats["adversary"] = self.injection_plan.strategy
            stats["adversary_generated"] = len(self.injection_plan.entries)
        if self.fault_plan is not None:
            # Physical links statically failed (each is masked at both
            # endpoints, hence the halving).
            stats["failed_links"] = len(self.topo.failed_links) // 2
            stats["fault_events"] = len(self.fault_plan.events)
        return stats
