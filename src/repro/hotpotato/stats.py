"""Per-router statistics and their aggregation.

"Each router keeps track of the total number of packets that were delivered
to it, how long the packets were in transit and how far they came ... the
amount of time that each injected packet waited to be injected, the total
number of packets that were injected into the system and the longest time
that any packet had to wait to be injected." (§3.1.5)

Every counter lives in router state and is updated *reversibly* by the
event handlers, so rolled-back statistics unwind exactly.  Aggregation
happens once at the end of the run, visitor-style.
"""

from __future__ import annotations

from typing import Any

__all__ = ["RouterStats", "aggregate_router_stats", "stats_from_signature"]


class RouterStats:
    """Reversible per-router counters."""

    __slots__ = (
        "delivered",
        "total_delivery_time",
        "total_distance",
        "max_delivery_time",
        "delivered_by_priority",
        "injected",
        "total_inject_wait",
        "max_inject_wait",
        "inject_blocked",
        "initial_packets",
        "routes",
        "overflow_routes",
        "deflections",
        "upgrades_sleeping",
        "upgrades_active",
        "promotions_running",
        "demotions",
        "running_deflections_off_turn",
        "util_claimed",
        "util_samples",
        "fault_dropped_crash",
        "fault_dropped_no_link",
        "fault_deflections",
    )

    def __init__(self) -> None:
        #: Packets absorbed at this router.
        self.delivered = 0
        #: Sum of (delivery step - injection step) over absorbed packets.
        self.total_delivery_time = 0
        #: Sum of source-destination distances of absorbed packets.
        self.total_distance = 0
        self.max_delivery_time = 0
        #: Absorbed packets by priority state at absorption.
        self.delivered_by_priority = [0, 0, 0, 0]
        #: Packets this router's injection application injected.
        self.injected = 0
        #: Sum of (injection step - generation step).
        self.total_inject_wait = 0
        self.max_inject_wait = 0
        #: Injection attempts blocked because no output link was free.
        self.inject_blocked = 0
        #: Packets seeded by the initial network fill.
        self.initial_packets = 0
        #: ROUTE decisions made.
        self.routes = 0
        #: Routes taken in a transiently-impossible state (more packets
        #: than links) — only observable mid-speculation under lazy
        #: cancellation; must be 0 in every committed timeline.
        self.overflow_routes = 0
        #: Routes that did not advance the packet toward its destination.
        self.deflections = 0
        self.upgrades_sleeping = 0
        self.upgrades_active = 0
        self.promotions_running = 0
        #: Excited/Running packets knocked back to Active.
        self.demotions = 0
        #: Running packets deflected while NOT turning — the theory says
        #: this cannot happen in steady state; counted as a diagnostic.
        self.running_deflections_off_turn = 0
        #: HEARTBEAT link-utilisation sampling (claimed links / sampled).
        self.util_claimed = 0
        self.util_samples = 0
        #: Packets lost because they arrived at a crashed router.
        self.fault_dropped_crash = 0
        #: Packets lost because every surviving output link was faulted
        #: (bufferless routers cannot hold a packet a whole step).
        self.fault_dropped_no_link = 0
        #: Deflections a healthy mask would not have caused: some good
        #: direction was contention-free but fault-masked.
        self.fault_deflections = 0

    # ------------------------------------------------------------------
    def copy(self) -> "RouterStats":
        """Cheap explicit copy (used by state-saving snapshots)."""
        c = RouterStats.__new__(RouterStats)
        for name in RouterStats.__slots__:
            v = getattr(self, name)
            setattr(c, name, list(v) if isinstance(v, list) else v)
        return c

    def signature(self) -> tuple:
        """Deterministic tuple of every counter (for equality checks)."""
        return tuple(
            tuple(v) if isinstance(v, list) else v
            for v in (getattr(self, name) for name in RouterStats.__slots__)
        )


def stats_from_signature(sig: tuple) -> RouterStats:
    """Rebuild a :class:`RouterStats` from :meth:`RouterStats.signature`.

    The multiprocess runtime ships per-router counters back from worker
    processes as signatures; this is the receiving end.
    """
    s = RouterStats.__new__(RouterStats)
    for name, v in zip(RouterStats.__slots__, sig):
        setattr(s, name, list(v) if isinstance(v, tuple) else v)
    return s


def aggregate_router_stats(routers: list) -> dict[str, Any]:
    """Fold per-router stats into the run-level dict the figures use.

    ``routers`` is the final LP list; each LP exposes ``.stats`` (a
    :class:`RouterStats`).  This is the report's "statistics collection
    function" (§3.1.5) executed once per LP at the end of the run.
    """
    totals = RouterStats()
    per_router: list[tuple] = []
    for lp in routers:
        s: RouterStats = lp.stats
        totals.delivered += s.delivered
        totals.total_delivery_time += s.total_delivery_time
        totals.total_distance += s.total_distance
        totals.max_delivery_time = max(totals.max_delivery_time, s.max_delivery_time)
        for i in range(4):
            totals.delivered_by_priority[i] += s.delivered_by_priority[i]
        totals.injected += s.injected
        totals.total_inject_wait += s.total_inject_wait
        totals.max_inject_wait = max(totals.max_inject_wait, s.max_inject_wait)
        totals.inject_blocked += s.inject_blocked
        totals.initial_packets += s.initial_packets
        totals.routes += s.routes
        totals.overflow_routes += s.overflow_routes
        totals.deflections += s.deflections
        totals.upgrades_sleeping += s.upgrades_sleeping
        totals.upgrades_active += s.upgrades_active
        totals.promotions_running += s.promotions_running
        totals.demotions += s.demotions
        totals.running_deflections_off_turn += s.running_deflections_off_turn
        totals.util_claimed += s.util_claimed
        totals.util_samples += s.util_samples
        totals.fault_dropped_crash += s.fault_dropped_crash
        totals.fault_dropped_no_link += s.fault_dropped_no_link
        totals.fault_deflections += s.fault_deflections
        per_router.append(s.signature())

    delivered = totals.delivered
    injected = totals.injected
    return {
        "delivered": delivered,
        "injected": injected,
        "initial_packets": totals.initial_packets,
        "avg_delivery_time": (
            totals.total_delivery_time / delivered if delivered else 0.0
        ),
        "avg_distance": totals.total_distance / delivered if delivered else 0.0,
        "max_delivery_time": totals.max_delivery_time,
        "delivered_by_priority": tuple(totals.delivered_by_priority),
        "avg_inject_wait": (
            totals.total_inject_wait / injected if injected else 0.0
        ),
        "max_inject_wait": totals.max_inject_wait,
        "inject_blocked": totals.inject_blocked,
        "routes": totals.routes,
        "overflow_routes": totals.overflow_routes,
        "deflections": totals.deflections,
        "deflection_rate": totals.deflections / totals.routes if totals.routes else 0.0,
        "upgrades_sleeping": totals.upgrades_sleeping,
        "upgrades_active": totals.upgrades_active,
        "promotions_running": totals.promotions_running,
        "demotions": totals.demotions,
        "running_deflections_off_turn": totals.running_deflections_off_turn,
        "link_utilization": (
            totals.util_claimed / totals.util_samples if totals.util_samples else 0.0
        ),
        "fault_dropped_crash": totals.fault_dropped_crash,
        "fault_dropped_no_link": totals.fault_dropped_no_link,
        "fault_dropped": totals.fault_dropped_crash + totals.fault_dropped_no_link,
        "fault_deflections": totals.fault_deflections,
        # Full per-router fingerprint: one misplaced rollback anywhere in
        # the network makes this differ (the determinism tests rely on it).
        "per_router": tuple(per_router),
    }
