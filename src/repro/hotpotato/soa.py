"""Struct-of-arrays hot-potato routers and the vectorized band stepper.

This is the hot-potato model's ``executor="vectorized"`` build (see
:meth:`repro.core.lp.Model.build_vectorized`).  Two pieces:

:class:`SlottedRouterLP`
    A drop-in :class:`~repro.hotpotato.router.RouterLP` replacement whose
    mutable state lives in arrays *shared across the whole population* —
    one flat ``links`` list (4 slots per router), one ``head_gen`` list,
    one ``stats`` list — and whose packet payloads are plain tuples
    ``(step, dest, priority, inject_step, jitter, distance, src)``
    instead of dicts.  Every handler performs the exact operation
    sequence of the scalar router — same RNG draws, same send
    timestamps, same statistics arithmetic — so the SoA population is
    bit-identical to the scalar one under *any* engine and executor
    (``tests/test_executor_abi.py`` asserts this).

:class:`HotPotatoVectorPlan`
    The vector plan consumed by the Time Warp kernel's fast-path
    installer.  Its :meth:`~HotPotatoVectorPlan.compile_batch` returns a
    fused per-PE batch loop that exploits the model's virtual-time band
    structure: within a unit step ``s`` every event falls in one of three
    bands — arrivals in ``[s, s+0.6)``, route decisions in
    ``[s+0.6, s+0.9)``, injection/heartbeat in ``[s+0.9, s+1)`` — and
    every event in a band only ever *sends into a later band* (ARRIVE
    sends ROUTE at ``s+0.6+…``; ROUTE/INJECT send into step ``s+1``).
    So the whole run of pending events below the current band edge can be
    popped **up front** and stepped through per-kind fused loops with the
    router handlers inlined over the shared arrays, without any event in
    the run being cancelled, superseded or re-ordered mid-run:

    * nothing executed in the run schedules below the edge (band rule,
      IEEE-exact: all offsets are nonnegative float additions);
    * a mid-run rollback elsewhere only cancels events *above* the edge
      (an in-run send has ``ts >= edge``, every event a rollback it
      triggers undoes has a key above that send, and cancelled children
      have keys above their parents);
    * partial runs (capped by the optimism batch) are safe for the same
      reason — the remainder just heads the next batch.

    The fused steppers preserve the scalar batch's per-event operation
    sequence exactly (journal reset, RNG accounting, processed-list
    append, the per-event float busy charges), so a vectorized run is
    bit-identical to a scalar run — it is the *same* computation with
    less interpreter dispatch per event.

The plan is only installed under the conditions the Time Warp kernel
checks (immediate transport, no tracer, aggressive cancellation, reverse
computation); in every other configuration — and under the sequential
and conservative engines — the SoA LPs run through the ordinary scalar
loops unchanged.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any

from repro.core.event import Event
from repro.core.lp import LogicalProcess
from repro.errors import ModelError
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.policy import RoutingPolicy, first_free, first_free_good
from repro.hotpotato.router import (
    ARRIVE,
    FIXED_JITTER,
    HEARTBEAT,
    HEARTBEAT_OFFSET,
    INIT,
    INIT_TS,
    INJECT,
    INJECT_OFFSET,
    ROUTE,
    ROUTE_BASE,
    ROUTE_JITTER_SCALE,
    ROUTE_PRIO_STRIDE,
)
from repro.hotpotato.stats import RouterStats
from repro.net import DIRECTIONS, GridTopology
from repro.rng.lcg import INCREMENT, MASK64, MULTIPLIER, _INV_2_53

__all__ = [
    "SlottedRouterLP",
    "SlottedRouterLPWithLog",
    "HotPotatoVectorPlan",
    "build_soa",
]

#: Payload tuple layout for ARRIVE/ROUTE events (INJECT and HEARTBEAT
#: carry the bare step int; INIT carries nothing).
P_STEP, P_DEST, P_PRIORITY, P_INJECT_STEP, P_JITTER, P_DISTANCE, P_SRC = range(7)


class SlottedRouterLP(LogicalProcess):
    """Bufferless router over population-shared flat arrays.

    Behaviourally identical to :class:`~repro.hotpotato.router.RouterLP`;
    see the module docstring for the state layout.  ``links[base+d]``
    (``base = 4*id``) replaces the per-router claim list and
    ``head_gen[id]`` the per-router injection head; ``stats[id]`` is this
    router's :class:`~repro.hotpotato.stats.RouterStats` (a real object,
    so stats aggregation and snapshots are unchanged).
    """

    __slots__ = (
        "cfg",
        "topo",
        "policy",
        "is_injector",
        "neighbors",
        "exists",
        "links",
        "head_gen",
        "base",
        "stats",
        "delivery_log",
        "faults",
    )

    def __init__(
        self,
        lp_id: int,
        cfg: HotPotatoConfig,
        topo: GridTopology,
        policy: RoutingPolicy,
        is_injector: bool,
        links: list[int],
        head_gen: list[int],
        stats: RouterStats,
        delivery_log: list | None = None,
    ) -> None:
        super().__init__(lp_id)
        self.cfg = cfg
        self.topo = topo
        self.policy = policy
        self.is_injector = is_injector
        self.delivery_log = delivery_log
        self.neighbors = tuple(topo.neighbor(lp_id, d) for d in DIRECTIONS)
        self.exists = tuple(nb is not None for nb in self.neighbors)
        #: Shared flat claim array; this router owns ``[base, base+4)``.
        self.links = links
        self.base = lp_id * 4
        #: Shared injection-head array; this router owns slot ``id``.
        self.head_gen = head_gen
        self.stats = stats
        self.faults = None

    # ------------------------------------------------------------------
    # Startup / dispatch (identical shape to RouterLP).
    # ------------------------------------------------------------------
    def on_init(self) -> None:
        self.send(INIT_TS, self.id, INIT)

    def forward(self, event: Event) -> None:
        kind = event.kind
        if kind == ARRIVE:
            self._arrive(event)
        elif kind == ROUTE:
            self._route(event)
        elif kind == INJECT:
            self._inject(event)
        elif kind == HEARTBEAT:
            self._heartbeat(event)
        elif kind == INIT:
            self._init_fill(event)
        else:  # pragma: no cover - defensive
            raise ModelError(f"router {self.id}: unknown event kind {kind!r}")

    def reverse(self, event: Event) -> None:
        kind = event.kind
        if kind == ARRIVE:
            self._rc_arrive(event)
        elif kind == ROUTE:
            self._rc_route(event)
        elif kind == INJECT:
            self._rc_inject(event)
        elif kind == HEARTBEAT:
            self._rc_heartbeat(event)
        elif kind == INIT:
            self._rc_init_fill(event)
        else:  # pragma: no cover - defensive
            raise ModelError(f"router {self.id}: unknown event kind {kind!r}")

    # ------------------------------------------------------------------
    # Shared helpers (RNG sequences identical to RouterLP's).
    # ------------------------------------------------------------------
    def _draw_destination(self) -> int:
        d = self.rng.integer(0, self.topo.num_nodes - 2)
        return d + 1 if d >= self.id else d

    def _draw_dest_jitter(self) -> tuple[int, float]:
        cfg = self.cfg
        if cfg.arrival_jitter:
            slots = cfg.jitter_slots
            dest, j = self.rng.integer2(0, self.topo.num_nodes - 2, 1, slots)
            if dest >= self.id:
                dest += 1
            return dest, j / (2 * slots)
        return self._draw_destination(), FIXED_JITTER

    # ------------------------------------------------------------------
    # INIT.
    # ------------------------------------------------------------------
    def _init_fill(self, event: Event) -> None:
        cfg = self.cfg
        seeded: list[int] = []
        flt = self.faults
        alive = flt is None or not flt.crashed(0)
        if cfg.initial_fill > 0.0 and alive:
            links = self.links
            base = self.base
            for d in DIRECTIONS:
                if not self.exists[d]:
                    continue
                if flt is not None and not flt.usable(d, 0):
                    continue
                if cfg.initial_fill < 1.0 and not self.rng.bernoulli(cfg.initial_fill):
                    continue
                dest, jitter = self._draw_dest_jitter()
                links[base + d] = 0
                seeded.append(d)
                self.send(
                    0 + 1 + jitter,
                    self.neighbors[d],
                    ARRIVE,
                    (
                        1,
                        dest,
                        0,  # Priority.SLEEPING
                        0,
                        jitter,
                        self.topo.route_info(self.id, dest)[3],
                        self.id,
                    ),
                )
        event.saved["seeded"] = seeded
        self.stats.initial_packets += len(seeded)
        if self.is_injector:
            self.send(INJECT_OFFSET, self.id, INJECT, 0)
        if cfg.heartbeat:
            self.send(HEARTBEAT_OFFSET, self.id, HEARTBEAT, 0)

    def _rc_init_fill(self, event: Event) -> None:
        seeded = event.saved["seeded"]
        links = self.links
        base = self.base
        for d in seeded:
            links[base + d] = -1
        self.stats.initial_packets -= len(seeded)

    # ------------------------------------------------------------------
    # ARRIVE.
    # ------------------------------------------------------------------
    def _arrive(self, event: Event) -> None:
        data = event.data
        step: int = data[0]
        flt = self.faults
        if flt is not None and flt.crashed(step):
            self.stats.fault_dropped_crash += 1
            event.saved["fdrop"] = True
            return
        priority = data[2]
        if data[1] == self.id and (priority != 0 or self.cfg.absorb_sleeping):
            st = self.stats
            dt = step - data[3]
            st.delivered += 1
            st.total_delivery_time += dt
            st.total_distance += data[5]
            st.delivered_by_priority[priority] += 1
            prev_max = st.max_delivery_time
            if dt > prev_max:
                st.max_delivery_time = dt
            event.saved["absorb"] = prev_max
            return
        rank = 3 - priority
        ts = (
            step
            + ROUTE_BASE
            + ROUTE_PRIO_STRIDE * rank
            + ROUTE_JITTER_SCALE * data[4]
        )
        # Reuse the same payload tuple (read-only by contract, like the
        # scalar router's shared dict).
        self.send(ts, self.id, ROUTE, data)
        event.saved.pop("absorb", None)

    def _rc_arrive(self, event: Event) -> None:
        if self.faults is not None and event.saved.pop("fdrop", None):
            self.stats.fault_dropped_crash -= 1
            return
        prev_max = event.saved.pop("absorb", None)
        if prev_max is None:
            return
        data = event.data
        st = self.stats
        dt = data[0] - data[3]
        st.delivered -= 1
        st.total_delivery_time -= dt
        st.total_distance -= data[5]
        st.delivered_by_priority[data[2]] -= 1
        st.max_delivery_time = prev_max

    # ------------------------------------------------------------------
    # ROUTE.
    # ------------------------------------------------------------------
    def _route(self, event: Event) -> None:
        data = event.data
        step: int = data[0]
        links = self.links
        base = self.base
        ex = self.exists
        free = (
            ex[0] and links[base] != step,
            ex[1] and links[base + 1] != step,
            ex[2] and links[base + 2] != step,
            ex[3] and links[base + 3] != step,
        )
        flt = self.faults
        basemask = free
        if flt is not None:
            free = flt.mask(free, step)
            if not any(free):
                st = self.stats
                st.fault_dropped_no_link += 1
                event.saved["fdrop"] = True
                return
            event.saved.pop("fdrop", None)
        if not any(free):
            st = self.stats
            d = next(dd for dd in DIRECTIONS if self.exists[dd])
            event.saved["route"] = (
                int(d), links[base + d], False, False, False, False, data[2]
            )
            event.saved["overflow"] = True
            links[base + d] = step
            st.routes += 1
            st.overflow_routes += 1
            self.send(
                step + 1 + data[4],
                self.neighbors[d],
                ARRIVE,
                (step + 1,) + data[1:],
            )
            return
        event.saved.pop("overflow", None)
        priority = data[2]
        out = self.policy.route(
            self.topo, self.id, data[1], priority, free, self.rng, self.cfg
        )
        d = out.direction
        st = self.stats
        off_turn = priority == 3 and out.demoted and not out.turning
        event.saved["route"] = (
            int(d),
            links[base + d],
            out.deflected,
            out.upgraded,
            out.demoted,
            off_turn,
            priority,
        )
        links[base + d] = step
        st.routes += 1
        if out.deflected:
            st.deflections += 1
        if out.upgraded:
            if priority == 0:
                st.upgrades_sleeping += 1
            elif priority == 1:
                st.upgrades_active += 1
            else:
                st.promotions_running += 1
        if out.demoted:
            st.demotions += 1
        if off_turn:
            st.running_deflections_off_turn += 1
        if flt is not None and out.deflected:
            good = self.topo.route_info(self.id, data[1])[0]
            if any(basemask[g] and not free[g] for g in good):
                st.fault_deflections += 1
                event.saved["fdefl"] = True
        self.send(
            step + 1 + data[4],
            self.neighbors[d],
            ARRIVE,
            (
                step + 1,
                data[1],
                int(out.new_priority),
                data[3],
                data[4],
                data[5],
                data[6],
            ),
        )

    def _rc_route(self, event: Event) -> None:
        st = self.stats
        if self.faults is not None:
            if event.saved.pop("fdrop", None):
                st.fault_dropped_no_link -= 1
                return
            if event.saved.pop("fdefl", None):
                st.fault_deflections -= 1
        d, prev_claim, deflected, upgraded, demoted, off_turn, priority = event.saved[
            "route"
        ]
        self.links[self.base + d] = prev_claim
        st.routes -= 1
        if event.saved.pop("overflow", None):
            st.overflow_routes -= 1
            return
        if deflected:
            st.deflections -= 1
        if upgraded:
            if priority == 0:
                st.upgrades_sleeping -= 1
            elif priority == 1:
                st.upgrades_active -= 1
            else:
                st.promotions_running -= 1
        if demoted:
            st.demotions -= 1
        if off_turn:
            st.running_deflections_off_turn -= 1

    # ------------------------------------------------------------------
    # INJECT.
    # ------------------------------------------------------------------
    def _inject(self, event: Event) -> None:
        step: int = event.data
        self.send(step + 1 + INJECT_OFFSET, self.id, INJECT, step + 1)
        flt = self.faults
        if flt is not None and flt.crashed(step):
            event.saved["inject"] = None
            return
        head = self.head_gen[self.id]
        pending = (step + 1) - head
        if pending <= 0:
            event.saved["inject"] = None
            return
        links = self.links
        base = self.base
        ex = self.exists
        free = (
            ex[0] and links[base] != step,
            ex[1] and links[base + 1] != step,
            ex[2] and links[base + 2] != step,
            ex[3] and links[base + 3] != step,
        )
        if flt is not None:
            free = flt.mask(free, step)
        if not any(free):
            self.stats.inject_blocked += 1
            event.saved["inject"] = ()
            return
        dest, jitter = self._draw_dest_jitter()
        d = first_free_good(self.topo, self.id, dest, free)
        if d is None:
            d = first_free(free)
            assert d is not None
        st = self.stats
        wait = step - head
        prev_max = st.max_inject_wait
        event.saved["inject"] = (int(d), links[base + d], wait, prev_max)
        links[base + d] = step
        self.head_gen[self.id] = head + 1
        st.injected += 1
        st.total_inject_wait += wait
        if wait > prev_max:
            st.max_inject_wait = wait
        self.send(
            step + 1 + jitter,
            self.neighbors[d],
            ARRIVE,
            (
                step + 1,
                dest,
                0,  # Priority.SLEEPING
                step,
                jitter,
                self.topo.route_info(self.id, dest)[3],
                self.id,
            ),
        )

    def _rc_inject(self, event: Event) -> None:
        saved = event.saved["inject"]
        if saved is None:
            return
        if saved == ():
            self.stats.inject_blocked -= 1
            return
        d, prev_claim, wait, prev_max = saved
        st = self.stats
        self.links[self.base + d] = prev_claim
        self.head_gen[self.id] -= 1
        st.injected -= 1
        st.total_inject_wait -= wait
        st.max_inject_wait = prev_max

    # ------------------------------------------------------------------
    # HEARTBEAT.
    # ------------------------------------------------------------------
    def _heartbeat(self, event: Event) -> None:
        step: int = event.data
        links = self.links
        base = self.base
        claimed = sum(
            1 for d in DIRECTIONS if self.exists[d] and links[base + d] == step
        )
        st = self.stats
        st.util_claimed += claimed
        st.util_samples += sum(self.exists)
        event.saved["hb"] = claimed
        self.send(step + 1 + HEARTBEAT_OFFSET, self.id, HEARTBEAT, step + 1)

    def _rc_heartbeat(self, event: Event) -> None:
        st = self.stats
        st.util_claimed -= event.saved["hb"]
        st.util_samples -= sum(self.exists)

    # ------------------------------------------------------------------
    # Snapshots: slice this router's stripes out of the shared arrays.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Any:
        base = self.base
        return (
            self.links[base : base + 4],
            self.head_gen[self.id],
            self.stats.copy(),
        )

    def restore_state(self, snapshot: Any) -> None:
        links, head, stats = snapshot
        base = self.base
        self.links[base : base + 4] = links
        self.head_gen[self.id] = head
        # In place: the shared stats list and any compiled stepper hold
        # references to this exact RouterStats object.
        st = self.stats
        for name in RouterStats.__slots__:
            v = getattr(stats, name)
            setattr(st, name, list(v) if isinstance(v, list) else v)


class SlottedRouterLPWithLog(SlottedRouterLP):
    """SoA router with the commit-time delivery log enabled.

    A subclass (rather than a branch in ``commit``) so that log-off runs
    keep the base class's inherited no-op ``commit`` — the Time Warp
    kernel's fossil collector detects that and skips the per-event commit
    dispatch entirely.
    """

    __slots__ = ()

    def commit(self, event: Event) -> None:
        if event.kind == ARRIVE and "absorb" in event.saved:
            data = event.data
            self.delivery_log.append((data[0], data[0] - data[3]))


class HotPotatoVectorPlan:
    """Fused band-stepping plan for an SoA hot-potato population.

    Holds the shared arrays plus everything the compiled batch needs
    hoisted; see the module docstring for the band-safety argument.
    """

    def __init__(
        self,
        lps: list[SlottedRouterLP],
        links: list[int],
        head_gen: list[int],
        stats: list[RouterStats],
        cfg: HotPotatoConfig,
        topo: GridTopology,
    ) -> None:
        self.lps = lps
        self.links = links
        self.head_gen = head_gen
        self.stats = stats
        self.cfg = cfg
        self.topo = topo
        #: Flat neighbor table (``neighbors[4*id + d]``).
        self.neighbors: list = []
        for lp in lps:
            self.neighbors.extend(lp.neighbors)

    # ------------------------------------------------------------------
    def compile_batch(self, kernel, pe, use_heap: bool):
        """Build the fused per-PE batch loop (vectorized band stepping).

        Same signature and contract as the kernel's scalar
        ``_compile_batch``: ``batch(max_events, limit_ts) -> done``.  The
        loop pops the whole run of pending events below the current band
        edge, then steps the run through per-kind fused handlers with the
        shared arrays and every run-constant hoisted into cell variables.
        Operation-for-operation identical to the scalar batch.
        """
        lps = kernel.lps
        processed_append_by_lp = [kp.processed.append for kp in kernel._kp_of_lp]
        pending = pe.pending
        heap = pending._heap if use_heap else None
        pop_below = pending.pop_below
        stats_pe = pe.stats
        event_cost = pe.event_cost
        # Sends go through the kernel's fused per-LP send closures; the
        # plan is compiled after those are installed.
        send_by_lp = [lp.send for lp in lps]
        faults_by_lp = [lp.faults for lp in lps]
        exists_by_lp = [lp.exists for lp in lps]
        links = self.links
        head_gen = self.head_gen
        nbrs = self.neighbors
        stats_by_lp = self.stats
        route_info = self.topo.route_info
        cfg = self.cfg
        absorb_sleeping = cfg.absorb_sleeping
        sleeping_p = cfg.sleeping_upgrade_p
        active_p = cfg.active_upgrade_p
        jitter_on = cfg.arrival_jitter
        slots = cfg.jitter_slots
        two_slots = 2 * slots
        span = self.topo.num_nodes - 1

        # --- per-kind fused steppers (run[i:j] all share one kind) --------
        def step_arrive(run, i, j):
            for k in range(i, j):
                ev = run[k]
                dst = ev.dst
                lp = lps[dst]
                ev.sent.clear()
                ev.prev_send_seq = lp.send_seq
                rng = lp.rng
                c0 = rng._count
                lp._now = ev.entry[0]
                kernel._current_event = ev
                data = ev.data
                step = data[0]
                flt = faults_by_lp[dst]
                if flt is not None and flt.crashed(step):
                    stats_by_lp[dst].fault_dropped_crash += 1
                    ev.saved["fdrop"] = True
                else:
                    priority = data[2]
                    if data[1] == dst and (priority != 0 or absorb_sleeping):
                        st = stats_by_lp[dst]
                        dt = step - data[3]
                        st.delivered += 1
                        st.total_delivery_time += dt
                        st.total_distance += data[5]
                        st.delivered_by_priority[priority] += 1
                        prev_max = st.max_delivery_time
                        if dt > prev_max:
                            st.max_delivery_time = dt
                        ev.saved["absorb"] = prev_max
                    else:
                        send_by_lp[dst](
                            step
                            + ROUTE_BASE
                            + ROUTE_PRIO_STRIDE * (3 - priority)
                            + ROUTE_JITTER_SCALE * data[4],
                            dst,
                            ROUTE,
                            data,
                        )
                        ev.saved.pop("absorb", None)
                ev.rng_draws = rng._count - c0
                ev.processed = True
                processed_append_by_lp[dst](ev)
                stats_pe.busy += event_cost
                stats_pe.round_busy += event_cost

        def step_route(run, i, j):
            for k in range(i, j):
                ev = run[k]
                dst = ev.dst
                lp = lps[dst]
                ev.sent.clear()
                ev.prev_send_seq = lp.send_seq
                rng = lp.rng
                c0 = rng._count
                lp._now = ev.entry[0]
                kernel._current_event = ev
                data = ev.data
                step = data[0]
                base = dst * 4
                ex = exists_by_lp[dst]
                saved = ev.saved
                f0 = ex[0] and links[base] != step
                f1 = ex[1] and links[base + 1] != step
                f2 = ex[2] and links[base + 2] != step
                f3 = ex[3] and links[base + 3] != step
                flt = faults_by_lp[dst]
                st = stats_by_lp[dst]
                basemask = None
                dropped = False
                if flt is not None:
                    basemask = (f0, f1, f2, f3)
                    f0, f1, f2, f3 = free = flt.mask(basemask, step)
                    if not (f0 or f1 or f2 or f3):
                        st.fault_dropped_no_link += 1
                        saved["fdrop"] = True
                        dropped = True
                    else:
                        saved.pop("fdrop", None)
                if not dropped:
                    if not (f0 or f1 or f2 or f3):
                        # Transient overflow (see RouterLP._route).
                        d = 0 if ex[0] else 1 if ex[1] else 2 if ex[2] else 3
                        saved["route"] = (
                            d, links[base + d], False, False, False, False, data[2]
                        )
                        saved["overflow"] = True
                        links[base + d] = step
                        st.routes += 1
                        st.overflow_routes += 1
                        send_by_lp[dst](
                            step + 1 + data[4],
                            nbrs[base + d],
                            ARRIVE,
                            (step + 1,) + data[1:],
                        )
                    else:
                        saved.pop("overflow", None)
                        priority = data[2]
                        dest = data[1]
                        free = (f0, f1, f2, f3)
                        info = route_info(dst, dest)
                        good = info[0]
                        deflected = False
                        upgraded = False
                        demoted = False
                        off_turn = False
                        if priority >= 2:
                            # Home-run rule (BuschHotPotatoPolicy inlined).
                            want = info[1]
                            if free[want]:
                                d = want
                                upgraded = priority == 2
                                newp = 3
                            else:
                                d = None
                                for g in good:
                                    if free[g]:
                                        d = g
                                        break
                                demoted = True
                                newp = 1
                                if d is None:
                                    deflected = True
                                    d = 0 if f0 else 1 if f1 else 2 if f2 else 3
                                off_turn = priority == 3 and not info[2]
                        else:
                            # Greedy rule with the inlined upgrade draws
                            # (same LCG step as ReversibleStream.bernoulli).
                            d = None
                            for g in good:
                                if free[g]:
                                    d = g
                                    break
                            deflected = d is None
                            if deflected:
                                d = 0 if f0 else 1 if f1 else 2 if f2 else 3
                            if priority == 0:
                                rng._state = state = (
                                    MULTIPLIER * rng._state + INCREMENT
                                ) & MASK64
                                rng._count += 1
                                if (state >> 11) * _INV_2_53 < sleeping_p:
                                    newp = 1
                                    upgraded = True
                                else:
                                    newp = 0
                            elif deflected:
                                rng._state = state = (
                                    MULTIPLIER * rng._state + INCREMENT
                                ) & MASK64
                                rng._count += 1
                                if (state >> 11) * _INV_2_53 < active_p:
                                    newp = 2
                                    upgraded = True
                                else:
                                    newp = 1
                            else:
                                newp = 1
                        d = int(d)
                        saved["route"] = (
                            d, links[base + d], deflected, upgraded, demoted,
                            off_turn, priority,
                        )
                        links[base + d] = step
                        st.routes += 1
                        if deflected:
                            st.deflections += 1
                        if upgraded:
                            if priority == 0:
                                st.upgrades_sleeping += 1
                            elif priority == 1:
                                st.upgrades_active += 1
                            else:
                                st.promotions_running += 1
                        if demoted:
                            st.demotions += 1
                        if off_turn:
                            st.running_deflections_off_turn += 1
                        if flt is not None and deflected:
                            for g in good:
                                if basemask[g] and not free[g]:
                                    st.fault_deflections += 1
                                    saved["fdefl"] = True
                                    break
                        send_by_lp[dst](
                            step + 1 + data[4],
                            nbrs[base + d],
                            ARRIVE,
                            (step + 1, dest, newp, data[3], data[4], data[5], data[6]),
                        )
                ev.rng_draws = rng._count - c0
                ev.processed = True
                processed_append_by_lp[dst](ev)
                stats_pe.busy += event_cost
                stats_pe.round_busy += event_cost

        def step_inject(run, i, j):
            for k in range(i, j):
                ev = run[k]
                dst = ev.dst
                lp = lps[dst]
                ev.sent.clear()
                ev.prev_send_seq = lp.send_seq
                rng = lp.rng
                c0 = rng._count
                lp._now = ev.entry[0]
                kernel._current_event = ev
                step = ev.data
                send = send_by_lp[dst]
                send(step + 1 + INJECT_OFFSET, dst, INJECT, step + 1)
                flt = faults_by_lp[dst]
                saved = ev.saved
                head = head_gen[dst]
                if flt is not None and flt.crashed(step):
                    saved["inject"] = None
                elif (step + 1) - head <= 0:
                    saved["inject"] = None
                else:
                    base = dst * 4
                    ex = exists_by_lp[dst]
                    free = (
                        ex[0] and links[base] != step,
                        ex[1] and links[base + 1] != step,
                        ex[2] and links[base + 2] != step,
                        ex[3] and links[base + 3] != step,
                    )
                    if flt is not None:
                        free = flt.mask(free, step)
                    if not (free[0] or free[1] or free[2] or free[3]):
                        stats_by_lp[dst].inject_blocked += 1
                        saved["inject"] = ()
                    else:
                        # _draw_dest_jitter inlined (same LCG steps).
                        if jitter_on:
                            s1 = (MULTIPLIER * rng._state + INCREMENT) & MASK64
                            rng._state = s2 = (MULTIPLIER * s1 + INCREMENT) & MASK64
                            rng._count += 2
                            dest = int((s1 >> 11) * _INV_2_53 * span)
                            if dest >= dst:
                                dest += 1
                            jitter = (
                                1 + int((s2 >> 11) * _INV_2_53 * slots)
                            ) / two_slots
                        else:
                            rng._state = s1 = (
                                MULTIPLIER * rng._state + INCREMENT
                            ) & MASK64
                            rng._count += 1
                            dest = int((s1 >> 11) * _INV_2_53 * span)
                            if dest >= dst:
                                dest += 1
                            jitter = FIXED_JITTER
                        info = route_info(dst, dest)
                        d = None
                        for g in info[0]:
                            if free[g]:
                                d = g
                                break
                        if d is None:
                            d = (
                                0 if free[0]
                                else 1 if free[1]
                                else 2 if free[2]
                                else 3
                            )
                        d = int(d)
                        st = stats_by_lp[dst]
                        wait = step - head
                        prev_max = st.max_inject_wait
                        saved["inject"] = (d, links[base + d], wait, prev_max)
                        links[base + d] = step
                        head_gen[dst] = head + 1
                        st.injected += 1
                        st.total_inject_wait += wait
                        if wait > prev_max:
                            st.max_inject_wait = wait
                        send(
                            step + 1 + jitter,
                            nbrs[base + d],
                            ARRIVE,
                            (step + 1, dest, 0, step, jitter, info[3], dst),
                        )
                ev.rng_draws = rng._count - c0
                ev.processed = True
                processed_append_by_lp[dst](ev)
                stats_pe.busy += event_cost
                stats_pe.round_busy += event_cost

        def step_generic(run, i, j):
            for k in range(i, j):
                ev = run[k]
                dst = ev.dst
                lp = lps[dst]
                ev.sent.clear()
                ev.prev_send_seq = lp.send_seq
                rng = lp.rng
                c0 = rng._count
                lp._now = ev.entry[0]
                kernel._current_event = ev
                lp.forward(ev)
                ev.rng_draws = rng._count - c0
                ev.processed = True
                processed_append_by_lp[dst](ev)
                stats_pe.busy += event_cost
                stats_pe.round_busy += event_cost

        steppers = {ARRIVE: step_arrive, ROUTE: step_route, INJECT: step_inject}
        get_stepper = steppers.get

        # --- the batch loop: pop a band run, step it in kind spans --------
        def vec_batch(max_events, limit_ts):
            done = 0
            batches = 0
            try:
                while done < max_events:
                    # Pop the first live event below limit_ts.
                    if use_heap:
                        while True:
                            if not heap:
                                return done
                            entry = heap[0]
                            ev = entry[4]
                            if ev.cancelled:
                                heappop(heap)
                                ev.in_pending = False
                                continue
                            if entry[0] >= limit_ts:
                                return done
                            heappop(heap)
                            ev.in_pending = False
                            break
                        ts0 = entry[0]
                    else:
                        ev = pop_below(limit_ts)
                        if ev is None:
                            return done
                        ts0 = ev.entry[0]
                    # Band edge for ts0 (see module docstring): nothing
                    # executed below the edge can schedule below it.
                    s = float(int(ts0))
                    if ts0 < s + ROUTE_BASE:
                        edge = s + ROUTE_BASE
                    elif ts0 < s + INJECT_OFFSET:
                        edge = s + INJECT_OFFSET
                    else:
                        edge = s + 1.0
                    if edge > limit_ts:
                        edge = limit_ts
                    # Collect the run: every live pending event below the
                    # edge, capped by the optimism batch.
                    run = [ev]
                    room = max_events - done - 1
                    if use_heap:
                        while room > 0:
                            if not heap:
                                break
                            entry = heap[0]
                            nxt = entry[4]
                            if nxt.cancelled:
                                heappop(heap)
                                nxt.in_pending = False
                                continue
                            if entry[0] >= edge:
                                break
                            heappop(heap)
                            nxt.in_pending = False
                            run.append(nxt)
                            room -= 1
                    else:
                        while room > 0:
                            nxt = pop_below(edge)
                            if nxt is None:
                                break
                            run.append(nxt)
                            room -= 1
                    # Step the run in maximal same-kind spans.
                    n = len(run)
                    i = 0
                    while i < n:
                        kind = run[i].kind
                        j = i + 1
                        while j < n and run[j].kind == kind:
                            j += 1
                        get_stepper(kind, step_generic)(run, i, j)
                        i = j
                    done += n
                    batches += 1
                return done
            finally:
                kernel._current_event = None
                if done:
                    if use_heap:
                        pending._live -= done
                    stats_pe.processed += done
                    kernel.soa_batches += batches
                    kernel.soa_lps_stepped += done

        return vec_batch


def build_soa(model) -> tuple[list[SlottedRouterLP], HotPotatoVectorPlan]:
    """Build the SoA population + plan for a :class:`HotPotatoModel`."""
    cfg = model.cfg
    topo = model.topo
    n = cfg.num_routers
    links = [-1] * (4 * n)
    head_gen = [0] * n
    stats = [RouterStats() for _ in range(n)]
    log = model.delivery_log if cfg.delivery_log else None
    cls = SlottedRouterLPWithLog if log is not None else SlottedRouterLP
    lps = [
        cls(
            i,
            cfg,
            topo,
            model.policy,
            model.injectors[i],
            links,
            head_gen,
            stats[i],
            log,
        )
        for i in range(n)
    ]
    views = model._fault_views
    if views:
        for i, faults in views.items():
            lps[i].faults = faults
    plan = HotPotatoVectorPlan(lps, links, head_gen, stats, cfg, topo)
    return lps, plan
