"""Hot-potato simulation configuration.

The five input parameters of the report's simulation (§3.3.1) plus the
knobs its discussion sections vary:

1. ``n`` — network dimension (the report requires a multiple of 8 only so
   the block LP/KP mapping tiles evenly; we check that at mapping time
   instead, so any n >= 2 is accepted here).
2. the PE count — an engine concern, see
   :class:`repro.core.config.EngineConfig`.
3. ``duration`` — ``SIMULATION_DURATION`` in time steps.
4. ``injector_fraction`` — ``probability_i``: the probability that a given
   router hosts a packet injection application.
5. ``absorb_sleeping`` — whether routers absorb sleeping packets at their
   destination (practical mode) or only higher-priority ones (the proof's
   model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["HotPotatoConfig"]


@dataclass(frozen=True)
class HotPotatoConfig:
    """Parameters for one hot-potato routing simulation.

    Attributes
    ----------
    n:
        Grid dimension: the network is an n×n torus (or mesh).
    duration:
        Simulation end barrier, in time steps (one step = one link
        traversal, §1.1.1).
    injector_fraction:
        Fraction of routers hosting injection applications.  With
        ``exact_injectors`` (default) exactly ``round(f * n*n)`` routers,
        spread deterministically over the grid, inject; otherwise each
        router independently injects with this probability (the report's
        literal ``probability_i`` semantics).
    initial_fill:
        Fraction of each router's four output links seeded with a packet at
        step 0.  The report initialises the network "to full (four packets
        per router)"; with ``injector_fraction=0`` and full fill the run is
        the static (one-shot) analysis.
    absorb_sleeping:
        Parameter 5 of §3.3.1 (see module docstring).
    topology:
        Named topology: ``"torus"`` (the simulated configuration) or
        ``"mesh"`` (the theoretical analysis configuration).  ``None``
        (the default) derives the name from the legacy ``torus`` flag, so
        existing call sites keep working unchanged; when both are given
        they must agree.  Scenario files and CLIs use this name.
    torus:
        Legacy boolean form of ``topology`` (True = torus, False = mesh).
        Kept in sync with ``topology`` by ``__post_init__`` so old call
        sites reading either field see a consistent configuration.
    arrival_jitter:
        Randomise packet arrival offsets within the step (§3.2.2).  Our
        engines are deterministic either way; the jitter changes *which*
        packet wins same-priority link contention from "arbitrary but
        deterministic" to "uniformly random", matching the report.
    jitter_slots:
        Jitter granularity: offsets are ``integer(1, jitter_slots) / (2 *
        jitter_slots)``, i.e. uniform on (0, 0.5] in slot steps.
    sleeping_upgrade_scale / active_upgrade_scale:
        The probabilities of upgrading Sleeping→Active on a route and
        Active→Excited on a deflection are ``1 / (scale * n)``; the paper
        uses 24 and 16 (§1.2.5).
    heartbeat:
        Schedule a HEARTBEAT event per router per step sampling output-link
        utilisation.  Off by default, "in order to reduce the total number
        of simulated events" (§3.1.4).
    layout_seed:
        Seed for the injector-placement draw in probabilistic mode.
    """

    n: int = 8
    duration: float = 100.0
    injector_fraction: float = 1.0
    initial_fill: float = 1.0
    absorb_sleeping: bool = True
    torus: bool = True
    #: Named topology ("torus"/"mesh"); None derives it from ``torus``.
    topology: str | None = None
    arrival_jitter: bool = True
    jitter_slots: int = 500
    sleeping_upgrade_scale: float = 24.0
    active_upgrade_scale: float = 16.0
    heartbeat: bool = False
    exact_injectors: bool = True
    #: Record a (delivery_step, latency) entry for every absorbed packet.
    #: Collected at *commit* time, which is rollback-safe by construction
    #: (committed events are final); analyse with repro.analysis.timeseries.
    delivery_log: bool = False
    layout_seed: int = 42

    #: Names accepted by the ``topology`` field (future shapes slot in
    #: here and in repro.net.TOPOLOGIES together).
    TOPOLOGY_NAMES = ("torus", "mesh")

    def __post_init__(self) -> None:
        # Reconcile the named topology with the legacy boolean flag.  The
        # dataclass is frozen, so the shim writes through the descriptor.
        if self.topology is None:
            object.__setattr__(
                self, "topology", "torus" if self.torus else "mesh"
            )
        else:
            if self.topology not in self.TOPOLOGY_NAMES:
                raise ConfigurationError(
                    f"unknown topology {self.topology!r}; choose from "
                    f"{list(self.TOPOLOGY_NAMES)}"
                )
            # The named field is authoritative; the legacy flag is synced
            # (an explicit ``torus=`` passed alongside a disagreeing
            # ``topology=`` is indistinguishable from the default, so
            # callers migrating to the name should drop the flag).
            object.__setattr__(self, "torus", self.topology == "torus")
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if not 0.0 <= self.injector_fraction <= 1.0:
            raise ConfigurationError(
                f"injector_fraction must be in [0, 1], got {self.injector_fraction}"
            )
        if not 0.0 <= self.initial_fill <= 1.0:
            raise ConfigurationError(
                f"initial_fill must be in [0, 1], got {self.initial_fill}"
            )
        if self.jitter_slots < 1:
            raise ConfigurationError("jitter_slots must be >= 1")
        if self.sleeping_upgrade_scale <= 0 or self.active_upgrade_scale <= 0:
            raise ConfigurationError("upgrade scales must be positive")

    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        """Total routers in the grid."""
        return self.n * self.n

    @property
    def sleeping_upgrade_p(self) -> float:
        """P(Sleeping→Active per route) = 1/(24n) with paper defaults."""
        return 1.0 / (self.sleeping_upgrade_scale * self.n)

    @property
    def active_upgrade_p(self) -> float:
        """P(Active→Excited per deflection) = 1/(16n) with paper defaults."""
        return 1.0 / (self.active_upgrade_scale * self.n)
