"""The hot-potato (deflection) routing algorithm of Busch, Herlihy &

Wattenhofer (SPAA 2001), as simulated by the report this package
reproduces.  See :mod:`repro.hotpotato.policy` for the algorithm rules,
:mod:`repro.hotpotato.router` for the event-level simulation model, and
:class:`~repro.hotpotato.simulation.HotPotatoSimulation` for the one-stop
API.
"""

from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel, choose_injectors
from repro.hotpotato.packet import Packet, Priority
from repro.hotpotato.policy import (
    BuschHotPotatoPolicy,
    RouteOutcome,
    RoutingPolicy,
    first_free,
    first_free_good,
)
from repro.hotpotato.router import (
    ARRIVE,
    HEARTBEAT,
    INIT,
    INJECT,
    ROUTE,
    RouterLP,
)
from repro.hotpotato.simulation import HotPotatoSimulation
from repro.hotpotato.stats import RouterStats, aggregate_router_stats

__all__ = [
    "ARRIVE",
    "BuschHotPotatoPolicy",
    "HEARTBEAT",
    "HotPotatoConfig",
    "HotPotatoModel",
    "HotPotatoSimulation",
    "INIT",
    "INJECT",
    "Packet",
    "Priority",
    "ROUTE",
    "RouteOutcome",
    "RouterLP",
    "RouterStats",
    "RoutingPolicy",
    "aggregate_router_stats",
    "choose_injectors",
    "first_free",
    "first_free_good",
]
