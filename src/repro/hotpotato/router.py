"""The bufferless router LP with its four event handlers (and reverses).

"There are four event types: ARRIVE, ROUTE, HEARTBEAT and
PACKET_INJECTION_APPLICATION" (§3.1.4); an additional INIT event performs
the startup network fill so that even initialisation is an ordinary,
rollback-safe event.

Within each unit-length time step ``s`` the virtual-time layout is:

====================  =======================================
event                 timestamp inside step ``s``
====================  =======================================
ARRIVE                ``s + jitter``, jitter in (0, 0.5]
ROUTE                 ``s + 0.6 + 0.05*rank + 0.04*jitter``
INJECT                ``s + 0.9``
HEARTBEAT             ``s + 0.95``
====================  =======================================

where ``rank`` is 0 for Running down to 3 for Sleeping — "the time stamps
of the generated ROUTE events are staggered based on priority" (§3.1.4) so
higher-priority packets claim output links first, and the carried arrival
jitter breaks same-priority contention randomly (§3.2.2).  All routing for
step ``s`` completes before injection, which completes before the
utilisation sample; packets forwarded at step ``s`` arrive at step
``s + 1``.  Every handler records what it changed in ``event.saved`` and
has an exact reverse, so the model runs unmodified on the Time Warp kernel.
"""

from __future__ import annotations

from typing import Any

from repro.core.event import Event
from repro.core.lp import LogicalProcess
from repro.errors import ModelError
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.hotpotato.policy import RoutingPolicy, first_free, first_free_good
from repro.hotpotato.stats import RouterStats
from repro.net import DIRECTIONS, GridTopology

__all__ = [
    "RouterLP",
    "INIT",
    "ARRIVE",
    "ROUTE",
    "HEARTBEAT",
    "INJECT",
]

# Event kinds (INJECT keeps the report's verbose name).
INIT = "INIT"
ARRIVE = "ARRIVE"
ROUTE = "ROUTE"
HEARTBEAT = "HEARTBEAT"
INJECT = "PACKET_INJECTION_APPLICATION"

# Virtual-time layout within a step (see module docstring).
INIT_TS = 0.1
ROUTE_BASE = 0.6
ROUTE_PRIO_STRIDE = 0.05
ROUTE_JITTER_SCALE = 0.04
INJECT_OFFSET = 0.9
HEARTBEAT_OFFSET = 0.95
#: Arrival offset used when the randomised jitter is disabled.
FIXED_JITTER = 0.25

#: Enum member hoisted out of the per-route hot path.
_RUNNING = Priority.RUNNING

#: Minimum virtual-time gap between any event and anything it schedules,
#: over all handler/offset combinations (the binding case is INJECT at
#: s+0.9 sending an ARRIVE at s+1+jitter with jitter >= 1/(2*jitter_slots)).
#: Declared as the model's lookahead for conservative execution.
MODEL_LOOKAHEAD = 0.1


class RouterLP(LogicalProcess):
    """One bufferless router (plus optional injection application)."""

    __slots__ = (
        "cfg",
        "topo",
        "policy",
        "is_injector",
        "neighbors",
        "exists",
        "links",
        "head_gen_step",
        "stats",
        "delivery_log",
        "faults",
        "adversary",
    )

    def __init__(
        self,
        lp_id: int,
        cfg: HotPotatoConfig,
        topo: GridTopology,
        policy: RoutingPolicy,
        is_injector: bool,
        delivery_log: list | None = None,
    ) -> None:
        super().__init__(lp_id)
        self.cfg = cfg
        self.topo = topo
        self.policy = policy
        self.is_injector = is_injector
        #: Shared model-level log written at commit time (rollback-safe).
        self.delivery_log = delivery_log
        #: Neighbor LP per direction (None off a mesh edge).
        self.neighbors = tuple(topo.neighbor(lp_id, d) for d in DIRECTIONS)
        #: Which output links physically exist (all four on a torus).
        self.exists = tuple(nb is not None for nb in self.neighbors)
        #: Last step each output link was claimed (-1 = never).  A link is
        #: free at step s iff its entry differs from s.
        self.links = [-1, -1, -1, -1]
        #: Generation step of the oldest not-yet-injected packet; equals
        #: the number of packets injected so far, since one packet is
        #: generated per step from step 0.
        self.head_gen_step = 0
        self.stats = RouterStats()
        #: Compiled fault view (repro.faults.views.NodeFaults) or None.
        #: The model attaches one only to routers its fault plan touches,
        #: so the ``faults is None`` fast paths below are the common case
        #: and a faults-off run executes exactly the pre-fault code.
        #: Fault decisions are pure functions of ``(plan, step)``, which
        #: keeps them identical across engines and across Time Warp
        #: re-executions of the same event.
        self.faults = None
        #: Compiled adversary script — a tuple of ``(gen_step, dest)``
        #: pairs in increasing step order — or None for the stock
        #: Bernoulli injection application.  Like ``faults``, the model
        #: attaches one only to routers the plan names, so scripted
        #: injection costs nothing when no adversary is configured, and
        #: the decisions are pure data: identical on every engine and
        #: across Time Warp re-executions.
        self.adversary = None

    # ------------------------------------------------------------------
    # Startup.
    # ------------------------------------------------------------------
    def on_init(self) -> None:
        self.send(INIT_TS, self.id, INIT)

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def forward(self, event: Event) -> None:
        kind = event.kind
        if kind == ARRIVE:
            self._arrive(event)
        elif kind == ROUTE:
            self._route(event)
        elif kind == INJECT:
            self._inject(event)
        elif kind == HEARTBEAT:
            self._heartbeat(event)
        elif kind == INIT:
            self._init_fill(event)
        else:  # pragma: no cover - defensive
            raise ModelError(f"router {self.id}: unknown event kind {kind!r}")

    def reverse(self, event: Event) -> None:
        kind = event.kind
        if kind == ARRIVE:
            self._rc_arrive(event)
        elif kind == ROUTE:
            self._rc_route(event)
        elif kind == INJECT:
            self._rc_inject(event)
        elif kind == HEARTBEAT:
            self._rc_heartbeat(event)
        elif kind == INIT:
            self._rc_init_fill(event)
        else:  # pragma: no cover - defensive
            raise ModelError(f"router {self.id}: unknown event kind {kind!r}")

    def commit(self, event: Event) -> None:
        """Commit hook: record final deliveries in the shared log.

        Commit fires exactly once per event, after it can never be rolled
        back, so appending here needs no reverse handler.
        """
        if (
            self.delivery_log is not None
            and event.kind == ARRIVE
            and "absorb" in event.saved
        ):
            data = event.data
            self.delivery_log.append(
                (data["step"], data["step"] - data["inject_step"])
            )

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------
    def _draw_jitter(self) -> float:
        """Per-packet arrival offset in (0, 0.5] (one draw, or none)."""
        cfg = self.cfg
        if cfg.arrival_jitter:
            return self.rng.integer(1, cfg.jitter_slots) / (2 * cfg.jitter_slots)
        return FIXED_JITTER

    def _draw_destination(self) -> int:
        """Uniform destination among the other routers (one draw)."""
        d = self.rng.integer(0, self.topo.num_nodes - 2)
        return d + 1 if d >= self.id else d

    def _draw_dest_jitter(self) -> tuple[int, float]:
        """Destination then jitter — the injection pair, batched.

        Draw order and counts are identical to ``_draw_destination()``
        followed by ``_draw_jitter()``; with jitter enabled the two RNG
        steps collapse into one :meth:`ReversibleStream.integer2` call.
        """
        cfg = self.cfg
        if cfg.arrival_jitter:
            slots = cfg.jitter_slots
            dest, j = self.rng.integer2(0, self.topo.num_nodes - 2, 1, slots)
            if dest >= self.id:
                dest += 1
            return dest, j / (2 * slots)
        return self._draw_destination(), FIXED_JITTER

    def _free_mask(self, step: int) -> tuple[bool, bool, bool, bool]:
        links = self.links
        ex = self.exists
        return (
            ex[0] and links[0] != step,
            ex[1] and links[1] != step,
            ex[2] and links[2] != step,
            ex[3] and links[3] != step,
        )

    def _send_arrive(self, direction: int, step: int, fields: dict[str, Any]) -> None:
        """Forward a packet over ``direction``, arriving next step."""
        nb = self.neighbors[direction]
        assert nb is not None, "routed onto a non-existent link"
        self.send(step + 1 + fields["jitter"], nb, ARRIVE, fields)

    # ------------------------------------------------------------------
    # INIT: seed the network "to full (four packets per router)" (§3.3.1).
    # ------------------------------------------------------------------
    def _init_fill(self, event: Event) -> None:
        cfg = self.cfg
        seeded: list[int] = []
        flt = self.faults
        alive = flt is None or not flt.crashed(0)
        if cfg.initial_fill > 0.0 and alive:
            for d in DIRECTIONS:
                if not self.exists[d]:
                    continue
                if flt is not None and not flt.usable(d, 0):
                    continue
                if cfg.initial_fill < 1.0 and not self.rng.bernoulli(cfg.initial_fill):
                    continue
                dest, jitter = self._draw_dest_jitter()
                self.links[d] = 0
                seeded.append(d)
                self._send_arrive(
                    d,
                    0,
                    {
                        "step": 1,
                        "dest": dest,
                        "priority": int(Priority.SLEEPING),
                        "inject_step": 0,
                        "jitter": jitter,
                        "distance": self.topo.route_info(self.id, dest)[3],
                        "src": self.id,
                    },
                )
        event.saved["seeded"] = seeded
        self.stats.initial_packets += len(seeded)
        if self.is_injector:
            self.send(INJECT_OFFSET, self.id, INJECT, {"step": 0})
        if cfg.heartbeat:
            self.send(HEARTBEAT_OFFSET, self.id, HEARTBEAT, {"step": 0})

    def _rc_init_fill(self, event: Event) -> None:
        seeded = event.saved["seeded"]
        for d in seeded:
            self.links[d] = -1
        self.stats.initial_packets -= len(seeded)

    # ------------------------------------------------------------------
    # ARRIVE: absorb at destination, else queue a ROUTE decision.
    # ------------------------------------------------------------------
    def _arrive(self, event: Event) -> None:
        data = event.data
        step: int = data["step"]
        flt = self.faults
        if flt is not None and flt.crashed(step):
            # The router is dead this step: the packet is lost (even at
            # its destination — nobody is home to absorb it).  The crash
            # predicate depends only on the step, so every re-execution
            # of this event takes this same branch.
            self.stats.fault_dropped_crash += 1
            event.saved["fdrop"] = True
            return
        priority = data["priority"]
        if data["dest"] == self.id and (
            priority != Priority.SLEEPING or self.cfg.absorb_sleeping
        ):
            # Absorption: record delivery statistics; the output link the
            # packet would have used stays free for injection (§4.1).
            st = self.stats
            dt = step - data["inject_step"]
            st.delivered += 1
            st.total_delivery_time += dt
            st.total_distance += data["distance"]
            st.delivered_by_priority[priority] += 1
            prev_max = st.max_delivery_time
            if dt > prev_max:
                st.max_delivery_time = dt
            event.saved["absorb"] = prev_max
            return
        rank = 3 - priority  # Priority.route_rank without the enum call
        ts = (
            step
            + ROUTE_BASE
            + ROUTE_PRIO_STRIDE * rank
            + ROUTE_JITTER_SCALE * data["jitter"]
        )
        # The ROUTE event reuses the same payload dict: handlers treat
        # payloads as read-only, so sharing is safe and avoids a copy.
        self.send(ts, self.id, ROUTE, data)
        event.saved.pop("absorb", None)

    def _rc_arrive(self, event: Event) -> None:
        if self.faults is not None and event.saved.pop("fdrop", None):
            self.stats.fault_dropped_crash -= 1
            return
        prev_max = event.saved.pop("absorb", None)
        if prev_max is None:
            return  # only sent a ROUTE event; the kernel cancels it
        data = event.data
        st = self.stats
        dt = data["step"] - data["inject_step"]
        st.delivered -= 1
        st.total_delivery_time -= dt
        st.total_distance -= data["distance"]
        st.delivered_by_priority[data["priority"]] -= 1
        st.max_delivery_time = prev_max

    # ------------------------------------------------------------------
    # ROUTE: claim an output link per the policy; forward the packet.
    # ------------------------------------------------------------------
    def _route(self, event: Event) -> None:
        data = event.data
        step: int = data["step"]
        # ``self._free_mask(step)`` inlined: one per routed packet.
        links = self.links
        ex = self.exists
        free = (
            ex[0] and links[0] != step,
            ex[1] and links[1] != step,
            ex[2] and links[2] != step,
            ex[3] and links[3] != step,
        )
        flt = self.faults
        base = free
        if flt is not None:
            free = flt.mask(free, step)
            if not any(free):
                # Every surviving output link is faulted (or claimed):
                # a bufferless router cannot hold the packet, so it is
                # lost.  In a committed timeline this occurs exactly when
                # faults locally exceed the healthy-grid invariant of
                # "arrivals <= free links"; transient contention-only
                # versions of this state (lazy cancellation) take the
                # same branch and are always rolled back.
                st = self.stats
                st.fault_dropped_no_link += 1
                event.saved["fdrop"] = True
                return
            event.saved.pop("fdrop", None)
        if not any(free):
            # More packets than output links.  In a committed timeline this
            # is impossible (the bufferless invariant); it CAN be observed
            # transiently under lazy cancellation, where a rolled-back
            # neighbor's parked message stays visible until its sender
            # re-executes and disowns it.  Such states are always rolled
            # back, so route "impossibly" on the first physical link and
            # count it; committed statistics must show zero overflows
            # (asserted across the test suite).
            st = self.stats
            d = next(dd for dd in DIRECTIONS if self.exists[dd])
            event.saved["route"] = (int(d), self.links[d], False, False, False, False, data["priority"])
            event.saved["overflow"] = True
            self.links[d] = step
            st.routes += 1
            st.overflow_routes += 1
            fields = dict(data)
            fields["step"] = step + 1
            self._send_arrive(d, step, fields)
            return
        event.saved.pop("overflow", None)
        # Priorities travel as raw ints; IntEnum comparisons below work on
        # them directly, sparing the Priority() construction per route.
        priority = data["priority"]
        out = self.policy.route(
            self.topo, self.id, data["dest"], priority, free, self.rng, self.cfg
        )
        d = out.direction
        st = self.stats
        off_turn = priority == _RUNNING and out.demoted and not out.turning
        event.saved["route"] = (
            int(d),
            self.links[d],
            out.deflected,
            out.upgraded,
            out.demoted,
            off_turn,
            priority,
        )
        self.links[d] = step
        st.routes += 1
        if out.deflected:
            st.deflections += 1
        if out.upgraded:
            if priority == Priority.SLEEPING:
                st.upgrades_sleeping += 1
            elif priority == Priority.ACTIVE:
                st.upgrades_active += 1
            else:
                st.promotions_running += 1
        if out.demoted:
            st.demotions += 1
        if off_turn:
            st.running_deflections_off_turn += 1
        if flt is not None and out.deflected:
            # Attribute the deflection to the faults when some good
            # direction was contention-free but fault-masked.
            good = self.topo.route_info(self.id, data["dest"])[0]
            if any(base[g] and not free[g] for g in good):
                st.fault_deflections += 1
                event.saved["fdefl"] = True
        fields = dict(data)
        fields["step"] = step + 1
        fields["priority"] = int(out.new_priority)
        # _send_arrive inlined (hottest send site; the free mask already
        # guaranteed the link exists).
        self.send(step + 1 + fields["jitter"], self.neighbors[d], ARRIVE, fields)

    def _rc_route(self, event: Event) -> None:
        st = self.stats
        if self.faults is not None:
            if event.saved.pop("fdrop", None):
                st.fault_dropped_no_link -= 1
                return
            if event.saved.pop("fdefl", None):
                st.fault_deflections -= 1
        d, prev_claim, deflected, upgraded, demoted, off_turn, priority = event.saved[
            "route"
        ]
        self.links[d] = prev_claim
        st.routes -= 1
        if event.saved.pop("overflow", None):
            st.overflow_routes -= 1
            return
        if deflected:
            st.deflections -= 1
        if upgraded:
            if priority == Priority.SLEEPING:
                st.upgrades_sleeping -= 1
            elif priority == Priority.ACTIVE:
                st.upgrades_active -= 1
            else:
                st.promotions_running -= 1
        if demoted:
            st.demotions -= 1
        if off_turn:
            st.running_deflections_off_turn -= 1

    # ------------------------------------------------------------------
    # INJECT: one injection attempt per step (§3.1.4).
    # ------------------------------------------------------------------
    def _inject(self, event: Event) -> None:
        if self.adversary is not None:
            self._inject_adversary(event)
            return
        data = event.data
        step: int = data["step"]
        # The application generates one packet per step from step 0; the
        # queue head's generation step doubles as the injected count.
        self.send(step + 1 + INJECT_OFFSET, self.id, INJECT, {"step": step + 1})
        flt = self.faults
        if flt is not None and flt.crashed(step):
            # A crashed router injects nothing; generation continues (the
            # application is still producing), so the backlog drains
            # through the normal wait-time machinery after recovery.
            event.saved["inject"] = None
            return
        pending = (step + 1) - self.head_gen_step
        if pending <= 0:
            event.saved["inject"] = None
            return
        # ``self._free_mask(step)`` inlined: one per injection attempt.
        links = self.links
        ex = self.exists
        free = (
            ex[0] and links[0] != step,
            ex[1] and links[1] != step,
            ex[2] and links[2] != step,
            ex[3] and links[3] != step,
        )
        if flt is not None:
            free = flt.mask(free, step)
        if not any(free):
            # "a packet can only be injected when there is a free link at
            # that router" (§4.1) — blocked this step.
            self.stats.inject_blocked += 1
            event.saved["inject"] = ()
            return
        dest, jitter = self._draw_dest_jitter()
        d = first_free_good(self.topo, self.id, dest, free)
        if d is None:
            d = first_free(free)
            assert d is not None
        st = self.stats
        wait = step - self.head_gen_step
        prev_max = st.max_inject_wait
        event.saved["inject"] = (int(d), self.links[d], wait, prev_max)
        self.links[d] = step
        self.head_gen_step += 1
        st.injected += 1
        st.total_inject_wait += wait
        if wait > prev_max:
            st.max_inject_wait = wait
        self._send_arrive(
            d,
            step,
            {
                "step": step + 1,
                "dest": dest,
                "priority": int(Priority.SLEEPING),
                "inject_step": step,
                "jitter": jitter,
                "distance": self.topo.route_info(self.id, dest)[3],
                "src": self.id,
            },
        )

    def _inject_adversary(self, event: Event) -> None:
        """Scripted injection: drain the adversary's ``(gen_step, dest)``
        queue instead of generating Bernoulli traffic.

        ``head_gen_step`` is repurposed as the script cursor (and still
        equals the injected count); the saved tuple has exactly the
        Bernoulli shape, so :meth:`_rc_inject` reverses both kinds
        unchanged.  The only runtime draw is the arrival jitter — the
        adversary's who/when/where decisions were fixed when the plan was
        expanded, which is what keeps the workload identical across
        engines and rollbacks.
        """
        step: int = event.data["step"]
        self.send(step + 1 + INJECT_OFFSET, self.id, INJECT, {"step": step + 1})
        flt = self.faults
        if flt is not None and flt.crashed(step):
            event.saved["inject"] = None
            return
        script = self.adversary
        idx = self.head_gen_step
        if idx >= len(script) or script[idx][0] > step:
            # Script exhausted, or the next generation lies in the future.
            event.saved["inject"] = None
            return
        links = self.links
        ex = self.exists
        free = (
            ex[0] and links[0] != step,
            ex[1] and links[1] != step,
            ex[2] and links[2] != step,
            ex[3] and links[3] != step,
        )
        if flt is not None:
            free = flt.mask(free, step)
        if not any(free):
            # Same bufferless admission rule as Bernoulli injection: the
            # adversary controls generation, not admission (§4.1).
            self.stats.inject_blocked += 1
            event.saved["inject"] = ()
            return
        gen_step, dest = script[idx]
        jitter = self._draw_jitter()
        d = first_free_good(self.topo, self.id, dest, free)
        if d is None:
            d = first_free(free)
            assert d is not None
        st = self.stats
        wait = step - gen_step
        prev_max = st.max_inject_wait
        event.saved["inject"] = (int(d), self.links[d], wait, prev_max)
        self.links[d] = step
        self.head_gen_step += 1
        st.injected += 1
        st.total_inject_wait += wait
        if wait > prev_max:
            st.max_inject_wait = wait
        self._send_arrive(
            d,
            step,
            {
                "step": step + 1,
                "dest": dest,
                "priority": int(Priority.SLEEPING),
                "inject_step": step,
                "jitter": jitter,
                "distance": self.topo.route_info(self.id, dest)[3],
                "src": self.id,
            },
        )

    def _rc_inject(self, event: Event) -> None:
        saved = event.saved["inject"]
        if saved is None:
            return
        if saved == ():
            self.stats.inject_blocked -= 1
            return
        d, prev_claim, wait, prev_max = saved
        st = self.stats
        self.links[d] = prev_claim
        self.head_gen_step -= 1
        st.injected -= 1
        st.total_inject_wait -= wait
        st.max_inject_wait = prev_max

    # ------------------------------------------------------------------
    # HEARTBEAT: sample output-link utilisation (optional, §3.1.4).
    # ------------------------------------------------------------------
    def _heartbeat(self, event: Event) -> None:
        step: int = event.data["step"]
        links = self.links
        claimed = sum(
            1 for d in DIRECTIONS if self.exists[d] and links[d] == step
        )
        st = self.stats
        st.util_claimed += claimed
        st.util_samples += sum(self.exists)
        event.saved["hb"] = claimed
        self.send(step + 1 + HEARTBEAT_OFFSET, self.id, HEARTBEAT, {"step": step + 1})

    def _rc_heartbeat(self, event: Event) -> None:
        st = self.stats
        st.util_claimed -= event.saved["hb"]
        st.util_samples -= sum(self.exists)

    # ------------------------------------------------------------------
    # State-saving snapshots (cheaper than the default deepcopy).
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Any:
        return (list(self.links), self.head_gen_step, self.stats.copy())

    def restore_state(self, snapshot: Any) -> None:
        links, head, stats = snapshot
        self.links = list(links)
        self.head_gen_step = head
        self.stats = stats.copy()
