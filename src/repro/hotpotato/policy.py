"""Routing policies: the per-step link decision and priority transitions.

The policy layer is pure decision logic — given where a packet wants to go
and which output links are still free this step, pick a link and the
packet's next priority.  Keeping it separate from the router LP makes the
algorithm rules (§1.2.5) unit-testable without a simulator, and lets the
baseline algorithms (:mod:`repro.baselines`) plug into the same router.

The hot-potato rules implemented by :class:`BuschHotPotatoPolicy`:

* **Sleeping** — route to any good link (deflect if none).  Each time it is
  routed, upgrade to Active with probability 1/(24n).
* **Active** — route to any good link.  When deflected, upgrade to Excited
  with probability 1/(16n).
* **Excited** — route via the home-run path; success promotes to Running,
  deflection demotes back to Active (Excited lasts at most one step).
* **Running** — route via the home-run path; deflection (possible only
  while turning, per the theory) demotes to Active.

All probability draws go through the LP's reversible RNG stream, so the
Time Warp kernel can undo them.

Fault injection (:mod:`repro.faults`) never reaches this layer directly:
the router intersects the contention free-mask with its
:class:`~repro.faults.NodeFaults` link mask *before* calling the policy,
so policies only ever see links that are both uncontended and alive — and
are never called with an all-``False`` mask (the router drops the packet
and counts it first).  A fault-masked good direction shows up here simply
as "not free", which the deflection rules already handle; that is the
whole fault-tolerance story at this layer, and why the policies needed no
changes to support it.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.packet import Priority
from repro.net import DIRECTIONS, Direction, GridTopology
from repro.rng.lcg import INCREMENT, MASK64, MULTIPLIER, _INV_2_53
from repro.rng.streams import ReversibleStream

__all__ = [
    "RouteOutcome",
    "RoutingPolicy",
    "BuschHotPotatoPolicy",
    "first_free_good",
    "first_free",
]


class RouteOutcome(NamedTuple):
    """The routing decision for one packet at one router and step.

    A NamedTuple rather than a frozen dataclass: one is constructed per
    routed packet, and tuple construction skips the dataclass's
    ``object.__setattr__`` per field while staying immutable.

    Attributes
    ----------
    direction:
        Output link chosen (a free link always exists: a bufferless router
        never receives more packets per step than it has output links).
    new_priority:
        Packet priority for the next hop.
    deflected:
        The packet did not advance toward its destination this hop.
    upgraded / demoted:
        Priority transition flags.  ``demoted`` marks an Excited/Running
        packet knocked off its home-run path (the theory's notion of a
        home-run deflection), even when the replacement hop still makes
        progress over another good link.
    turning:
        The packet was at its home-run turn this step (only meaningful for
        Excited/Running packets).
    """

    direction: Direction
    new_priority: Priority
    deflected: bool
    upgraded: bool = False
    demoted: bool = False
    turning: bool = False


def first_free_good(
    topo: GridTopology, node: int, dest: int, free: tuple[bool, bool, bool, bool]
) -> Direction | None:
    """First free *good* link in the topology's deterministic order."""
    for d in topo.route_info(node, dest)[0]:
        if free[d]:
            return d
    return None


def first_free(
    free: tuple[bool, bool, bool, bool], avoid: Direction | None = None
) -> Direction | None:
    """First free link in compass order, optionally skipping one direction.

    ``avoid`` lets callers prefer not to bounce a packet straight back the
    way it came when another free link exists.
    """
    for d in DIRECTIONS:
        if free[d] and d != avoid:
            return d
    if avoid is not None and free[avoid]:
        return avoid
    return None


# Priority members hoisted out of the per-packet hot path (an enum member
# lookup costs a class-dict probe per route).
_SLEEPING = Priority.SLEEPING
_ACTIVE = Priority.ACTIVE
_EXCITED = Priority.EXCITED
_RUNNING = Priority.RUNNING


class RoutingPolicy:
    """Interface for per-packet routing decisions."""

    #: Name used in configs, stats and reports.
    name = "abstract"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        """Decide the output link and next priority for one packet.

        ``free[d]`` tells whether output link ``d`` is still unclaimed this
        step.  At least one entry is True (bufferless invariant).  RNG
        draws must go through ``rng`` so rollbacks can undo them.
        """
        raise NotImplementedError


class BuschHotPotatoPolicy(RoutingPolicy):
    """The SPAA 2001 four-priority hot-potato algorithm (see module doc)."""

    name = "busch"

    def route(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        rng: ReversibleStream,
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        if priority >= _EXCITED:
            return self._route_homerun(topo, node, dest, priority, free, cfg)
        # Sleeping/Active greedy rule, inlined: this branch fires once per
        # routed low-priority packet, the hot-potato hot path.  The
        # upgrade draws are ``ReversibleStream.bernoulli`` inlined (same
        # LCG step, same output map — bit-identical values and counts).
        d = None
        for g in topo.route_info(node, dest)[0]:
            if free[g]:
                d = g
                break
        deflected = d is None
        if deflected:
            d = first_free(free)
            assert d is not None, "bufferless invariant violated"
        if priority == _SLEEPING:
            # "When a packet in the Sleeping state is routed, it is given a
            # chance with the probability of 1/24n to upgrade" — on every
            # route, deflected or not.
            rng._state = state = (MULTIPLIER * rng._state + INCREMENT) & MASK64
            rng._count += 1
            if (state >> 11) * _INV_2_53 < cfg.sleeping_upgrade_p:
                return RouteOutcome(d, _ACTIVE, deflected, upgraded=True)
            return RouteOutcome(d, _SLEEPING, deflected)
        # Active: the upgrade chance applies only when deflected.
        if deflected:
            rng._state = state = (MULTIPLIER * rng._state + INCREMENT) & MASK64
            rng._count += 1
            if (state >> 11) * _INV_2_53 < cfg.active_upgrade_p:
                return RouteOutcome(d, _EXCITED, True, upgraded=True)
            return RouteOutcome(d, _ACTIVE, True)
        return RouteOutcome(d, _ACTIVE, False)

    def _route_homerun(
        self,
        topo: GridTopology,
        node: int,
        dest: int,
        priority: Priority,
        free: tuple[bool, bool, bool, bool],
        cfg: HotPotatoConfig,
    ) -> RouteOutcome:
        """Excited/Running: the one-bend path or demotion to Active."""
        good, want, turning, _ = topo.route_info(node, dest)
        assert want is not None, "home-run packet already at destination"
        if free[want]:
            # Excited promotes to Running on a successful home-run hop;
            # Running just keeps running.
            upgraded = priority == _EXCITED
            return RouteOutcome(
                want, _RUNNING, False, upgraded=upgraded, turning=turning
            )
        # Knocked off the home-run path: back to Active either way
        # (``demoted``).  The hop may still make progress over another good
        # link, in which case it is not a ``deflected`` hop in the
        # distance sense.
        for d in good:
            if free[d]:
                return RouteOutcome(
                    d, _ACTIVE, False, demoted=True, turning=turning
                )
        d = first_free(free)
        assert d is not None, "bufferless invariant violated"
        return RouteOutcome(
            d, _ACTIVE, True, demoted=True, turning=turning
        )
