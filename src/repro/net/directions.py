"""Compass directions on a 2-D grid network.

Every router in the N×N torus/mesh has four bidirectional links, one per
compass direction.  Directions double as output-link indices in router
state, so they are small contiguous integers.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Direction", "DIRECTIONS", "NO_DIRECTION"]


class Direction(IntEnum):
    """One of the four mesh/torus link directions.

    The integer values index per-router link arrays.  Row coordinates grow
    southward and column coordinates grow eastward, matching the LP-number
    layout in the paper (§3.1.3: "Row 1 contains LP 0..31" and an eastward
    send is ``lp + 1``).
    """

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3

    @property
    def delta(self) -> tuple[int, int]:
        """(row_delta, col_delta) of a single hop in this direction."""
        return _DELTAS[self]

    @property
    def opposite(self) -> "Direction":
        """The reverse direction (the link a packet from here arrives on)."""
        return Direction((self + 2) & 3)

    @property
    def is_horizontal(self) -> bool:
        """True for EAST/WEST — the row-traversal phase of a home-run path."""
        return self in (Direction.EAST, Direction.WEST)


_DELTAS = {
    Direction.NORTH: (-1, 0),
    Direction.EAST: (0, 1),
    Direction.SOUTH: (1, 0),
    Direction.WEST: (0, -1),
}

#: All four directions in index order; handy for iteration.
DIRECTIONS: tuple[Direction, ...] = (
    Direction.NORTH,
    Direction.EAST,
    Direction.SOUTH,
    Direction.WEST,
)

#: Sentinel for "no routing decision yet" (the paper's ``NO_DIRECTION``).
NO_DIRECTION: int = -1
