"""Network topology substrate: grid directions, torus and mesh geometry.

The :class:`~repro.net.torus.TorusTopology` and
:class:`~repro.net.mesh.MeshTopology` classes share a duck-typed protocol
(:class:`GridTopology`) consumed by the routing models: id/coordinate
arithmetic, neighbor lookup, distance, good links, home-run paths and the
turn predicate.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.net.directions import DIRECTIONS, NO_DIRECTION, Direction
from repro.net.mesh import MeshTopology
from repro.net.torus import TorusTopology

__all__ = [
    "DIRECTIONS",
    "Direction",
    "GridTopology",
    "MeshTopology",
    "NO_DIRECTION",
    "TOPOLOGIES",
    "TorusTopology",
]

#: Named topology registry: the single place scenario files, CLIs and
#: configs resolve a topology name to its class.  Future shapes register
#: here (and in HotPotatoConfig.TOPOLOGY_NAMES).
TOPOLOGIES: dict[str, type] = {
    "torus": TorusTopology,
    "mesh": MeshTopology,
}


@runtime_checkable
class GridTopology(Protocol):
    """Structural protocol implemented by torus and mesh topologies."""

    rows: int
    cols: int
    num_nodes: int
    wraps: bool

    def coords(self, node: int) -> tuple[int, int]:
        """(row, col) of a node id."""

    def node_id(self, row: int, col: int) -> int:
        """Node id at (row, col)."""

    def neighbor(self, node: int, direction: Direction) -> int | None:
        """Node one hop away, or None off a mesh edge."""

    def distance(self, src: int, dst: int) -> int:
        """Hop distance between two nodes."""

    def diameter(self) -> int:
        """Maximum distance between any two nodes."""

    def good_dirs(self, src: int, dst: int) -> tuple[Direction, ...]:
        """Directions whose hop strictly decreases distance to dst."""

    def homerun_dir(self, src: int, dst: int) -> Direction | None:
        """Next hop of the one-bend row-first path."""

    def is_turning(self, src: int, dst: int) -> bool:
        """True at the home-run path's row-to-column bend."""

    def route_info(
        self, src: int, dst: int
    ) -> tuple[tuple[Direction, ...], Direction | None, bool, int]:
        """Cached ``(good_dirs, homerun_dir, is_turning, distance)``."""
