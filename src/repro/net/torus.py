"""N×N (and R×C) torus topology with hot-potato routing geometry.

The simulation "emulates the topology by restricting where a router can
route a packet" (§3.1.3): routers are numbered row-major and neighbor ids
are computed arithmetically with wraparound, e.g. an eastward send from LP
``x`` goes to ``((x // C) * C) + ((x + 1) % C)``.  This module centralises
that arithmetic plus the routing geometry the algorithm needs:

* *good links* — directions that bring a packet closer to its destination,
* *home-run paths* — the one-bend row-then-column path used by Excited and
  Running packets, and
* the *turn* predicate — Running packets can only be deflected while turning
  from the row phase to the column phase.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.net.directions import DIRECTIONS, Direction

__all__ = ["TorusTopology"]


class TorusTopology:
    """A rows × cols torus of routers with four bidirectional links each.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; ``cols`` defaults to ``rows`` (the paper's N×N
        case).  Both must be at least 2 so every node has four distinct
        links... except that 2 is allowed even though opposite directions
        then reach the same neighbor, which the algorithm tolerates.
    failed_links:
        Optional iterable of ``(node, direction)`` pairs naming links
        that are permanently out of service (failures known at network
        boot; see :mod:`repro.faults`).  Each failure masks the link on
        *both* endpoints: ``neighbor`` returns ``None`` across it and
        good directions never point into it, so ``route_info`` plans
        around the failure.  ``distance`` stays geometric — the paper's
        potential-function arguments are about the healthy grid, and a
        faulted network no longer guarantees them.

    Notes
    -----
    Node ids are row-major: ``id = r * cols + c``.  Rows grow southward,
    columns grow eastward (see :class:`repro.net.directions.Direction`).
    On the torus the maximum distance between nodes is about ``N`` rather
    than ``2N`` for the mesh (§1.1), which is why the simulation uses it.
    """

    #: This topology wraps around; used by models to decide if ``neighbor``
    #: can ever return ``None``.
    wraps = True

    def __init__(
        self,
        rows: int,
        cols: int | None = None,
        *,
        failed_links=None,
    ) -> None:
        if cols is None:
            cols = rows
        if rows < 2 or cols < 2:
            raise TopologyError(
                f"torus dimensions must be >= 2, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.num_nodes = rows * cols
        self._route_cache: dict[int, tuple] = {}
        self._failed: frozenset[tuple[int, int]] = frozenset()
        if failed_links:
            self._failed = _normalize_failed(self, failed_links)

    @property
    def failed_links(self) -> frozenset[tuple[int, int]]:
        """Masked ``(node, direction)`` endpoint pairs (both ends listed)."""
        return self._failed

    # ------------------------------------------------------------------
    # Id / coordinate arithmetic.
    # ------------------------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """(row, col) of a node id."""
        self._check(node)
        return divmod(node, self.cols)

    def node_id(self, row: int, col: int) -> int:
        """Node id of (row, col); coordinates are taken modulo the grid."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def neighbor(self, node: int, direction: Direction) -> int | None:
        """The node one hop away, or ``None`` across a failed link.

        On a healthy torus the hop always exists (wraparound)."""
        self._check(node)
        if self._failed and (node, direction) in self._failed:
            return None
        r, c = divmod(node, self.cols)
        dr, dc = direction.delta
        return ((r + dr) % self.rows) * self.cols + (c + dc) % self.cols

    def neighbors(self, node: int) -> tuple[int, int, int, int]:
        """All four neighbor ids, indexed by :class:`Direction`."""
        return tuple(self.neighbor(node, d) for d in DIRECTIONS)  # type: ignore[return-value]

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node id {node} out of range for {self.rows}x{self.cols} torus"
            )

    # ------------------------------------------------------------------
    # Distance geometry.
    # ------------------------------------------------------------------
    def signed_row_delta(self, src_row: int, dst_row: int) -> int:
        """Minimal signed row displacement from src to dst on the ring.

        Positive means southward.  For even rings the antipodal tie
        (|delta| == rows/2) resolves to the positive (southward) direction,
        deterministically.
        """
        return _ring_delta(src_row, dst_row, self.rows)

    def signed_col_delta(self, src_col: int, dst_col: int) -> int:
        """Minimal signed column displacement; positive means eastward."""
        return _ring_delta(src_col, dst_col, self.cols)

    def distance(self, src: int, dst: int) -> int:
        """Torus (wraparound Manhattan) distance between two nodes."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        return abs(_ring_delta(sr, dr, self.rows)) + abs(
            _ring_delta(sc, dc, self.cols)
        )

    def diameter(self) -> int:
        """Maximum distance between any two nodes."""
        return self.rows // 2 + self.cols // 2

    # ------------------------------------------------------------------
    # Routing geometry.
    # ------------------------------------------------------------------
    def good_dirs(self, src: int, dst: int) -> tuple[Direction, ...]:
        """Directions whose single hop strictly decreases distance to dst.

        These are the paper's *good links* (§1.2.4).  The result is empty
        iff ``src == dst``; otherwise it has one or two entries (row and/or
        column progress).  Order is deterministic: horizontal progress
        first, matching the home-run (row-first) orientation.
        """
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        out: list[Direction] = []
        cd = _ring_delta(sc, dc, self.cols)
        if cd > 0:
            out.append(Direction.EAST)
            if 2 * cd == self.cols:
                # Antipodal column: both directions make progress; EAST is
                # the canonical pick but WEST is equally good.
                out.append(Direction.WEST)
        elif cd < 0:
            out.append(Direction.WEST)
        rd = _ring_delta(sr, dr, self.rows)
        if rd > 0:
            out.append(Direction.SOUTH)
            if 2 * rd == self.rows:
                out.append(Direction.NORTH)
        elif rd < 0:
            out.append(Direction.NORTH)
        if self._failed:
            out = [d for d in out if (src, d) not in self._failed]
        return tuple(out)

    def homerun_dir(self, src: int, dst: int) -> Direction | None:
        """The next hop of the *home-run* (one-bend, row-first) path.

        The home-run path moves within the row toward the destination
        column (east/west), then turns and follows the column (north/south)
        to the destination node (§1.2.4).  Returns ``None`` when
        ``src == dst``.
        """
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        cd = _ring_delta(sc, dc, self.cols)
        if cd > 0:
            return Direction.EAST
        if cd < 0:
            return Direction.WEST
        rd = _ring_delta(sr, dr, self.rows)
        if rd > 0:
            return Direction.SOUTH
        if rd < 0:
            return Direction.NORTH
        return None

    def is_turning(self, src: int, dst: int) -> bool:
        """True when a home-run packet at ``src`` is at its *turn*: it has

        reached the destination column but not yet the destination row.
        Running packets may only be deflected at this step (§1.2.5).
        """
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        return _ring_delta(sc, dc, self.cols) == 0 and sr != dr

    def route_info(
        self, src: int, dst: int
    ) -> tuple[tuple[Direction, ...], Direction | None, bool, int]:
        """Cached ``(good_dirs, homerun_dir, is_turning, distance)``.

        The routing geometry for a (src, dst) pair never changes, so one
        dict hit replaces four coordinate computations on the router's hot
        path.  The cache fills lazily; at most ``num_nodes**2`` entries.
        The miss path recomputes all four values from a single coordinate
        decomposition (the individual methods each redo it); results are
        identical to calling them separately, which the tests assert.
        """
        key = src * self.num_nodes + dst
        info = self._route_cache.get(key)
        if info is None:
            rows, cols = self.rows, self.cols
            sr, sc = divmod(src, cols)
            dr, dc = divmod(dst, cols)
            cd = _ring_delta(sc, dc, cols)
            rd = _ring_delta(sr, dr, rows)
            good: list[Direction] = []
            if cd > 0:
                good.append(Direction.EAST)
                if 2 * cd == cols:
                    good.append(Direction.WEST)
            elif cd < 0:
                good.append(Direction.WEST)
            if rd > 0:
                good.append(Direction.SOUTH)
                if 2 * rd == rows:
                    good.append(Direction.NORTH)
            elif rd < 0:
                good.append(Direction.NORTH)
            if self._failed:
                good = [d for d in good if (src, d) not in self._failed]
            if cd > 0:
                homerun: Direction | None = Direction.EAST
            elif cd < 0:
                homerun = Direction.WEST
            elif rd > 0:
                homerun = Direction.SOUTH
            elif rd < 0:
                homerun = Direction.NORTH
            else:
                homerun = None
            info = (tuple(good), homerun, cd == 0 and sr != dr, abs(cd) + abs(rd))
            self._route_cache[key] = info
        return info

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TorusTopology({self.rows}x{self.cols})"


def _normalize_failed(topo, failed_links) -> frozenset:
    """Normalise ``(node, direction)`` failures to both link endpoints.

    Shared by torus and mesh; called from ``__init__`` before the mask is
    installed, so ``topo.neighbor`` still sees the healthy grid.
    """
    failed: set[tuple[int, int]] = set()
    for node, direction in failed_links:
        try:
            d = Direction(direction)
        except ValueError:
            raise TopologyError(
                f"failed link ({node}, {direction!r}): direction must be 0..3"
            ) from None
        if not 0 <= node < topo.num_nodes:
            raise TopologyError(
                f"failed link names node {node}, out of range for {topo!r}"
            )
        peer = topo.neighbor(node, d)
        if peer is None:
            raise TopologyError(
                f"failed link ({node}, {d.name}) does not exist in {topo!r}"
            )
        failed.add((node, int(d)))
        failed.add((peer, int(d.opposite)))
    return frozenset(failed)


def _ring_delta(src: int, dst: int, size: int) -> int:
    """Minimal signed displacement from src to dst on a ring of ``size``.

    Result lies in ``(-size/2, size/2]``: antipodal ties resolve to the
    positive direction so the choice is deterministic.
    """
    d = (dst - src) % size
    return d if d <= size // 2 else d - size
