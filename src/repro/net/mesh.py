"""N×N rectangular mesh topology (no wraparound).

The theoretical analysis in Busch, Herlihy & Wattenhofer uses the plain
mesh "because it makes the problem more tractable" (§1.1); the simulation
uses the torus.  We provide both so the theoretical configuration can be
simulated too.  The API mirrors :class:`repro.net.torus.TorusTopology`
except that :meth:`neighbor` returns ``None`` off the edge and good/home-run
directions never point off the grid.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.net.directions import DIRECTIONS, Direction
from repro.net.torus import _normalize_failed

__all__ = ["MeshTopology"]


class MeshTopology:
    """A rows × cols mesh of routers; edge nodes have fewer usable links.

    ``failed_links`` marks boot-time-known permanent link failures, with
    the same both-endpoint masking semantics as
    :class:`~repro.net.torus.TorusTopology`.
    """

    #: Mesh edges do not wrap; ``neighbor`` may return ``None``.
    wraps = False

    def __init__(
        self,
        rows: int,
        cols: int | None = None,
        *,
        failed_links=None,
    ) -> None:
        if cols is None:
            cols = rows
        if rows < 2 or cols < 2:
            raise TopologyError(
                f"mesh dimensions must be >= 2, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.num_nodes = rows * cols
        self._route_cache: dict[int, tuple] = {}
        self._failed: frozenset[tuple[int, int]] = frozenset()
        if failed_links:
            self._failed = _normalize_failed(self, failed_links)

    @property
    def failed_links(self) -> frozenset[tuple[int, int]]:
        """Masked ``(node, direction)`` endpoint pairs (both ends listed)."""
        return self._failed

    # ------------------------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """(row, col) of a node id."""
        self._check(node)
        return divmod(node, self.cols)

    def node_id(self, row: int, col: int) -> int:
        """Node id of (row, col); raises if off-grid."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise TopologyError(f"({row}, {col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def neighbor(self, node: int, direction: Direction) -> int | None:
        """Neighbor one hop away, or ``None`` when the hop leaves the grid

        or crosses a failed link."""
        self._check(node)
        if self._failed and (node, direction) in self._failed:
            return None
        r, c = divmod(node, self.cols)
        dr, dc = direction.delta
        nr, nc = r + dr, c + dc
        if 0 <= nr < self.rows and 0 <= nc < self.cols:
            return nr * self.cols + nc
        return None

    def neighbors(self, node: int) -> tuple[int | None, int | None, int | None, int | None]:
        """All four neighbor slots, ``None`` where the grid ends."""
        return tuple(self.neighbor(node, d) for d in DIRECTIONS)  # type: ignore[return-value]

    def degree(self, node: int) -> int:
        """Number of real links at this node (2 at corners, 3 on edges)."""
        return sum(1 for d in DIRECTIONS if self.neighbor(node, d) is not None)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node id {node} out of range for {self.rows}x{self.cols} mesh"
            )

    # ------------------------------------------------------------------
    def signed_row_delta(self, src_row: int, dst_row: int) -> int:
        """Signed row displacement (no wrap, so just the difference)."""
        return dst_row - src_row

    def signed_col_delta(self, src_col: int, dst_col: int) -> int:
        """Signed column displacement."""
        return dst_col - src_col

    def distance(self, src: int, dst: int) -> int:
        """Manhattan distance."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        return abs(dr - sr) + abs(dc - sc)

    def diameter(self) -> int:
        """Maximum distance between any two nodes: 2(N-1) for N×N (§1.1)."""
        return (self.rows - 1) + (self.cols - 1)

    # ------------------------------------------------------------------
    def good_dirs(self, src: int, dst: int) -> tuple[Direction, ...]:
        """Directions that strictly decrease Manhattan distance to dst."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        out: list[Direction] = []
        if dc > sc:
            out.append(Direction.EAST)
        elif dc < sc:
            out.append(Direction.WEST)
        if dr > sr:
            out.append(Direction.SOUTH)
        elif dr < sr:
            out.append(Direction.NORTH)
        if self._failed:
            out = [d for d in out if (src, d) not in self._failed]
        return tuple(out)

    def homerun_dir(self, src: int, dst: int) -> Direction | None:
        """Next hop of the one-bend row-first path (see torus docstring)."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        if dc > sc:
            return Direction.EAST
        if dc < sc:
            return Direction.WEST
        if dr > sr:
            return Direction.SOUTH
        if dr < sr:
            return Direction.NORTH
        return None

    def is_turning(self, src: int, dst: int) -> bool:
        """True at the row→column bend of the home-run path."""
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        return sc == dc and sr != dr

    def route_info(
        self, src: int, dst: int
    ) -> tuple[tuple[Direction, ...], Direction | None, bool, int]:
        """Cached ``(good_dirs, homerun_dir, is_turning, distance)``

        (see :meth:`repro.net.torus.TorusTopology.route_info`).
        """
        key = src * self.num_nodes + dst
        info = self._route_cache.get(key)
        if info is None:
            info = (
                self.good_dirs(src, dst),
                self.homerun_dir(src, dst),
                self.is_turning(src, dst),
                self.distance(src, dst),
            )
            self._route_cache[key] = info
        return info

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshTopology({self.rows}x{self.cols})"
