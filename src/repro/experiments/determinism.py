"""Attachment 3: the parallel and sequential models produce identical

results.  "The sample output in Attachment 3 shows that the parallel and
sequential models produce identical results (under the same model
configuration).  As such, the parallel model is deterministic and therefore
repeatable." (§4.2.1)

We check a matrix of optimistic configurations (PE/KP/batch/mapping/
rollback-strategy/transport) against the sequential oracle, comparing the
complete model statistics including the per-router fingerprint.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.experiments.common import SweepParams, kp_count_for
from repro.experiments.report import Table
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

__all__ = ["run", "CONFIG_MATRIX"]

#: (n_pes, kp_request, batch, mapping, rollback, transport, cancellation).
CONFIG_MATRIX: tuple[tuple[int, int, int, str, str, str, str], ...] = (
    (1, 1, 16, "block", "reverse", "immediate", "aggressive"),
    (2, 8, 16, "block", "reverse", "immediate", "aggressive"),
    (4, 16, 8, "block", "reverse", "immediate", "aggressive"),
    (4, 64, 64, "block", "reverse", "immediate", "aggressive"),
    (4, 16, 16, "striped", "reverse", "immediate", "aggressive"),
    (4, 16, 16, "random", "reverse", "immediate", "aggressive"),
    (4, 16, 16, "block", "copy", "immediate", "aggressive"),
    (4, 16, 16, "block", "reverse", "mailbox", "aggressive"),
    (4, 16, 16, "block", "reverse", "immediate", "lazy"),
    (4, 16, 64, "random", "copy", "mailbox", "lazy"),
)


def run(params: SweepParams) -> Table:
    """Validate repeatability on the smallest sweep size."""
    n = params.sizes[0]
    cfg = HotPotatoConfig(n=n, duration=params.duration, injector_fraction=1.0)
    oracle = run_sequential(HotPotatoModel(cfg), cfg.duration, seed=params.seed)
    table = Table(
        title=f"Attachment 3 — parallel vs sequential results (N={n})",
        columns=[
            "PEs",
            "KPs",
            "batch",
            "mapping",
            "rollback",
            "transport",
            "cancel",
            "rolled back",
            "identical",
        ],
    )
    all_match = True
    for n_pes, kp_req, batch, mapping, rollback, transport, cancel in CONFIG_MATRIX:
        n_kps = kp_count_for(n, kp_req, n_pes) if mapping == "block" else kp_req
        ecfg = EngineConfig(
            end_time=cfg.duration,
            n_pes=n_pes,
            n_kps=n_kps,
            batch_size=batch,
            mapping=mapping,
            rollback=rollback,
            transport=transport,
            cancellation=cancel,
            seed=params.seed,
        )
        result = run_optimistic(HotPotatoModel(cfg), ecfg)
        match = result.model_stats == oracle.model_stats
        all_match &= match
        table.add_row(
            n_pes,
            n_kps,
            batch,
            mapping,
            rollback,
            transport,
            cancel,
            result.run.events_rolled_back,
            match,
        )
    table.notes.append(
        "identical = complete model statistics (including the per-router "
        "fingerprint) equal the sequential oracle's"
    )
    table.notes.append(f"ALL CONFIGURATIONS IDENTICAL: {'yes' if all_match else 'NO'}")
    return table
