"""ABL-LAZY: aggressive vs lazy cancellation.

Lazy cancellation is the classic Time Warp refinement: instead of chasing
every message a rolled-back event sent with an anti-message, keep the
messages and check — after re-execution — whether they were regenerated
identically.  When rollbacks don't change what events send (common when a
straggler merely reorders same-priority work), the receivers never notice
and whole secondary-rollback cascades vanish.

This ablation measures both arms on the identical hot-potato workload:
messages reused, events rolled back, and the cost-model event rate.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Compare cancellation modes at 4 PEs across the size sweep."""
    table = Table(
        title="ABL-LAZY — aggressive vs lazy cancellation (4 PEs)",
        columns=[
            "N",
            "cancellation",
            "committed",
            "rolled back",
            "messages cancelled",
            "messages reused",
            "event rate",
        ],
    )
    rolled: dict[int, dict[str, int]] = {}
    for n in params.sizes:
        n_kps = kp_count_for(n, 16, 4)
        for mode in ("aggressive", "lazy"):
            result = run_hotpotato_parallel(
                n,
                1.0,
                params.duration,
                params.seed,
                n_pes=4,
                n_kps=n_kps,
                batch_size=params.batch_size,
                window=params.window,
                cancellation=mode,
            )
            rs = result.run
            table.add_row(
                n,
                mode,
                rs.committed,
                rs.events_rolled_back,
                rs.cancelled_direct + rs.cancelled_via_rollback,
                rs.lazy_reused,
                rs.event_rate,
            )
            rolled.setdefault(n, {})[mode] = rs.events_rolled_back
    for n, modes in rolled.items():
        if modes.get("aggressive") and modes.get("lazy") is not None:
            saved = modes["aggressive"] - modes["lazy"]
            table.notes.append(
                f"N={n}: lazy cancellation avoids rolling back {saved} events "
                f"({100 * saved / modes['aggressive']:.0f}% of the aggressive total)"
                if saved >= 0
                else f"N={n}: lazy cancellation rolled back {-saved} MORE events"
            )
    return table
