"""Resilience sweep: hot-potato routing under injected faults.

The Busch–Herlihy–Wattenhofer algorithm needs no flow control because
packets never wait — they deflect.  The same property makes it naturally
fault-tolerant: a dead link is just one more direction a packet cannot
take this step, and the greedy/home-run machinery already knows what to
do with that.  This experiment quantifies the claim: sweep the fraction
of permanently failed links (or run one explicit
:class:`~repro.faults.FaultPlan`) and watch delivery degrade *gracefully*
— fewer packets arrive and they take longer, but the network never
livelocks and the run always terminates.

Each row also re-runs one configuration on the Time Warp engine and
checks the committed model statistics against the sequential oracle:
fault injection must not cost us the determinism contract.
"""

from __future__ import annotations

from repro.core.engine import run_sequential
from repro.experiments.common import SweepParams, kp_count_for
from repro.experiments.report import Table
from repro.faults import DEFAULT_FAULT_SEED, generate_plan, load_plan
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.simulation import HotPotatoSimulation
from repro.net import TorusTopology

__all__ = ["run"]


def _plan_for(params: SweepParams, n: int, rate: float):
    """The FaultPlan one sweep row runs under (None for rate 0)."""
    if params.fault_plan is not None:
        return load_plan(params.fault_plan)
    if rate <= 0.0:
        return None
    seed = params.fault_seed if params.fault_seed is not None else DEFAULT_FAULT_SEED
    # Permanent link failures (no heal_after): the hardest case — lost
    # capacity never comes back, so degradation is monotone in the rate.
    return generate_plan(
        TorusTopology(n),
        duration=params.duration,
        link_fail_rate=rate,
        seed=seed,
    )


def run(params: SweepParams) -> Table:
    """Sweep link-failure rates on the smallest size; check determinism."""
    n = params.sizes[0]
    cfg = HotPotatoConfig(n=n, duration=params.duration, injector_fraction=1.0)
    rates = (0.0,) if params.fault_plan is not None else params.fault_rates
    table = Table(
        title=f"Resilience — delivery under failed links (N={n}, "
        f"duration={params.duration:g})",
        columns=[
            "fail rate",
            "links down",
            "injected",
            "delivered",
            "delivery %",
            "avg time",
            "deflect %",
            "fault drops",
            "seq==opt",
        ],
    )
    links_total = 2 * n * n  # torus: every node owns its EAST and SOUTH link
    for rate in rates:
        plan = _plan_for(params, n, rate)
        seq = run_sequential(
            HotPotatoModel(cfg, fault_plan=plan), cfg.duration, seed=params.seed
        )
        ms = seq.model_stats
        # One optimistic run per row keeps the determinism check honest
        # at every fault level, not just the unfaulted baseline.
        sim = HotPotatoSimulation(cfg, seed=params.seed, fault_plan=plan)
        opt = sim.run_parallel(
            n_pes=min(4, max(params.pe_counts)),
            n_kps=kp_count_for(n, 16, min(4, max(params.pe_counts))),
            batch_size=params.batch_size,
        )
        injected = ms["injected"] + ms["initial_packets"]
        down = 0 if plan is None else sum(
            1 for ev in plan.events if ev.kind == "link_down"
        )
        table.add_row(
            rate,
            down,
            injected,
            ms["delivered"],
            100.0 * ms["delivered"] / injected if injected else 0.0,
            ms["avg_delivery_time"],
            100.0 * ms["deflection_rate"],
            ms.get("fault_dropped", 0),
            opt.model_stats == ms,
        )
    table.notes.append(
        f"{links_total} physical links; rate-generated plans fail links "
        "permanently (no healing), the worst case for capacity"
    )
    table.notes.append(
        "seq==opt compares complete model statistics (incl. per-router "
        "fingerprints) between the sequential oracle and Time Warp"
    )
    if params.fault_plan is not None:
        table.notes.append(f"explicit plan: {params.fault_plan}")
    return table
