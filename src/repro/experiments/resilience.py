"""Resilience sweep: hot-potato routing under injected faults.

The Busch–Herlihy–Wattenhofer algorithm needs no flow control because
packets never wait — they deflect.  The same property makes it naturally
fault-tolerant: a dead link is just one more direction a packet cannot
take this step, and the greedy/home-run machinery already knows what to
do with that.  This experiment quantifies the claim: sweep the fraction
of permanently failed links (or run one explicit
:class:`~repro.faults.FaultPlan`) and watch delivery degrade *gracefully*
— fewer packets arrive and they take longer, but the network never
livelocks and the run always terminates.

Each row also re-runs one configuration on the Time Warp engine and
checks the committed model statistics against the sequential oracle:
fault injection must not cost us the determinism contract.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
    run_hotpotato_sequential,
)
from repro.experiments.report import Table

__all__ = ["run"]


def _fault_spec(params: SweepParams, rate: float) -> dict | None:
    """The JSON fault spec one sweep row runs under (None for rate 0).

    Rate-generated specs describe permanent link failures (no
    heal_after): the hardest case — lost capacity never comes back, so
    degradation is monotone in the rate.  The spec (rather than a
    materialized FaultPlan) is what travels to a supervised child
    process; the workhorses expand it identically either way.
    """
    if params.fault_plan is not None:
        return {"plan": params.fault_plan}
    if rate <= 0.0:
        return None
    return {"link_rate": rate, "seed": params.fault_seed}


def _links_down(params: SweepParams, n: int, rate: float) -> int:
    """Count the scheduled link_down events for the row's label column."""
    from repro.experiments.pointworker import _materialize_fault_plan

    plan = _materialize_fault_plan(
        _fault_spec(params, rate), n, params.duration
    )
    if plan is None:
        return 0
    return sum(1 for ev in plan.events if ev.kind == "link_down")


def run(params: SweepParams) -> Table:
    """Sweep link-failure rates on the smallest size; check determinism."""
    n = params.sizes[0]
    rates = (0.0,) if params.fault_plan is not None else params.fault_rates
    table = Table(
        title=f"Resilience — delivery under failed links (N={n}, "
        f"duration={params.duration:g})",
        columns=[
            "fail rate",
            "links down",
            "injected",
            "delivered",
            "delivery %",
            "avg time",
            "deflect %",
            "fault drops",
            "seq==opt",
        ],
    )
    links_total = 2 * n * n  # torus: every node owns its EAST and SOUTH link
    for rate in rates:
        fspec = _fault_spec(params, rate)
        seq = run_hotpotato_sequential(
            n, 1.0, params.duration, params.seed, fault=fspec
        )
        ms = seq.model_stats
        # One optimistic run per row keeps the determinism check honest
        # at every fault level, not just the unfaulted baseline.
        n_pes = min(4, max(params.pe_counts))
        opt = run_hotpotato_parallel(
            n,
            1.0,
            params.duration,
            params.seed,
            n_pes=n_pes,
            n_kps=kp_count_for(n, 16, n_pes),
            batch_size=params.batch_size,
            fault=fspec,
        )
        injected = ms["injected"] + ms["initial_packets"]
        down = _links_down(params, n, rate)
        table.add_row(
            rate,
            down,
            injected,
            ms["delivered"],
            100.0 * ms["delivered"] / injected if injected else 0.0,
            ms["avg_delivery_time"],
            100.0 * ms["deflection_rate"],
            ms.get("fault_dropped", 0),
            opt.model_stats == ms,
        )
    table.notes.append(
        f"{links_total} physical links; rate-generated plans fail links "
        "permanently (no healing), the worst case for capacity"
    )
    table.notes.append(
        "seq==opt compares complete model statistics (incl. per-router "
        "fingerprints) between the sequential oracle and Time Warp"
    )
    if params.fault_plan is not None:
        table.notes.append(f"explicit plan: {params.fault_plan}")
    return table
