"""ABL-RC: reverse computation vs state saving.

ROSS's headline design claim (Carothers et al. [3, 4]) is that reverse
computation beats checkpoint-based (GTW-style) state saving because it
moves the cost off the forward path.  Both strategies are implemented in
this kernel; this ablation runs the identical hot-potato workload under
each and compares forward-path cost, rollback cost and the resulting event
rate.  Both must also produce results identical to the oracle — the
determinism tests enforce that separately.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Compare rollback strategies at 4 PEs across the size sweep."""
    table = Table(
        title="ABL-RC — reverse computation vs state saving (4 PEs)",
        columns=[
            "N",
            "strategy",
            "committed",
            "rolled back",
            "makespan (s)",
            "event rate",
        ],
    )
    pairs: dict[int, dict[str, float]] = {}
    for n in params.sizes:
        n_kps = kp_count_for(n, 16, 4)
        for strategy in ("reverse", "copy"):
            result = run_hotpotato_parallel(
                n,
                1.0,
                params.duration,
                params.seed,
                n_pes=4,
                n_kps=n_kps,
                batch_size=params.batch_size,
                window=params.window,
                rollback=strategy,
            )
            run_stats = result.run
            table.add_row(
                n,
                strategy,
                run_stats.committed,
                run_stats.events_rolled_back,
                run_stats.makespan_seconds,
                run_stats.event_rate,
            )
            pairs.setdefault(n, {})[strategy] = run_stats.event_rate
    for n, rates in pairs.items():
        if "reverse" in rates and "copy" in rates and rates["copy"] > 0:
            table.notes.append(
                f"N={n}: reverse computation is {rates['reverse'] / rates['copy']:.2f}x "
                f"the state-saving event rate"
            )
    return table
