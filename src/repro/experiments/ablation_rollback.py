"""ABL-RC: reverse computation vs state saving.

ROSS's headline design claim (Carothers et al. [3, 4]) is that reverse
computation beats checkpoint-based (GTW-style) state saving because it
moves the cost off the forward path.  Both strategies are implemented in
this kernel; this ablation runs identical workloads under each and
compares forward-path cost, rollback cost and the resulting event rate.
Both must also produce results identical to the oracle — the determinism
tests enforce that separately.

Two workloads bracket the snapshot cost spectrum:

``hotpotato``
    The router LP overrides ``snapshot_state`` with a hand-written cheap
    copy — the model-author fast path.
``phold``
    PHOLD uses the *base-class* ``snapshot_state``, whose flat-container
    fast path shallow-copies scalar-only state instead of deep-copying it
    (see :meth:`repro.core.lp.LogicalProcess.snapshot_state`).  The
    ``wall (s)`` column is what that fast path buys on the forward path.
"""

from __future__ import annotations

import time

from repro.core.config import EngineConfig
from repro.core.optimistic import run_optimistic
from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table
from repro.models.phold import PholdConfig, PholdModel

__all__ = ["run"]


def _run_phold(n: int, params: SweepParams, n_kps: int, strategy: str):
    """One PHOLD run on an n*n LP population at 4 PEs."""
    cfg = EngineConfig(
        end_time=params.duration,
        n_pes=4,
        n_kps=n_kps,
        batch_size=params.batch_size,
        seed=params.seed,
        rollback=strategy,
    )
    return run_optimistic(PholdModel(PholdConfig(n_lps=n * n)), cfg)


def run(params: SweepParams) -> Table:
    """Compare rollback strategies at 4 PEs across the size sweep."""
    table = Table(
        title="ABL-RC — reverse computation vs state saving (4 PEs)",
        columns=[
            "N",
            "workload",
            "strategy",
            "committed",
            "rolled back",
            "makespan (s)",
            "wall (s)",
            "event rate",
        ],
    )
    pairs: dict[tuple[int, str], dict[str, float]] = {}
    for n in params.sizes:
        n_kps = kp_count_for(n, 16, 4)
        for workload in ("hotpotato", "phold"):
            for strategy in ("reverse", "copy"):
                wall0 = time.perf_counter()
                if workload == "hotpotato":
                    result = run_hotpotato_parallel(
                        n,
                        1.0,
                        params.duration,
                        params.seed,
                        n_pes=4,
                        n_kps=n_kps,
                        batch_size=params.batch_size,
                        window=params.window,
                        rollback=strategy,
                    )
                else:
                    result = _run_phold(n, params, n_kps, strategy)
                wall = time.perf_counter() - wall0
                run_stats = result.run
                table.add_row(
                    n,
                    workload,
                    strategy,
                    run_stats.committed,
                    run_stats.events_rolled_back,
                    run_stats.makespan_seconds,
                    round(wall, 4),
                    run_stats.event_rate,
                )
                pairs.setdefault((n, workload), {})[strategy] = (
                    run_stats.event_rate
                )
    for (n, workload), rates in pairs.items():
        if "reverse" in rates and "copy" in rates and rates["copy"] > 0:
            table.notes.append(
                f"N={n} {workload}: reverse computation is "
                f"{rates['reverse'] / rates['copy']:.2f}x the state-saving "
                "event rate"
            )
    return table
