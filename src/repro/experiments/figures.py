"""Registry mapping experiment ids (DESIGN.md) to their runners."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablation_adaptive,
    ablation_lazy,
    ablation_mapping,
    ablation_rollback,
    ablation_sync,
    baselines_compare,
    determinism,
    fig3_delivery,
    fig4_injection,
    fig5_speedup,
    fig6_efficiency,
    fig7_kp_rollbacks,
    fig8_kp_eventrate,
    resilience,
    scenario_compare,
    static_analysis,
    topology_compare,
    warmup,
)
from repro.experiments.common import SweepParams
from repro.experiments.report import Table

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

#: Experiment id → (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[SweepParams], Table]]] = {
    "fig3": (
        "Figure 3: average delivery time vs N, four injection loads",
        fig3_delivery.run,
    ),
    "fig4": (
        "Figure 4: average wait-to-inject vs N, four injection loads",
        fig4_injection.run,
    ),
    "fig5": (
        "Figure 5: event rate vs N for 1/2/4 PEs",
        fig5_speedup.run,
    ),
    "fig6": (
        "Figure 6: efficiency (speed-up / #PE) vs N",
        fig6_efficiency.run,
    ),
    "fig7": (
        "Figures 7a-c: total events rolled back vs number of KPs",
        fig7_kp_rollbacks.run,
    ),
    "fig8": (
        "Figure 8: event rate vs number of KPs",
        fig8_kp_eventrate.run,
    ),
    "determinism": (
        "Attachment 3: parallel results identical to sequential",
        determinism.run,
    ),
    "abl-rc": (
        "Ablation: reverse computation vs state saving",
        ablation_rollback.run,
    ),
    "abl-map": (
        "Ablation: block vs striped vs random LP/KP/PE mapping",
        ablation_mapping.run,
    ),
    "abl-base": (
        "Baselines: hot-potato vs greedy/DOR/random and flow control",
        baselines_compare.run,
    ),
    "abl-lazy": (
        "Ablation: aggressive vs lazy cancellation",
        ablation_lazy.run,
    ),
    "abl-adapt": (
        "Ablation: fixed vs adaptive optimism (throttle)",
        ablation_adaptive.run,
    ),
    "abl-sync": (
        "Ablation: Time Warp vs conservative (YAWNS / null-message)",
        ablation_sync.run,
    ),
    "resilience": (
        "Resilience: delivery degradation under injected link/router faults",
        resilience.run,
    ),
    "scenarios": (
        "Scenarios: delivery, latency percentiles and deflections per "
        "--scenario file",
        scenario_compare.run,
    ),
    "static": (
        "Static (one-shot) analysis: drain a full network, Das et al. [2]",
        static_analysis.run,
    ),
    "topo": (
        "Topology: torus (simulated) vs mesh (theoretical analysis)",
        topology_compare.run,
    ),
    "warmup": (
        "Methodology: whole-run vs steady-state delivery averages",
        warmup.run,
    ),
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)


def run_experiment(exp_id: str, params: SweepParams) -> Table:
    """Run one experiment by id."""
    try:
        _, runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {experiment_ids()}"
        ) from None
    return runner(params)
