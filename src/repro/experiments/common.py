"""Shared plumbing for the figure-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.engine import run_sequential
from repro.core.optimistic import run_optimistic
from repro.core.result import RunResult
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

__all__ = [
    "SweepParams",
    "run_hotpotato_sequential",
    "run_hotpotato_parallel",
    "run_scenario_point",
    "kp_count_for",
    "set_telemetry_dir",
    "set_supervisor",
    "set_parallelism",
]

#: When set (see :func:`set_telemetry_dir`), every hot-potato run the
#: experiment workhorses execute records its GVT-interval metrics to one
#: JSONL file in this directory, named from the run parameters.
_TELEMETRY_DIR: Path | None = None


def set_telemetry_dir(directory: Path | str | None) -> None:
    """Enable (or, with ``None``, disable) per-run telemetry capture.

    Used by the experiments CLI's ``--telemetry-dir``; repeated runs with
    identical parameters overwrite each other's file (the runs are
    deterministic, so nothing is lost).
    """
    global _TELEMETRY_DIR
    _TELEMETRY_DIR = None if directory is None else Path(directory)
    if _TELEMETRY_DIR is not None:
        _TELEMETRY_DIR.mkdir(parents=True, exist_ok=True)


def _capture(tag: str, meta: dict):
    """Build a RunCapture for one tagged run, or None when disabled."""
    if _TELEMETRY_DIR is None:
        return None
    from repro.obs.capture import RunCapture

    return RunCapture(metrics_out=_TELEMETRY_DIR / f"{tag}.jsonl", meta=meta)


#: When set (see :func:`set_supervisor`), the workhorses below do not
#: simulate in this process: each run becomes a sweep-point spec handed
#: to the :class:`repro.experiments.supervisor.Supervisor`, which
#: executes it in a watchdogged child process with checkpoint/resume,
#: bounded retries and optimistic→conservative fallback.
_SUPERVISOR = None


def set_supervisor(supervisor) -> None:
    """Route every subsequent workhorse run through ``supervisor``
    (``None`` restores in-process execution)."""
    global _SUPERVISOR
    _SUPERVISOR = supervisor


#: When set (see :func:`set_parallelism`), every Time Warp run the
#: workhorses execute goes through process mode: ``(procs, gvt_interval)``.
_PARALLELISM: tuple[int, int] | None = None


def set_parallelism(procs: int | None, gvt_interval: int = 8) -> None:
    """Route subsequent :func:`run_hotpotato_parallel` calls through
    ``procs`` OS worker processes (``None`` restores in-process runs).

    Committed results are bit-identical either way, so every figure's
    numbers are unchanged — only the wall-clock profile moves.  Points
    whose PE count is not a multiple of ``procs`` fall back to the
    in-process engine (a PE cannot be split across workers), as do
    supervised (``--out-dir``) sweeps, whose points already run in their
    own checkpointed child processes.  ``gvt_interval`` replaces the
    engine default of 1 because in process mode every GVT is a
    cross-process stop-and-drain wave worth amortising.
    """
    global _PARALLELISM
    _PARALLELISM = None if procs is None else (procs, gvt_interval)


def _telemetry_path(tag: str) -> str | None:
    if _TELEMETRY_DIR is None:
        return None
    return str(_TELEMETRY_DIR / f"{tag}.jsonl")


def _supervised(spec: dict) -> RunResult:
    doc = _SUPERVISOR.run_point(spec)
    # The child strips the LPs (their fused handlers don't pickle);
    # every experiment consumes only the statistics.
    return RunResult(model_stats=doc["model_stats"], run=doc["run"], lps=[])


def _materialize_fault(fault, n: int, duration: float):
    if not fault:
        return None
    from repro.experiments.pointworker import _materialize_fault_plan

    return _materialize_fault_plan(fault, n, duration)

#: Injection loads used by Figs 3 and 4 ("% Injecting Routers").
DEFAULT_LOADS: tuple[float, ...] = (0.25, 0.50, 0.75, 1.00)


@dataclass(frozen=True)
class SweepParams:
    """Parameters shared by the experiment runners.

    The defaults are laptop-scale; the report sweeps N up to 256 and the
    CLI accepts the full range (``--sizes 8,16,...,256``) for anyone with
    the patience.
    """

    sizes: tuple[int, ...] = (8, 16)
    duration: float = 100.0
    loads: tuple[float, ...] = DEFAULT_LOADS
    pe_counts: tuple[int, ...] = (1, 2, 4)
    kp_counts: tuple[int, ...] = (4, 8, 16, 32, 64)
    batch_size: int = 16
    #: Virtual-time optimism window (steps) for the Time Warp sweeps; see
    #: EngineConfig.window.  Scales per-round optimism with network size.
    window: float = 2.0
    #: Independent seeds per data point for figs 3/4 (1 = the report's
    #: single-seed methodology; more adds Student-t confidence intervals).
    replications: int = 1
    seed: int = 0x5EED
    #: Link-failure fractions swept by the resilience experiment (0.0 is
    #: the unfaulted baseline row).
    fault_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20)
    #: Explicit FaultPlan JSON file; when set, the resilience experiment
    #: runs that single plan instead of sweeping ``fault_rates``.
    fault_plan: str | None = None
    #: Seed for rate-generated fault plans (None = repro.faults default).
    fault_seed: int | None = None
    #: Scenario JSON files (see docs/SCENARIOS.md) compared side by side
    #: by the ``scenarios`` experiment; each file fully describes its own
    #: topology, traffic, policy, engine defaults and faults.
    scenarios: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("at least one network size required")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if any(not 0.0 <= r <= 1.0 for r in self.fault_rates):
            raise ValueError("fault_rates must be fractions in [0, 1]")

    def seeds(self) -> tuple[int, ...]:
        """The independent seeds used for replicated data points."""
        return tuple(self.seed + i for i in range(self.replications))


def kp_count_for(n: int, requested: int, n_pes: int) -> int:
    """Largest usable KP count <= ``requested`` for an n×n grid.

    Block mapping needs the balanced factorisation of the KP count to tile
    the grid and the PE count to tile the KPs; powers of four (1, 4, 16,
    64) tile any even grid, so we round down within that family when the
    requested count does not fit.
    """
    from repro.core.mapping import balanced_tile_counts

    def fits(k: int) -> bool:
        if k < n_pes or k % n_pes or k > n * n:
            return False
        kr, kc = balanced_tile_counts(k)
        if n % kr or n % kc:
            return False
        pr, pc = balanced_tile_counts(n_pes)
        return kr % pr == 0 and kc % pc == 0

    k = requested
    while k >= n_pes:
        if fits(k):
            return k
        k -= 1
    raise ValueError(f"no usable KP count <= {requested} for n={n}, pes={n_pes}")


def run_hotpotato_sequential(
    n: int, load: float, duration: float, seed: int, *, fault=None
) -> RunResult:
    """One sequential hot-potato run (the Fig 3/4 workhorse).

    ``fault`` is an optional JSON-shaped fault spec (``{"plan": path}``
    or ``{"link_rate": r, "seed": s}``) so the run stays describable as
    a supervisor sweep point; inline runs materialize it to a FaultPlan.
    """
    tag = f"seq_n{n}_load{load:g}_d{duration:g}_s{seed}"
    if _SUPERVISOR is not None:
        return _supervised({
            "kind": "seq", "n": n, "load": load, "duration": duration,
            "seed": seed, "fault": fault, "telemetry": _telemetry_path(tag),
            "checkpoint_every": _SUPERVISOR.cfg.checkpoint_every,
        })
    cfg = HotPotatoConfig(n=n, duration=duration, injector_fraction=load)
    capture = _capture(
        tag,
        {"engine": "sequential", "n": n, "load": load, "duration": duration,
         "seed": seed},
    )
    result = run_sequential(
        HotPotatoModel(cfg, fault_plan=_materialize_fault(fault, n, duration)),
        duration,
        seed=seed,
        metrics=capture.metrics if capture is not None else None,
    )
    if capture is not None:
        capture.finalize(result)
    return result


def run_hotpotato_parallel(
    n: int,
    load: float,
    duration: float,
    seed: int,
    *,
    n_pes: int,
    n_kps: int,
    batch_size: int = 16,
    window: float | None = None,
    fault=None,
    **overrides,
) -> RunResult:
    """One Time Warp hot-potato run (the Fig 5-8 workhorse).

    When ``window`` is given, the batch size becomes a generous cap and
    the virtual-time window drives per-round optimism (ROSS-like).
    ``fault`` takes a JSON-shaped fault spec as in
    :func:`run_hotpotato_sequential`.
    """
    if window is not None:
        batch_size = max(batch_size, 1 << 20)
    tag = f"opt_n{n}_load{load:g}_d{duration:g}_pe{n_pes}_kp{n_kps}_s{seed}"
    if _SUPERVISOR is not None:
        return _supervised({
            "kind": "opt", "n": n, "load": load, "duration": duration,
            "seed": seed, "n_pes": n_pes, "n_kps": n_kps,
            "batch_size": batch_size, "window": window,
            "overrides": overrides or None, "fault": fault,
            "telemetry": _telemetry_path(tag),
            "checkpoint_every": _SUPERVISOR.cfg.checkpoint_every,
        })
    cfg = HotPotatoConfig(n=n, duration=duration, injector_fraction=load)
    if _PARALLELISM is not None and "parallelism" not in overrides:
        procs, gvt_interval = _PARALLELISM
        # A PE cannot be split across workers, so points whose PE count
        # doesn't tile over the processes stay in-process (results are
        # bit-identical either way).
        if n_pes % procs == 0:
            overrides["parallelism"] = "process"
            overrides["procs"] = procs
            overrides.setdefault("gvt_interval", gvt_interval)
    ecfg = EngineConfig(
        end_time=duration,
        n_pes=n_pes,
        n_kps=n_kps,
        batch_size=batch_size,
        window=window,
        seed=seed,
        **overrides,
    )
    plan = _materialize_fault(fault, n, duration)
    faults = None
    if plan is not None and plan.has_engine_faults:
        from repro.faults.injector import EngineFaults

        faults = EngineFaults(plan)
    capture = _capture(
        tag,
        {"engine": "optimistic", "n": n, "load": load, "duration": duration,
         "n_pes": n_pes, "n_kps": n_kps, "seed": seed},
    )
    result = run_optimistic(
        HotPotatoModel(cfg, fault_plan=plan),
        ecfg,
        metrics=capture.metrics if capture is not None else None,
        faults=faults,
    )
    if capture is not None:
        capture.finalize(result)
    return result


def run_scenario_point(
    path: str, *, kind: str = "seq", seed: int | None = None
) -> RunResult:
    """One declared-scenario run (the scenario-compare workhorse).

    ``kind`` is a supervisor point kind (``seq`` / ``opt`` / ``cons``);
    everything else — topology, traffic, policy, duration, faults and the
    parallel-engine defaults — comes from the scenario file itself, so the
    sweep point is fully described by ``(kind, scenario, seed)``.  Under a
    supervisor the spec carries the scenario's name, path *and* content
    hash; the pointworker re-hashes the file and refuses to run if it
    changed since the sweep was launched, so ``--resume`` is exact.

    Sequential runs keep a delivery log and add nearest-rank latency
    percentiles (``latency_p50`` / ``latency_p95`` / ``latency_p99``) to
    ``model_stats``.
    """
    from repro.scenarios import compile_scenario, load_scenario

    compiled = compile_scenario(load_scenario(path))
    if seed is None:
        seed = compiled.seed
    tag = f"scen_{compiled.name}_{kind}_s{seed}"
    scen_key = {
        "path": str(path),
        "name": compiled.name,
        "hash": compiled.scenario_hash(),
    }
    if _SUPERVISOR is not None:
        spec = {
            "kind": kind, "scenario": scen_key, "seed": seed,
            "telemetry": _telemetry_path(tag),
            "checkpoint_every": _SUPERVISOR.cfg.checkpoint_every,
        }
        if kind != "seq":
            spec.update({
                "n_pes": compiled.n_pes, "n_kps": compiled.n_kps,
                "batch_size": compiled.batch_size, "window": compiled.window,
            })
        return _supervised(spec)
    capture = _capture(
        tag,
        {"engine": kind, "scenario": compiled.name,
         "scenario_hash": scen_key["hash"], "seed": seed},
    )
    engine = {"seq": "sequential", "cons": "conservative",
              "opt": "optimistic"}[kind]
    model = compiled.build_model(delivery_log=(kind == "seq"))
    result = compiled.run(
        engine,
        seed=seed,
        model=model,
        metrics=capture.metrics if capture is not None else None,
    )
    if kind == "seq":
        from repro.experiments.pointworker import _delivery_percentiles

        result.model_stats.update(_delivery_percentiles(model.delivery_log))
    if capture is not None:
        capture.finalize(result)
    return result
