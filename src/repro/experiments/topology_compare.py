"""TOPO — torus vs mesh: the theory's network vs the simulation's.

"The network topology used in the theoretical algorithm analysis is the
more straightforward mesh topology ... The simulation uses the torus
network because it is a more practical implementation of essentially the
same topology.  It is more practical because the maximum distance between
any two nodes is N-1 rather than 2N-1 for the mesh" (§1.1).

This experiment runs the identical workload on both and quantifies that
choice: the torus should deliver in roughly half the time (its diameter is
about half) and deflect less at the mesh's starved corners.
"""

from __future__ import annotations

from repro.core.engine import run_sequential
from repro.experiments.common import SweepParams
from repro.experiments.report import Table
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Compare torus and mesh per sweep size at full load."""
    table = Table(
        title="TOPO — torus vs mesh (100% injectors)",
        columns=[
            "N",
            "topology",
            "diameter",
            "delivered",
            "avg delivery",
            "avg distance",
            "deflect %",
        ],
    )
    avg_by_topo: dict[tuple[int, str], float] = {}
    for n in params.sizes:
        for torus in (True, False):
            cfg = HotPotatoConfig(
                n=n,
                duration=params.duration,
                injector_fraction=1.0,
                torus=torus,
            )
            model = HotPotatoModel(cfg)
            ms = run_sequential(model, cfg.duration, seed=params.seed).model_stats
            name = "torus" if torus else "mesh"
            avg_by_topo[(n, name)] = ms["avg_delivery_time"]
            table.add_row(
                n,
                name,
                model.topo.diameter(),
                ms["delivered"],
                ms["avg_delivery_time"],
                ms["avg_distance"],
                100 * ms["deflection_rate"],
            )
    for n in params.sizes:
        torus_avg = avg_by_topo[(n, "torus")]
        mesh_avg = avg_by_topo[(n, "mesh")]
        if torus_avg > 0:
            table.notes.append(
                f"N={n}: mesh delivery takes {mesh_avg / torus_avg:.2f}x the "
                f"torus time (diameter ratio ≈ 2, §1.1)"
            )
    return table
