"""ABL-ADAPT: fixed vs adaptive optimism.

A fixed optimism budget wastes work whenever the workload's rollback
propensity varies — most visibly under a locality-hostile (random) LP
mapping.  The adaptive throttle (:mod:`repro.core.throttle`) scales the
budget with the measured rollback fraction.  This ablation compares the
two on the same workload and the same hostile mapping.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table

__all__ = ["run"]

#: Generous fixed budget the throttle gets to regulate.
BATCH_CEILING = 512


def run(params: SweepParams) -> Table:
    """Compare fixed vs adaptive optimism at 4 PEs on a random mapping."""
    table = Table(
        title="ABL-ADAPT — fixed vs adaptive optimism (4 PEs, random mapping)",
        columns=[
            "N",
            "optimism",
            "committed",
            "rolled back",
            "wasted %",
            "final factor",
            "event rate",
        ],
    )
    rolled: dict[int, dict[bool, int]] = {}
    for n in params.sizes:
        n_kps = kp_count_for(n, 16, 4)
        for adaptive in (False, True):
            result = run_hotpotato_parallel(
                n,
                1.0,
                params.duration,
                params.seed,
                n_pes=4,
                n_kps=n_kps,
                batch_size=BATCH_CEILING,
                mapping="random",
                adaptive=adaptive,
            )
            rs = result.run
            table.add_row(
                n,
                "adaptive" if adaptive else "fixed",
                rs.committed,
                rs.events_rolled_back,
                100.0 * (1.0 - rs.efficiency_ratio),
                rs.throttle_final_factor,
                rs.event_rate,
            )
            rolled.setdefault(n, {})[adaptive] = rs.events_rolled_back
    for n, modes in rolled.items():
        if modes.get(False):
            saved = modes[False] - modes.get(True, 0)
            table.notes.append(
                f"N={n}: the throttle avoids {saved} rolled-back events "
                f"({100 * saved / modes[False]:.0f}% of the fixed-budget waste)"
            )
    return table
