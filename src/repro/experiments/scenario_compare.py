"""SCEN: declared scenario files compared side by side.

Each ``--scenario FILE`` (see docs/SCENARIOS.md) fully describes its own
experiment — topology, traffic (Bernoulli or scripted adversary),
routing policy, engine defaults and faults — so unlike the figure
sweeps this table has no parameter grid: one row per file, produced by
the sequential oracle with a delivery log, plus a parallel-engine rerun
whose committed statistics must match bit for bit (the ``par=seq``
column; the determinism contract extends to adversarial workloads).

Latency percentiles are nearest-rank over per-packet delivery times
(deliver step minus inject step); the delivery fraction is against the
offered load (initial placement plus everything injected).
"""

from __future__ import annotations

from repro.experiments.common import SweepParams, run_scenario_point
from repro.experiments.report import Table
from repro.scenarios import Scenario, compile_scenario, load_scenario

__all__ = ["run"]


def _traffic_label(scenario: Scenario) -> str:
    traffic = scenario.traffic
    if traffic["model"] == "bernoulli":
        return f"bernoulli@{float(traffic.get('injector_fraction', 1.0)):g}"
    return f"{traffic['strategy']}@{float(traffic.get('rate', 1.0)):g}"


def run(params: SweepParams) -> Table:
    """One row per scenario file in ``params.scenarios``."""
    table = Table(
        title="SCEN — declared scenarios compared (sequential oracle)",
        columns=[
            "scenario",
            "N",
            "policy",
            "traffic",
            "injected",
            "delivered",
            "delivery %",
            "lat p50",
            "lat p95",
            "lat p99",
            "defl %",
            "par=seq",
        ],
    )
    if not params.scenarios:
        table.notes.append(
            "no scenario files given; pass --scenario FILE (repeatable), "
            "e.g. --scenario examples/scenarios/adversarial_hotspot.json"
        )
        return table
    for path in params.scenarios:
        compiled = compile_scenario(load_scenario(path))
        seq = run_scenario_point(path, kind="seq")
        par = run_scenario_point(path, kind="opt")
        ms = seq.model_stats
        offered = ms["injected"] + ms["initial_packets"]
        # The sequential stats additionally carry the latency percentiles;
        # strip them before the engine-agreement comparison.
        committed = {
            k: v for k, v in ms.items() if not k.startswith("latency_")
        }
        table.add_row(
            compiled.name,
            compiled.cfg.n,
            compiled.policy.name,
            _traffic_label(compiled.scenario),
            ms["injected"],
            ms["delivered"],
            round(100.0 * ms["delivered"] / offered, 2) if offered else 0.0,
            ms["latency_p50"],
            ms["latency_p95"],
            ms["latency_p99"],
            round(100.0 * ms["deflection_rate"], 2),
            par.model_stats == committed,
        )
        table.notes.append(
            f"{compiled.name}: hash {compiled.scenario_hash()} ({path})"
        )
    return table
