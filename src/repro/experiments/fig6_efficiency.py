"""Figure 6: efficiency (speed-up per processor) vs network size.

"The simulation for smaller networks is close to linear (1), but the
simulation of larger graphs drops to approximately 0.5." (§4.2.2)
"""

from __future__ import annotations

from repro.analysis.speedup import efficiency
from repro.experiments.common import SweepParams
from repro.experiments.fig5_speedup import collect_rates
from repro.experiments.report import Table

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Regenerate the Fig 6 series (efficiency = speed-up / #PE)."""
    rates = collect_rates(params)
    table = Table(
        title="Figure 6 — efficiency (speed-up / #PE) vs N",
        columns=["N", "LPs"] + [f"{p} PE" for p in params.pe_counts],
    )
    for n in params.sizes:
        seq_rate = rates[(n, 1)]
        table.add_row(
            n,
            n * n,
            *(efficiency(seq_rate, rates[(n, p)], p) for p in params.pe_counts),
        )
    table.notes.append("1.0 is linear speed-up; the 1-PE column is 1 by definition")
    return table
