"""ABL-MAP: LP→KP→PE mapping locality.

"If the LPs within a given KP are randomly assigned, then when a packet is
routed to an adjacent LP that LP is likely to be in another KP and quite
possibly another PE.  Therefore, it is beneficial to assign adjacent LPs
to the same KP and adjacent KPs to the same PE." (§3.2.3)

This ablation measures the claim directly: remote (cross-PE) messages,
stragglers, rolled-back events and the event rate under the block, striped
and random mappings on an identical workload.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table

__all__ = ["run"]

MAPPINGS = ("block", "striped", "random")


def run(params: SweepParams) -> Table:
    """Compare mapping strategies at 4 PEs across the size sweep."""
    table = Table(
        title="ABL-MAP — LP/KP/PE mapping locality (4 PEs)",
        columns=[
            "N",
            "mapping",
            "remote sends",
            "remote %",
            "stragglers",
            "rolled back",
            "event rate",
        ],
    )
    for n in params.sizes:
        n_kps = kp_count_for(n, 16, 4)
        remote_by_mapping: dict[str, int] = {}
        for mapping in MAPPINGS:
            result = run_hotpotato_parallel(
                n,
                1.0,
                params.duration,
                params.seed,
                n_pes=4,
                n_kps=n_kps,
                batch_size=params.batch_size,
                window=params.window,
                mapping=mapping,
            )
            rs = result.run
            sends = rs.local_sends + rs.remote_sends
            table.add_row(
                n,
                mapping,
                rs.remote_sends,
                100.0 * rs.remote_sends / sends if sends else 0.0,
                rs.stragglers,
                rs.events_rolled_back,
                rs.event_rate,
            )
            remote_by_mapping[mapping] = rs.remote_sends
        if remote_by_mapping.get("block", 0) and remote_by_mapping.get("random", 0):
            table.notes.append(
                f"N={n}: random mapping sends "
                f"{remote_by_mapping['random'] / remote_by_mapping['block']:.1f}x "
                f"more cross-PE messages than block mapping"
            )
    return table
