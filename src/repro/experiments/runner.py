"""Command-line interface: regenerate any figure of the report.

Examples
--------
Run everything at laptop scale::

    python -m repro.experiments all

One figure, bigger sweep, CSV output::

    python -m repro.experiments fig3 --sizes 8,16,24,32 --duration 200 \
        --csv-dir results/

Crash-tolerant sweep (each point in a supervised, checkpointed child
process; see docs/CHECKPOINT.md), then pick it up after a crash or ^C::

    python -m repro.experiments all --out-dir sweep/
    python -m repro.experiments --resume sweep/
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time

from repro.experiments.common import (
    SweepParams,
    set_parallelism,
    set_supervisor,
    set_telemetry_dir,
)
from repro.experiments.figures import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["main", "build_parser"]


def _int_tuple(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")


def _float_tuple(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated float list: {text!r}")


def build_parser() -> argparse.ArgumentParser:
    """Build the experiment CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the report's figures from the reproduction.",
        epilog="experiments: "
        + "; ".join(f"{k} — {desc}" for k, (desc, _) in EXPERIMENTS.items()),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see below) or 'all'; may be omitted with "
        "--resume, which then replays the ids recorded in the manifest",
    )
    parser.add_argument(
        "--sizes",
        type=_int_tuple,
        default=(8, 16),
        help="network dimensions N to sweep (default: 8,16; the report "
        "goes to 256 — budget accordingly)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=100.0,
        help="simulated duration in time steps (default: 100)",
    )
    parser.add_argument(
        "--loads",
        type=_float_tuple,
        default=(0.25, 0.50, 0.75, 1.00),
        help="injector fractions for figs 3/4 (default: 0.25,0.5,0.75,1.0)",
    )
    parser.add_argument(
        "--pes",
        type=_int_tuple,
        default=(1, 2, 4),
        help="PE counts for figs 5/6 (default: 1,2,4)",
    )
    parser.add_argument(
        "--kps",
        type=_int_tuple,
        default=(4, 8, 16, 32, 64),
        help="KP counts for figs 7/8 (default: 4,8,16,32,64)",
    )
    parser.add_argument("--batch", type=int, default=16, help="optimism batch size")
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        metavar="P",
        help="run each Time Warp point over P OS processes (committed "
        "results are bit-identical to in-process runs; points whose PE "
        "count P doesn't divide, and supervised --out-dir sweeps, stay "
        "in-process)",
    )
    parser.add_argument(
        "--gvt-interval",
        type=int,
        default=8,
        metavar="N",
        help="GVT cadence in rounds for --procs points (default: 8; each "
        "GVT is a cross-process stop-and-drain wave)",
    )
    parser.add_argument("--seed", type=int, default=0x5EED, help="global seed")
    parser.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeds per figs-3/4 data point (adds 95%% CIs)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render each table's numeric series as an ASCII chart",
    )
    parser.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        default=None,
        help="also write each table as CSV into this directory",
    )
    parser.add_argument(
        "--telemetry-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="record per-run GVT-interval metrics to DIR/<run>.jsonl "
        "(inspect with python -m repro.obs)",
    )
    parser.add_argument(
        "--fault-rates",
        type=_float_tuple,
        default=(0.0, 0.05, 0.10, 0.20),
        help="link-failure fractions for the resilience sweep "
        "(default: 0,0.05,0.1,0.2)",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        help="run the resilience experiment against this FaultPlan JSON "
        "instead of sweeping --fault-rates",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for rate-generated fault plans (default: repro.faults default)",
    )
    parser.add_argument(
        "--deadline-seconds",
        type=float,
        default=None,
        metavar="SEC",
        help="wall-clock budget for the whole invocation; on expiry the "
        "sweep is interrupted exactly like Ctrl-C (supervised children "
        "get SIGINT and write a final snapshot) and the exit code is "
        "124 instead of 130",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="FILE",
        help="scenario JSON for the 'scenarios' experiment (repeatable); "
        "each file declares its own topology/traffic/policy/faults "
        "(see docs/SCENARIOS.md)",
    )
    sup = parser.add_argument_group(
        "supervised execution",
        "run every sweep point in a checkpointed child process with a "
        "GVT-progress watchdog, bounded retries and a journaled manifest "
        "(see docs/CHECKPOINT.md)",
    )
    sup.add_argument(
        "--out-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="supervise the sweep; manifest, snapshots and per-point "
        "results go under DIR",
    )
    sup.add_argument(
        "--resume",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="resume a supervised sweep: completed points are served from "
        "DIR, in-flight ones restore from their latest checkpoint "
        "(implies --out-dir DIR)",
    )
    sup.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=60.0,
        metavar="SEC",
        help="SIGKILL a point whose GVT heartbeat stalls this long "
        "(default: 60)",
    )
    sup.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per point before giving up or falling back "
        "(default: 3)",
    )
    sup.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SEC",
        help="first-retry delay; doubles per further retry (default: 0.5)",
    )
    sup.add_argument(
        "--point-checkpoint-every",
        type=int,
        default=4,
        metavar="N",
        help="snapshot cadence inside each child, in GVT/scheduler "
        "boundaries (default: 4)",
    )
    sup.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail a wedged optimistic point outright instead of "
        "degrading it to the conservative engine",
    )
    return parser


def _params_from_args(args) -> SweepParams:
    return SweepParams(
        sizes=args.sizes,
        duration=args.duration,
        loads=args.loads,
        pe_counts=args.pes,
        kp_counts=args.kps,
        batch_size=args.batch,
        replications=args.replications,
        seed=args.seed,
        fault_rates=args.fault_rates,
        fault_plan=args.fault_plan,
        fault_seed=args.fault_seed,
        scenarios=tuple(args.scenario or ()),
    )


def _params_from_meta(doc: dict) -> SweepParams:
    fields = {
        k: tuple(v) if isinstance(v, list) else v
        for k, v in doc["params"].items()
    }
    return SweepParams(**fields)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.experiments.supervisor import (
        PointFailure,
        Supervisor,
        SupervisorConfig,
    )

    out_dir = args.resume if args.resume is not None else args.out_dir
    resuming = args.resume is not None
    supervisor = None
    if out_dir is not None:
        supervisor = Supervisor(
            SupervisorConfig(
                out_dir=out_dir,
                heartbeat_timeout=args.heartbeat_timeout,
                max_retries=args.max_retries,
                backoff_base=args.backoff_base,
                fallback=not args.no_fallback,
                checkpoint_every=args.point_checkpoint_every,
                resume=resuming,
            )
        )

    if resuming:
        # Before serving *anything* from disk, re-verify that every
        # scenario / fault-plan file journaled in the manifest still
        # hashes to what the sweep was launched against.
        from repro.errors import ResumeIntegrityError

        try:
            n_verified = supervisor.verify_resume_integrity()
        except ResumeIntegrityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            supervisor.close()
            return 2
        if n_verified:
            print(
                f"resume integrity: re-verified {n_verified} input "
                f"file(s) against {supervisor.manifest_path}"
            )

    if resuming and not args.experiments:
        # Bare `--resume DIR`: replay the sweep exactly as first launched.
        meta = supervisor.read_meta()
        if meta is None:
            print(
                f"error: no sweep recorded in {out_dir}/manifest.jsonl; "
                "name the experiments explicitly",
                file=sys.stderr,
            )
            return 2
        ids = meta["experiments"]
        params = _params_from_meta(meta)
    elif not args.experiments:
        print("error: no experiments named (see --help)", file=sys.stderr)
        return 2
    else:
        ids = experiment_ids() if "all" in args.experiments else args.experiments
        params = _params_from_args(args)
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {experiment_ids()}")
        return 2
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
    set_telemetry_dir(args.telemetry_dir)
    if args.procs is not None and args.procs < 1:
        print("error: --procs must be >= 1", file=sys.stderr)
        return 2
    set_parallelism(args.procs, args.gvt_interval)
    if supervisor is not None:
        supervisor.journal_meta(
            experiments=list(ids), params=dataclasses.asdict(params)
        )
    set_supervisor(supervisor)
    from repro.ckpt import wall_deadline

    try:
        with wall_deadline(args.deadline_seconds, None) as deadline_expired:
            for exp_id in ids:
                start = time.perf_counter()
                table = run_experiment(exp_id, params)
                elapsed = time.perf_counter() - start
                print(table.to_text())
                if args.plot:
                    chart = chart_from_table(table)
                    if chart:
                        print()
                        print(chart)
                print(f"[{exp_id} regenerated in {elapsed:.1f}s]\n")
                if args.csv_dir is not None:
                    out = args.csv_dir / f"{exp_id}.csv"
                    out.write_text(table.to_csv())
                    print(f"wrote {out}")
    except KeyboardInterrupt:
        hint = (
            f"; pick the sweep back up with --resume {out_dir}"
            if supervisor is not None
            else ""
        )
        if deadline_expired():
            print(
                f"\ndeadline of {args.deadline_seconds:g}s reached{hint}",
                file=sys.stderr,
            )
            return 124
        print(f"\ninterrupted{hint}", file=sys.stderr)
        return 130
    except PointFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        set_supervisor(None)
        set_parallelism(None)
        if supervisor is not None:
            supervisor.close()
    return 0


def chart_from_table(table) -> str | None:
    """Render a table's numeric series against its first column, if any.

    Returns ``None`` for tables that don't have a numeric x-axis plus at
    least one numeric series over two or more rows (e.g. the determinism
    matrix), so callers can skip plotting gracefully.
    """
    from repro.analysis.asciichart import plot

    if len(table.rows) < 2:
        return None
    xs = [row[0] for row in table.rows]
    if not all(isinstance(x, (int, float)) and not isinstance(x, bool) for x in xs):
        return None
    series = {}
    for idx, name in enumerate(table.columns):
        if idx == 0:
            continue
        pts = []
        for row in table.rows:
            v = row[idx]
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                break
            pts.append((float(row[0]), float(v)))
        else:
            if len({x for x, _ in pts}) >= 2:
                series[str(name)] = pts
    if not series:
        return None
    return plot(series, title=table.title)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
