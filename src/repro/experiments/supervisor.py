"""Crash-tolerant sweep execution: child processes, watchdog, journal.

A long parameter sweep dies in practice for boring reasons — one point
wedges, the machine reboots, someone hits Ctrl-C at hour three.  The
:class:`Supervisor` makes the sweep itself restartable by running every
point through ``python -m repro.experiments.pointworker`` in a child
process and journaling its lifecycle:

* **Heartbeat watchdog** — the child's checkpointer touches a heartbeat
  file at every GVT / scheduler boundary.  A stale mtime means GVT has
  stopped advancing (deadlock, livelock, swap death); the parent
  SIGKILLs the child rather than hanging the sweep.
* **Bounded retry with backoff** — a failed or stalled attempt is
  retried up to ``max_retries`` times, sleeping
  ``backoff_base * 2**(attempt-1)`` seconds between attempts.  Each
  retry resumes from the point's latest snapshot, so work is not lost.
* **Graceful degradation** — when an *optimistic* point exhausts its
  retries the supervisor falls back to the conservative engine for that
  point (committed results are engine-independent, so the sweep's
  science is unchanged) and records the substitution in the manifest.
* **Journaled manifest** — ``manifest.jsonl`` in the output directory
  is append-only, one JSON object per lifecycle transition
  (``started`` / ``retry`` / ``fallback`` / ``done`` / ``failed``).
  ``python -m repro.experiments ... --resume DIR`` replays it: points
  journaled ``done`` are served from their pickled results without
  re-running; in-flight points restore from their latest checkpoint.
* **Resume integrity** — ``started`` records journal the content hash
  of any fault-plan file the spec references (scenario specs carry
  their own hash).  :meth:`Supervisor.verify_resume_integrity` re-hashes
  every such file for *every* journaled point — including points whose
  results would be served from disk — and refuses the resume, naming
  the changed file, rather than silently mixing two experiments.

Retry/backoff/fallback decisions are delegated to
:class:`repro.health.RecoveryPolicy`, the same policy object the
liveness watchdog's degradation ladder uses, so "how patient are we
with a sick run" is configured once and means the same thing in-process
and across child processes.

Points are identified by the SHA-256 of their canonical spec JSON, so
the same (experiment, parameters) pair maps to the same on-disk state
across invocations regardless of sweep order.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ResumeIntegrityError
from repro.health import RecoveryPolicy

__all__ = ["Supervisor", "SupervisorConfig", "PointFailure", "point_id"]

#: Spec ``kind`` values <-> the engine names RecoveryPolicy's chain uses.
_CHAIN_KIND = {"seq": "sequential", "opt": "optimistic", "cons": "conservative"}
_SPEC_KIND = {v: k for k, v in _CHAIN_KIND.items()}


class PointFailure(RuntimeError):
    """A sweep point failed permanently (retries and fallback exhausted)."""


def point_id(spec: dict) -> str:
    """Stable identity of a sweep point: hash of its canonical spec JSON."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for :class:`Supervisor`; defaults suit interactive sweeps."""

    out_dir: Path
    #: Seconds without a heartbeat touch before the child is presumed
    #: wedged and SIGKILLed.
    heartbeat_timeout: float = 60.0
    #: Attempts per engine before giving up (or falling back).
    max_retries: int = 3
    #: First retry sleeps this long; each further retry doubles it.
    backoff_base: float = 0.5
    #: Substitute the conservative engine when an optimistic point
    #: exhausts its retries.
    fallback: bool = True
    #: ``checkpoint_every`` handed to every child.
    checkpoint_every: int = 4
    #: Serve results journaled ``done`` from disk instead of re-running.
    resume: bool = False
    #: Child poll cadence, seconds.
    poll_interval: float = 0.2


class Supervisor:
    """Run sweep points in supervised child processes (see module doc)."""

    def __init__(self, cfg: SupervisorConfig) -> None:
        self.cfg = cfg
        self.out_dir = Path(cfg.out_dir)
        self.points_dir = self.out_dir / "points"
        self.points_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.out_dir / "manifest.jsonl"
        #: Shared retry/backoff/fallback policy (see repro.health).
        self.policy = RecoveryPolicy(
            max_restores=cfg.max_retries,
            backoff_base=cfg.backoff_base,
            fallback=cfg.fallback,
        )
        #: point id -> final status, replayed from the manifest.
        self._status: dict[str, str] = {}
        if cfg.resume and self.manifest_path.exists():
            self._replay_manifest()
        self._manifest = self.manifest_path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # manifest journal
    # ------------------------------------------------------------------
    def _replay_manifest(self) -> None:
        with self.manifest_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # torn tail from a crash mid-append
                pid = doc.get("point")
                if pid:
                    self._status[pid] = doc.get("status", "")

    def _journal(self, **doc: Any) -> None:
        self._manifest.write(json.dumps(doc, sort_keys=True) + "\n")
        self._manifest.flush()
        os.fsync(self._manifest.fileno())
        if "point" in doc and "status" in doc:
            self._status[doc["point"]] = doc["status"]

    def journal_meta(self, **doc: Any) -> None:
        """Append a non-point record (e.g. the sweep's own parameters)."""
        self._journal(status="meta", **doc)

    def read_meta(self) -> dict | None:
        """Return the latest ``meta`` record from the manifest, if any."""
        if not self.manifest_path.exists():
            return None
        found = None
        with self.manifest_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if doc.get("status") == "meta":
                    found = doc
        return found

    def close(self) -> None:
        """Close the manifest journal (the supervisor is done)."""
        self._manifest.close()

    # ------------------------------------------------------------------
    # resume integrity
    # ------------------------------------------------------------------
    @staticmethod
    def _spec_plan_hash(spec: dict) -> str | None:
        """SHA-256 of the fault-plan file a spec references, if any."""
        fault = spec.get("fault")
        if not isinstance(fault, dict) or "plan" not in fault:
            return None
        try:
            return hashlib.sha256(Path(fault["plan"]).read_bytes()).hexdigest()
        except OSError:
            return None  # the child will fail loudly when it loads the plan

    def verify_resume_integrity(self) -> int:
        """Re-hash every input file the manifest references; refuse drift.

        Walks *every* journaled record carrying a spec — including
        points already ``done``, whose results would otherwise be served
        from disk without ever touching their inputs again — and
        recomputes each referenced scenario's content hash and each
        fault-plan file's SHA-256 against the values journaled at launch
        time.  Raises :class:`~repro.errors.ResumeIntegrityError` naming
        the first file that changed (or vanished); returns the number of
        distinct files verified.
        """
        if not self.manifest_path.exists():
            return 0
        #: (label, path) -> hash journaled at launch; latest record wins.
        expected: dict[tuple[str, str], str] = {}
        with self.manifest_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # torn tail from a crash mid-append
                spec = doc.get("spec")
                if not isinstance(spec, dict):
                    continue
                scen = spec.get("scenario")
                if isinstance(scen, dict) and scen.get("path") and scen.get("hash"):
                    expected[("scenario", scen["path"])] = scen["hash"]
                fault = spec.get("fault")
                want = doc.get("plan_hash")
                if isinstance(fault, dict) and fault.get("plan") and want:
                    expected[("fault plan", fault["plan"])] = want
        for (label, path), want in sorted(expected.items()):
            if label == "scenario":
                from repro.scenarios import compile_scenario, load_scenario

                try:
                    got = compile_scenario(load_scenario(path)).scenario_hash()
                except ResumeIntegrityError:
                    raise
                except Exception as exc:
                    raise ResumeIntegrityError(
                        f"scenario {path!r} is journaled in the sweep "
                        f"manifest but can no longer be loaded ({exc}); "
                        "refusing to resume"
                    ) from exc
            else:
                try:
                    got = hashlib.sha256(Path(path).read_bytes()).hexdigest()
                except OSError as exc:
                    raise ResumeIntegrityError(
                        f"fault plan {path!r} is journaled in the sweep "
                        f"manifest but can no longer be read ({exc}); "
                        "refusing to resume"
                    ) from exc
            if got != want:
                raise ResumeIntegrityError(
                    f"{label} {path!r} hashes to {got}, but the sweep "
                    f"manifest recorded {want}; the file changed since the "
                    "sweep was launched — refusing to resume a different "
                    "experiment"
                )
        return len(expected)

    # ------------------------------------------------------------------
    # point execution
    # ------------------------------------------------------------------
    def run_point(self, spec: dict) -> dict:
        """Execute one point to completion; returns ``{"model_stats", "run"}``.

        Serves the cached result when resuming and the point is already
        ``done``; otherwise runs (or resumes) it under the watchdog.
        Raises :class:`PointFailure` when every attempt — including the
        conservative fallback, if eligible — has been exhausted.
        """
        pid = point_id(spec)
        pdir = self.points_dir / pid
        result_path = pdir / "result.pkl"
        if self.cfg.resume and self._status.get(pid) == "done" and result_path.exists():
            with result_path.open("rb") as fh:
                return pickle.load(fh)
        pdir.mkdir(parents=True, exist_ok=True)

        result = self._attempts(spec, pid, pdir, engine=spec["kind"])
        if result is not None:
            return result

        # The fallback target comes from the shared degradation chain
        # (optimistic -> conservative); sweeps stop there rather than
        # degrading all the way to sequential, because a conservative
        # run that *also* wedges points at the workload, not the engine.
        fb_kind = (
            self.policy.next_kind(_CHAIN_KIND.get(spec["kind"], ""))
            if spec["kind"] == "opt"
            else None
        )
        if fb_kind is not None:
            fb_engine = _SPEC_KIND[fb_kind]
            fb_spec = self._conservative_twin(spec)
            self._journal(
                point=pid,
                status="fallback",
                engine=fb_engine,
                spec=fb_spec,
                reason=f"optimistic attempts exhausted ({self.cfg.max_retries})",
            )
            result = self._attempts(fb_spec, pid, pdir, engine=fb_engine)
            if result is not None:
                return result

        self._journal(point=pid, status="failed", spec=spec)
        raise PointFailure(
            f"point {pid} failed after {self.cfg.max_retries} attempt(s)"
            + (" plus conservative fallback" if fb_kind is not None else "")
        )

    @staticmethod
    def _conservative_twin(spec: dict) -> dict:
        """The conservative-engine spec computing the same point."""
        keep = ("n", "load", "duration", "seed", "n_pes", "fault",
                "scenario", "telemetry", "checkpoint_every")
        twin = {k: spec[k] for k in keep if k in spec}
        twin["kind"] = "cons"
        return twin

    def _attempts(
        self, spec: dict, pid: str, pdir: Path, *, engine: str
    ) -> dict | None:
        """Try ``spec`` up to ``max_retries`` times; None when exhausted."""
        cfg = self.cfg
        result_path = pdir / "result.pkl"
        # Snapshot markers embed the spec, so the optimistic attempts and
        # a conservative fallback must not share a checkpoint directory.
        ckpt_dir = pdir / f"ckpt_{engine}"
        spec_path = pdir / f"spec_{engine}.json"
        spec_path.write_text(json.dumps(spec, sort_keys=True, indent=2) + "\n")
        heartbeat = pdir / "heartbeat"

        extras = {}
        plan_hash = self._spec_plan_hash(spec)
        if plan_hash is not None:
            extras["plan_hash"] = plan_hash
        self._journal(point=pid, status="started", engine=engine, spec=spec,
                      **extras)
        for attempt in range(1, cfg.max_retries + 1):
            outcome = self._run_child(spec_path, result_path, heartbeat, ckpt_dir)
            if outcome == "ok" and result_path.exists():
                self._journal(point=pid, status="done", engine=engine,
                              attempts=attempt)
                with result_path.open("rb") as fh:
                    return pickle.load(fh)
            if attempt < cfg.max_retries:
                delay = self.policy.backoff(attempt)
                self._journal(point=pid, status="retry", engine=engine,
                              attempt=attempt, outcome=outcome, backoff=delay)
                time.sleep(delay)
        return None

    def _run_child(
        self, spec_path: Path, result_path: Path, heartbeat: Path, ckpt_dir: Path
    ) -> str:
        """One child attempt; returns ``"ok"``, ``"stall"`` or ``"exit:N"``."""
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        # Fresh heartbeat so a stale file from the last attempt cannot
        # trigger (or mask) a stall verdict.
        heartbeat.touch()
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.pointworker",
                str(spec_path),
                str(result_path),
                str(heartbeat),
                str(ckpt_dir),
            ],
            env=env,
        )
        try:
            while True:
                try:
                    proc.wait(timeout=self.cfg.poll_interval)
                    break
                except subprocess.TimeoutExpired:
                    pass
                try:
                    age = time.time() - heartbeat.stat().st_mtime
                except OSError:
                    age = 0.0
                if age > self.cfg.heartbeat_timeout:
                    proc.kill()
                    proc.wait()
                    return "stall"
        except BaseException:
            # The sweep itself is being torn down (Ctrl-C, --deadline-
            # seconds, SystemExit).  Give the child the same deferred-
            # SIGINT chance to write its final snapshot that an
            # interactive Ctrl-C would, then make sure it is gone.
            try:
                proc.send_signal(signal.SIGINT)
                proc.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                proc.kill()
                proc.wait()
            raise
        return "ok" if proc.returncode == 0 else f"exit:{proc.returncode}"
