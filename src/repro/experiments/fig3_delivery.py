"""Figure 3: average packet delivery time vs network diameter.

"The average delivery time increases approximately linearly with respect
to N.  The packet injection rate has a very limited effect on the packet
delivery rate." (§4.1)

For each network size and each injection load (fraction of routers hosting
injection applications) we run the dynamic simulation and report the mean
delivery time in steps.  The table's last rows give the linear fit per
load series, quantifying the O(N) claim.
"""

from __future__ import annotations

from repro.analysis.linfit import fit_linear
from repro.analysis.replication import summarize
from repro.experiments.common import SweepParams, run_hotpotato_sequential
from repro.experiments.report import Table

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Regenerate the Fig 3 series at the sweep's sizes and loads."""
    loads = params.loads
    table = Table(
        title="Figure 3 — average packet delivery time (steps) vs N",
        columns=["N"] + [f"{int(load * 100)}% injectors" for load in loads],
    )
    series: dict[float, list[float]] = {load: [] for load in loads}
    upgraded_fraction: list[float] = []
    max_half_width = 0.0
    for n in params.sizes:
        row: list[object] = [n]
        for load in loads:
            samples = []
            for seed in params.seeds():
                result = run_hotpotato_sequential(n, load, params.duration, seed)
                ms = result.model_stats
                samples.append(ms["avg_delivery_time"])
                if load == loads[-1] and seed == params.seed:
                    by_prio = ms["delivered_by_priority"]
                    total = sum(by_prio)
                    upgraded_fraction.append(
                        sum(by_prio[1:]) / total if total else 0.0
                    )
            est = summarize(samples)
            max_half_width = max(max_half_width, est.half_width)
            row.append(est.mean)
            series[load].append(est.mean)
        table.add_row(*row)
    if params.replications > 1:
        table.notes.append(
            f"{params.replications} seeds per point; widest 95% CI "
            f"half-width {max_half_width:.3f} steps"
        )
    if len(params.sizes) >= 2:
        for load in loads:
            fit = fit_linear(params.sizes, series[load])
            table.notes.append(
                f"{int(load * 100)}% load: delivery ≈ {fit.slope:.3f}·N + "
                f"{fit.intercept:.2f} (R²={fit.r_squared:.3f}) — expected O(N)"
            )
        # The report attributes the trajectory change at N≈188 to "the
        # probabilistic packet state changing rules: in a larger network, a
        # greater percentage of packets have changed to higher states".
        # Track that percentage directly.
        pct = ", ".join(
            f"N={n}: {100 * f:.1f}%"
            for n, f in zip(params.sizes, upgraded_fraction)
        )
        table.notes.append(
            f"packets absorbed above Sleeping (full load): {pct} — rises "
            f"with N per the report's Fig-3 trajectory explanation"
        )
    return table
