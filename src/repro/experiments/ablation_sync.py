"""ABL-SYNC: optimistic (Time Warp) vs conservative synchronization.

The report's choice of an *optimistic* simulator is itself a design
decision; the PDES literature's perennial question is how it compares to
conservative synchronization on the same model.  The hot-potato network has
modest lookahead (0.1 of a time step), which is exactly the regime where
Time Warp is expected to win: conservative engines must creep in lookahead-
sized windows while Time Warp speculates across them and pays only for the
mispredictions.

Measured on identical workloads: committed events (identical by
construction), synchronization overhead (rollbacks for Time Warp, rounds
and null messages for the conservative flavours) and cost-model event rate.
"""

from __future__ import annotations

from repro.core.conservative import ConservativeConfig, ConservativeKernel
from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

__all__ = ["run"]

N_PES = 4


def run(params: SweepParams) -> Table:
    """Compare synchronization protocols at 4 PEs across the size sweep."""
    table = Table(
        title=f"ABL-SYNC — Time Warp vs conservative synchronization ({N_PES} PEs)",
        columns=[
            "N",
            "protocol",
            "committed",
            "rolled back",
            "null msgs",
            "rounds",
            "event rate",
        ],
    )
    rates: dict[int, dict[str, float]] = {}
    for n in params.sizes:
        hcfg = HotPotatoConfig(
            n=n, duration=params.duration, injector_fraction=1.0
        )
        # Time Warp.
        tw = run_hotpotato_parallel(
            n,
            1.0,
            params.duration,
            params.seed,
            n_pes=N_PES,
            n_kps=kp_count_for(n, 16, N_PES),
            batch_size=params.batch_size,
            window=params.window,
        )
        table.add_row(
            n,
            "time-warp",
            tw.run.committed,
            tw.run.events_rolled_back,
            0,
            tw.run.gvt_rounds,
            tw.run.event_rate,
        )
        rates.setdefault(n, {})["time-warp"] = tw.run.event_rate
        # Conservative flavours.
        for sync in ("yawns", "null"):
            kernel = ConservativeKernel(
                HotPotatoModel(hcfg),
                ConservativeConfig(
                    end_time=params.duration,
                    n_pes=N_PES,
                    sync=sync,
                    mapping="block",
                    seed=params.seed,
                ),
            )
            result = kernel.run()
            table.add_row(
                n,
                f"conservative/{sync}",
                result.run.committed,
                0,
                kernel.null_messages,
                kernel.rounds,
                result.run.event_rate,
            )
            rates[n][sync] = result.run.event_rate
    for n, by_proto in rates.items():
        best_cons = max(by_proto.get("yawns", 0.0), by_proto.get("null", 0.0))
        if best_cons > 0:
            table.notes.append(
                f"N={n}: Time Warp runs at {by_proto['time-warp'] / best_cons:.2f}x "
                f"the best conservative rate (lookahead 0.1 steps)"
            )
    table.notes.append(
        "the comparison is density-sensitive: small networks starve the "
        "conservative lookahead windows (Time Warp wins); dense ones keep "
        "them full (null-message CMB becomes competitive)"
    )
    return table
