"""Figures 7a–c: total events rolled back vs the number of KPs.

"The number of rollbacks in the simulation of a small network is
significantly affected by the number of KPs.  However, as the simulation
becomes larger, the effect is lessened." (§4.2.3)

Unlike the event-rate figures, every number here is *measured* — the
rollback counts come from real Time Warp rollbacks in the kernel, not from
the cost model.  The report presents the same data at three scales
(7a/7b/7c); one table covers all of it, with the false-rollback share in
the notes since false rollbacks are the quantity KPs exist to contain.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.report import Table

__all__ = ["run", "collect_rollbacks", "FIG7_PES"]

#: The report runs its KP sweep on the quad-processor configuration.
FIG7_PES = 4


def collect_rollbacks(params: SweepParams) -> dict[tuple[int, int], dict]:
    """(N, n_kps) → run stats dict, for the KP sweep."""
    out: dict[tuple[int, int], dict] = {}
    for n in params.sizes:
        for kps in params.kp_counts:
            usable = kp_count_for(n, kps, FIG7_PES)
            if (n, usable) in out:
                continue  # several requested counts rounded to the same one
            result = run_hotpotato_parallel(
                n,
                1.0,
                params.duration,
                params.seed,
                n_pes=FIG7_PES,
                n_kps=usable,
                batch_size=params.batch_size,
                window=params.window,
            )
            out[(n, usable)] = result.run.as_dict()
    return out


def run(params: SweepParams) -> Table:
    """Regenerate the Fig 7 data (total events rolled back)."""
    stats = collect_rollbacks(params)
    kp_values = sorted({k for (_, k) in stats})
    table = Table(
        title="Figures 7a-c — total events rolled back vs number of KPs "
        f"({FIG7_PES} PEs)",
        columns=["N"] + [f"{k} KPs" for k in kp_values],
    )
    for n in params.sizes:
        row: list[object] = [n]
        for k in kp_values:
            cell = stats.get((n, k))
            row.append(cell["events_rolled_back"] if cell else "-")
        table.add_row(*row)
    for n in params.sizes:
        pairs = sorted((k, s) for (nn, k), s in stats.items() if nn == n)
        if len(pairs) >= 2:
            first, last = pairs[0], pairs[-1]
            table.notes.append(
                f"N={n}: {first[0]} KPs → {first[1]['events_rolled_back']} rolled back "
                f"({first[1]['false_rollback_events']} false); "
                f"{last[0]} KPs → {last[1]['events_rolled_back']} "
                f"({last[1]['false_rollback_events']} false)"
            )
    return table
