"""Figure 5: parallel speed-up — event rate vs N for 1, 2 and 4 PEs.

"The graph shows that for 1024 LPs (N = 32), the 4-Processor simulation is
almost four times as fast as the sequential (1-Processor) simulation.
However, for larger networks, the 4-Processor simulation is approximately
twice as fast." (§4.2.2)

The 1-processor line is the sequential engine; the 2/4-processor lines are
the Time Warp engine with the report's 64-KP default (rounded down to what
tiles the grid).  Event rates come from the calibrated cost model over
*measured* event counts — see DESIGN.md, "Hardware substitutions".
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
    run_hotpotato_sequential,
)
from repro.experiments.report import Table

__all__ = ["run", "collect_rates"]

#: Injection load used for the speed-up sweeps (the report keeps the
#: network "relatively full").
SPEEDUP_LOAD = 1.0
#: The report's KP default (§4.2.3).
DEFAULT_KPS = 64


def collect_rates(params: SweepParams) -> dict[tuple[int, int], float]:
    """Event rate (events/s) per (N, n_pes); n_pes == 1 is sequential."""
    rates: dict[tuple[int, int], float] = {}
    for n in params.sizes:
        for n_pes in params.pe_counts:
            if n_pes == 1:
                result = run_hotpotato_sequential(
                    n, SPEEDUP_LOAD, params.duration, params.seed
                )
            else:
                n_kps = kp_count_for(n, DEFAULT_KPS, n_pes)
                result = run_hotpotato_parallel(
                    n,
                    SPEEDUP_LOAD,
                    params.duration,
                    params.seed,
                    n_pes=n_pes,
                    n_kps=n_kps,
                    batch_size=params.batch_size,
                    window=params.window,
                )
            rates[(n, n_pes)] = result.run.event_rate
    return rates


def run(params: SweepParams) -> Table:
    """Regenerate the Fig 5 series (event rate in events/second)."""
    rates = collect_rates(params)
    table = Table(
        title="Figure 5 — parallel speed-up: event rate (events/s) vs N",
        columns=["N", "LPs"] + [f"{p} PE" for p in params.pe_counts],
    )
    for n in params.sizes:
        table.add_row(
            n, n * n, *(rates[(n, p)] for p in params.pe_counts)
        )
    table.notes.append(
        "rates are virtual wall-clock (calibrated cost model over measured "
        "event counts); shapes, not absolute values, are the claim"
    )
    return table
