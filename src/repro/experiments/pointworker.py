"""``python -m repro.experiments.pointworker`` — one sweep point, isolated.

The experiment supervisor (:mod:`repro.experiments.supervisor`) executes
every sweep point through this entry so a wedged or crashed simulation
cannot take the whole sweep down.  The protocol is four paths on argv::

    python -m repro.experiments.pointworker SPEC.json RESULT.pkl HEARTBEAT CKPT_DIR

* ``SPEC.json`` — the point specification (see :func:`run_spec`).
* ``RESULT.pkl`` — where the pickled ``{"model_stats", "run"}`` dict
  goes on success (written atomically; its existence plus exit code 0
  is the success signal).
* ``HEARTBEAT`` — file the run's checkpointer touches at every GVT /
  scheduler boundary; the parent's watchdog reads its mtime as
  GVT-progress evidence and SIGKILLs the child when it goes stale.
* ``CKPT_DIR`` — snapshot directory.  If it already holds snapshots
  (a previous attempt died mid-run), the worker restores the latest one
  and continues instead of starting over.

Spec keys: ``kind`` (``seq`` / ``opt`` / ``cons``), ``n``, ``load``,
``duration``, ``seed``; ``n_pes`` / ``n_kps`` / ``batch_size`` /
``window`` / ``overrides`` for the parallel engines; ``fault`` (``None``,
``{"plan": path}`` or ``{"link_rate": r, "seed": s}``); ``telemetry``
(metrics JSONL path or ``None``); ``checkpoint_every``; ``sabotage``
(test hook: ``"stall"`` hangs without heartbeats, ``{"flaky": k}``
exits 1 on the first *k* attempts).

A spec may instead carry ``scenario``
(``{"path": ..., "name": ..., "hash": ...}``): the point then rebuilds
its entire configuration from that scenario file (topology, traffic,
policy, duration, faults — ``n`` / ``load`` / ``duration`` / ``fault``
are absent from the spec) and the worker refuses to run if the file no
longer hashes to the recorded value, so resuming a sweep can never
silently compute a different experiment.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import sys
import time
from pathlib import Path

__all__ = ["run_spec", "main"]


def _materialize_fault_plan(fault, n: int, duration: float):
    """Expand a JSON fault spec into a FaultPlan (or None)."""
    if not fault:
        return None
    from repro.faults import DEFAULT_FAULT_SEED, generate_plan, load_plan

    if "plan" in fault:
        return load_plan(fault["plan"])
    from repro.net import TorusTopology

    seed = fault.get("seed")
    return generate_plan(
        TorusTopology(n),
        duration=duration,
        link_fail_rate=fault["link_rate"],
        seed=seed if seed is not None else DEFAULT_FAULT_SEED,
    )


def _delivery_percentiles(log) -> dict:
    """Nearest-rank latency percentiles of a ``(step, latency)`` log."""
    if not log:
        return {"latency_p50": 0.0, "latency_p95": 0.0, "latency_p99": 0.0}
    latencies = sorted(latency for _, latency in log)

    def rank(q: float) -> float:
        return float(latencies[max(0, math.ceil(q * len(latencies)) - 1)])

    return {
        "latency_p50": rank(0.50),
        "latency_p95": rank(0.95),
        "latency_p99": rank(0.99),
    }


def _materialize_scenario(scen: dict, want_delivery_log: bool):
    """Rebuild a scenario point's model parts, verifying the file hash."""
    from repro.scenarios import compile_scenario, load_scenario

    compiled = compile_scenario(load_scenario(scen["path"]))
    digest = compiled.scenario_hash()
    want = scen.get("hash")
    if want and digest != want:
        raise ValueError(
            f"scenario {scen['path']!r} hashes to {digest}, but the sweep "
            f"manifest recorded {want}; the file changed since the sweep "
            "was launched — refusing to compute a different experiment"
        )
    return compiled, compiled.build_model(delivery_log=want_delivery_log)


def _spec_marker(spec: dict) -> dict:
    """The snapshot configuration fingerprint: the spec minus test hooks."""
    return {k: v for k, v in spec.items() if k not in ("sabotage", "telemetry")}


def _sabotage(spec: dict, ckpt_dir: Path) -> None:
    """Deterministic failure modes for the supervisor's own tests."""
    mode = spec.get("sabotage")
    if not mode:
        return
    if mode == "stall":
        # Hang without ever touching the heartbeat: the parent's
        # watchdog must notice and SIGKILL us.
        time.sleep(3600)
        sys.exit(1)
    if isinstance(mode, dict) and "flaky" in mode:
        counter = ckpt_dir / "flaky_attempts"
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        attempts = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(attempts + 1))
        if attempts < int(mode["flaky"]):
            sys.exit(1)


def run_spec(spec: dict, heartbeat: Path, ckpt_dir: Path):
    """Build the spec's engine, resume from CKPT_DIR if possible, run."""
    from repro.ckpt import Checkpointer, deferred_interrupts, latest_snapshot
    from repro.hotpotato.config import HotPotatoConfig
    from repro.hotpotato.model import HotPotatoModel
    from repro.obs.capture import RunCapture

    _sabotage(spec, ckpt_dir)

    kind = spec["kind"]
    seed = spec["seed"]
    scen = spec.get("scenario")
    if scen is not None:
        compiled, model = _materialize_scenario(scen, kind == "seq")
        duration = compiled.duration
        plan = compiled.fault_plan
        meta = {"engine": kind, "scenario": compiled.name,
                "scenario_hash": compiled.scenario_hash(),
                "duration": duration, "seed": seed}
    else:
        compiled = None
        n = spec["n"]
        duration = spec["duration"]
        plan = _materialize_fault_plan(spec.get("fault"), n, duration)
        cfg = HotPotatoConfig(
            n=n, duration=duration, injector_fraction=spec["load"]
        )
        model = HotPotatoModel(cfg, fault_plan=plan)
        meta = {"engine": kind, "n": n, "load": spec["load"],
                "duration": duration, "seed": seed}

    ckpt = Checkpointer(
        ckpt_dir,
        every=spec.get("checkpoint_every", 4),
        marker=_spec_marker(spec),
        heartbeat=heartbeat,
    )
    payload = ckpt.load_latest() if latest_snapshot(ckpt_dir) is not None else None

    telemetry = spec.get("telemetry")
    if payload is not None and payload.get("obs") is not None:
        capture = RunCapture.resume(payload["obs"])
    elif telemetry:
        capture = RunCapture(
            metrics_out=telemetry,
            meta=meta,
            fault_plan=plan,
            injection_plan=(
                compiled.injection_plan if compiled is not None else None
            ),
        )
    else:
        capture = None

    faults = None
    if plan is not None and plan.has_engine_faults:
        from repro.faults.injector import EngineFaults

        faults = EngineFaults(plan)

    if kind == "seq":
        from repro.core.engine import SequentialEngine

        engine = SequentialEngine(model, duration, seed=seed)
    elif kind == "opt":
        from repro.core.config import EngineConfig
        from repro.core.optimistic import TimeWarpKernel

        ecfg = EngineConfig(
            end_time=duration,
            n_pes=spec["n_pes"],
            n_kps=spec["n_kps"],
            batch_size=spec.get("batch_size", 16),
            window=spec.get("window"),
            seed=seed,
            **(spec.get("overrides") or {}),
        )
        engine = TimeWarpKernel(model, ecfg)
    elif kind == "cons":
        from repro.core.conservative import ConservativeConfig, ConservativeKernel

        ccfg = ConservativeConfig(
            end_time=duration, n_pes=spec["n_pes"], seed=seed
        )
        engine = ConservativeKernel(model, ccfg)
    else:
        raise ValueError(f"unknown point kind {kind!r}")

    if capture is not None:
        capture.attach(engine)
    if faults is not None:
        engine.attach_faults(faults)
    engine.attach_checkpointer(ckpt)
    ckpt.capture = capture

    try:
        with deferred_interrupts(ckpt):
            result = engine.run()
    except KeyboardInterrupt:
        if capture is not None:
            capture.finalize(None)
        sys.exit(130)
    if capture is not None:
        capture.finalize(result)
    if compiled is not None and kind == "seq":
        result.model_stats.update(_delivery_percentiles(model.delivery_log))
    return result


def main(argv: list[str] | None = None) -> int:
    """Entry point: run argv's spec, atomically persist the result pickle."""
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 4:
        print(
            "usage: python -m repro.experiments.pointworker "
            "SPEC.json RESULT.pkl HEARTBEAT CKPT_DIR",
            file=sys.stderr,
        )
        return 2
    spec_path, result_path, heartbeat, ckpt_dir = map(Path, argv)
    spec = json.loads(spec_path.read_text())
    result = run_spec(spec, heartbeat, ckpt_dir)
    # LPs hold fused closures (unpicklable by design); the supervisor
    # only needs the statistics.
    doc = {"model_stats": result.model_stats, "run": result.run}
    tmp = result_path.with_suffix(".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(doc, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, result_path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
