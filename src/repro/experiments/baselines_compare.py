"""ABL-BASE: the hot-potato algorithm vs baselines (and vs flow control).

Two comparisons in one table:

* deflection baselines (plain greedy, dimension-order, random deflection,
  cf. Bartzis et al. [5]) on the identical bufferless network, and
* the buffered store-and-forward network with end-to-end flow control —
  the configuration the paper's title positions against.  Its link
  utilisation demonstrates the claim that "flow controlled routing results
  in significant under-utilization of network links" (§1.2.3).
"""

from __future__ import annotations

from repro.baselines import (
    BufferedConfig,
    BufferedModel,
    DimensionOrderPolicy,
    GreedyPolicy,
    RandomDeflectionPolicy,
)
from repro.core.engine import run_sequential
from repro.experiments.common import SweepParams
from repro.experiments.report import Table
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.policy import BuschHotPotatoPolicy

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Compare routing algorithms on each sweep size at full load."""
    table = Table(
        title="ABL-BASE — routing algorithms compared (100% injectors)",
        columns=[
            "N",
            "algorithm",
            "delivered",
            "avg delivery",
            "max delivery",
            "avg inject wait",
            "link util",
        ],
    )
    policies = (
        BuschHotPotatoPolicy(),
        GreedyPolicy(),
        DimensionOrderPolicy(),
        RandomDeflectionPolicy(),
    )
    for n in params.sizes:
        hcfg = HotPotatoConfig(
            n=n,
            duration=params.duration,
            injector_fraction=1.0,
            heartbeat=True,  # sample link utilisation
        )
        util_by_algo: dict[str, float] = {}
        for policy in policies:
            result = run_sequential(
                HotPotatoModel(hcfg, policy), hcfg.duration, seed=params.seed
            )
            ms = result.model_stats
            table.add_row(
                n,
                policy.name,
                ms["delivered"],
                ms["avg_delivery_time"],
                ms["max_delivery_time"],
                ms["avg_inject_wait"],
                ms["link_utilization"],
            )
            util_by_algo[policy.name] = ms["link_utilization"]
        bcfg = BufferedConfig(n=n, duration=params.duration, window=4)
        result = run_sequential(BufferedModel(bcfg), bcfg.duration, seed=params.seed)
        ms = result.model_stats
        table.add_row(
            n,
            "buffered-flow-control",
            ms["delivered"],
            ms["avg_delivery_time"],
            ms["max_delivery_time"],
            ms["avg_inject_wait"],
            ms["link_utilization"],
        )
        util_by_algo["buffered"] = ms["link_utilization"]
        if util_by_algo.get("buffered", 0) > 0:
            table.notes.append(
                f"N={n}: hot-potato uses {util_by_algo['busch'] / util_by_algo['buffered']:.1f}x "
                f"the link capacity of the flow-controlled network"
            )
    return table
