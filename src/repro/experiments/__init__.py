"""Experiment harness: one runner per figure of the report's evaluation.

See DESIGN.md's per-experiment index for the id → figure mapping, and
``python -m repro.experiments all`` to regenerate everything.
"""

from repro.experiments.common import SweepParams
from repro.experiments.report import Table

__all__ = ["SweepParams", "Table", "EXPERIMENTS", "run_experiment"]


def __getattr__(name: str):
    # figures.py imports every experiment module; load lazily so that
    # `from repro.experiments import Table` stays cheap.
    if name in ("EXPERIMENTS", "run_experiment", "experiment_ids"):
        from repro.experiments import figures

        return getattr(figures, name)
    raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")
