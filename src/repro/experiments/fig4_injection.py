"""Figure 4: average wait to inject a packet vs network size.

"The average packet injection waiting time increases approximately
linearly with N within each injection configuration.  However ... the
injection rate has a significant impact on the injection wait." (§4.1)
"""

from __future__ import annotations

from repro.analysis.linfit import fit_linear
from repro.analysis.replication import summarize
from repro.experiments.common import SweepParams, run_hotpotato_sequential
from repro.experiments.report import Table

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Regenerate the Fig 4 series at the sweep's sizes and loads."""
    loads = params.loads
    table = Table(
        title="Figure 4 — average wait to inject a packet (steps) vs N",
        columns=["N"] + [f"{int(load * 100)}% injectors" for load in loads],
    )
    series: dict[float, list[float]] = {load: [] for load in loads}
    max_half_width = 0.0
    for n in params.sizes:
        row: list[object] = [n]
        for load in loads:
            est = summarize(
                [
                    run_hotpotato_sequential(
                        n, load, params.duration, seed
                    ).model_stats["avg_inject_wait"]
                    for seed in params.seeds()
                ]
            )
            max_half_width = max(max_half_width, est.half_width)
            row.append(est.mean)
            series[load].append(est.mean)
        table.add_row(*row)
    if params.replications > 1:
        table.notes.append(
            f"{params.replications} seeds per point; widest 95% CI "
            f"half-width {max_half_width:.3f} steps"
        )
    if len(params.sizes) >= 2:
        for load in loads:
            fit = fit_linear(params.sizes, series[load])
            table.notes.append(
                f"{int(load * 100)}% load: wait ≈ {fit.slope:.3f}·N + "
                f"{fit.intercept:.2f} (R²={fit.r_squared:.3f})"
            )
        # The report's second observation: load separates the curves.
        lo, hi = min(loads), max(loads)
        if lo != hi:
            table.notes.append(
                f"load effect at N={params.sizes[-1]}: "
                f"{series[hi][-1]:.2f} vs {series[lo][-1]:.2f} steps "
                f"({int(hi * 100)}% vs {int(lo * 100)}% injectors)"
            )
    return table
