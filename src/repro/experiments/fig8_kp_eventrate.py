"""Figure 8: effect of the number of KPs on the event rate.

"It is clear that the performance of the simulation of the smaller (16x16)
network is improved by the use of more KPs.  However, as the network size
becomes larger, this benefit diminishes." (§4.2.3)

More KPs mean fewer false rollbacks (a measured benefit) but more per-round
KP management and fossil-collection bookkeeping (a cost-model overhead) —
the trade-off the report attributes the diminishing returns to.
"""

from __future__ import annotations

from repro.experiments.common import (
    SweepParams,
    kp_count_for,
    run_hotpotato_parallel,
)
from repro.experiments.fig7_kp_rollbacks import FIG7_PES
from repro.experiments.report import Table

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Regenerate the Fig 8 series (event rate vs KP count)."""
    rates: dict[tuple[int, int], float] = {}
    for n in params.sizes:
        for kps in params.kp_counts:
            usable = kp_count_for(n, kps, FIG7_PES)
            if (n, usable) in rates:
                continue
            result = run_hotpotato_parallel(
                n,
                1.0,
                params.duration,
                params.seed,
                n_pes=FIG7_PES,
                n_kps=usable,
                batch_size=params.batch_size,
                window=params.window,
            )
            rates[(n, usable)] = result.run.event_rate
    kp_values = sorted({k for (_, k) in rates})
    table = Table(
        title=f"Figure 8 — event rate (events/s) vs number of KPs ({FIG7_PES} PEs)",
        columns=["N"] + [f"{k} KPs" for k in kp_values],
    )
    for n in params.sizes:
        row: list[object] = [n]
        for k in kp_values:
            row.append(rates.get((n, k), "-"))
        table.add_row(*row)
    return table
