"""Result tables: the text/CSV output format of every experiment."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled grid of results, printable as text or CSV.

    Every experiment returns one of these; the benchmark harness prints
    them so the regenerated rows sit next to the paper's figure in the
    output (see EXPERIMENTS.md for the side-by-side record).
    """

    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, by header name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[_fmt(c) for c in self.columns]] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        header, *body = cells
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + rows)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (used by EXPERIMENTS.md)."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "---|" * len(self.columns))
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
