"""WARMUP — measurement methodology: whole-run vs steady-state averages.

The report's statistics average over the entire run, which folds the
initial transient (the full network fill draining toward its equilibrium
mix of priorities and occupancy) into every number.  Using the commit-time
delivery log and :mod:`repro.analysis.timeseries`, this experiment
estimates where the warm-up ends and re-computes the average delivery time
from steady state only, quantifying how much the transient biases the
headline Fig-3 numbers.
"""

from __future__ import annotations

from repro.analysis.timeseries import build_series, warmup_end
from repro.core.engine import run_sequential
from repro.experiments.common import SweepParams
from repro.experiments.report import Table
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel

__all__ = ["run"]


def run(params: SweepParams) -> Table:
    """Estimate warm-up and steady-state delivery time per sweep size."""
    table = Table(
        title="WARMUP — whole-run vs steady-state average delivery time",
        columns=[
            "N",
            "warmup ends (step)",
            "whole-run avg",
            "steady-state avg",
            "bias %",
        ],
    )
    for n in params.sizes:
        cfg = HotPotatoConfig(
            n=n,
            duration=params.duration,
            injector_fraction=1.0,
            delivery_log=True,
        )
        model = HotPotatoModel(cfg)
        result = run_sequential(model, cfg.duration, seed=params.seed)
        whole = result.model_stats["avg_delivery_time"]
        series = build_series(model.delivery_log)
        w = warmup_end(series, window=5, tolerance=0.5)
        if w is None:
            table.add_row(n, "-", whole, "-", "-")
            continue
        steady = [
            (step, dt) for step, dt in model.delivery_log if step >= w
        ]
        steady_avg = (
            sum(dt for _, dt in steady) / len(steady) if steady else 0.0
        )
        bias = 100.0 * (whole - steady_avg) / steady_avg if steady_avg else 0.0
        table.add_row(n, w, whole, steady_avg, bias)
    table.notes.append(
        "warm-up detected from per-step delivery throughput settling within "
        "50% of its steady value (rolling 5-step window)"
    )
    return table
