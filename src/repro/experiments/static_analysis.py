"""STATIC — the one-shot (static) analysis of Das et al. [2].

"In a static analysis, all packets are assumed to be injected into the
network simultaneously when the analysis is initialized" (§1.2.1).  The
report supports this mode by initialising the network full and setting
``probability_i`` to zero (§3.3.1).  This experiment drains a full network
of each size and reports how long delivery takes — the static counterpart
to Fig 3 — for both the Busch algorithm and the plain greedy baseline.
"""

from __future__ import annotations

from repro.baselines.policies import GreedyPolicy
from repro.core.engine import SequentialEngine
from repro.experiments.common import SweepParams
from repro.experiments.report import Table
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.policy import BuschHotPotatoPolicy

__all__ = ["run"]

#: Drain headroom: a full torus empties within a few diameters.
DRAIN_FACTOR = 30.0


def _drain(n: int, policy, seed: int) -> dict:
    cfg = HotPotatoConfig(
        n=n,
        duration=max(DRAIN_FACTOR * n, 100.0),
        injector_fraction=0.0,
        initial_fill=1.0,
    )
    engine = SequentialEngine(HotPotatoModel(cfg, policy), cfg.duration, seed=seed)
    result = engine.run()
    ms = result.model_stats
    in_flight = sum(
        1 for ev in engine.pending if ev.kind in ("ARRIVE", "ROUTE")
    )
    return {
        "seeded": ms["initial_packets"],
        "delivered": ms["delivered"],
        "drained": in_flight == 0,
        "avg": ms["avg_delivery_time"],
        "max": ms["max_delivery_time"],
    }


def run(params: SweepParams) -> Table:
    """Static (one-shot) drain of a full network per size and algorithm."""
    table = Table(
        title="STATIC — one-shot analysis: drain a full network (0% injectors)",
        columns=["N", "algorithm", "seeded", "delivered", "drained", "avg delivery", "max delivery"],
    )
    for n in params.sizes:
        for policy in (BuschHotPotatoPolicy(), GreedyPolicy()):
            row = _drain(n, policy, params.seed)
            table.add_row(
                n,
                policy.name,
                row["seeded"],
                row["delivered"],
                row["drained"],
                row["avg"],
                row["max"],
            )
    table.notes.append(
        "static workload: every packet present at t=0 (4 per router), no "
        "further injection — the Das et al. [2] configuration"
    )
    return table
