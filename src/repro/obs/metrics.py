"""GVT-interval metrics: the kernel's time series, not just its totals.

The report's figures are end-of-run aggregates, but diagnosing a run —
a rollback storm, throttle oscillation, pending-queue growth — needs the
*trajectory*: one :class:`MetricSample` per GVT round.  A
:class:`MetricsRecorder` attaches to any of the three engines via their
``attach_metrics`` method and is fed cumulative counters at each GVT
boundary (scheduler round for the conservative engine, every
``interval`` events for the sequential engine, which has no rounds);
it converts them to per-interval deltas.

Design constraints, in order:

* **Zero overhead when detached.**  The kernels consult the recorder
  only at GVT boundaries, never per event, and the optimistic kernel's
  fused send/execute fast paths stay installed with a recorder attached
  (unlike a :class:`~repro.core.trace.Tracer`, which needs the generic
  per-event execute path).
* **Bounded memory when streaming.**  With a ``sink``, samples are
  written through as produced; ``keep=False`` then drops them from
  memory entirely, so an arbitrarily long run records in O(1) space.
* **Determinism.**  Every sampled quantity is a deterministic function
  of the simulation, so two runs of the same seed produce identical
  sample streams — the telemetry itself is replay-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["MetricSample", "MetricsRecorder"]


@dataclass(frozen=True)
class MetricSample:
    """One GVT-interval observation of kernel state.

    Counter fields (``committed`` … ``fossil_collected``) are *deltas*
    over the interval since the previous sample; gauge fields
    (``pending`` … ``pool_hit_rate``) are instantaneous values at the
    sample point.
    """

    #: Sample index (GVT round for the optimistic engine).
    round: int
    #: Virtual-time floor at the sample point (event ts for sequential,
    #: LBTS-style horizon for conservative).
    gvt: float
    #: Events committed during the interval.
    committed: int
    #: Events forward-executed during the interval (includes work that
    #: may later be undone).
    processed: int
    #: Events undone by rollbacks during the interval.
    rolled_back: int
    #: Rollback episodes started during the interval.
    rollbacks: int
    #: Straggler arrivals during the interval.
    stragglers: int
    #: Events fossil-collected during the interval.
    fossil_collected: int
    #: Live events across all pending queues at the sample point.
    pending: int
    #: Processed-but-uncommitted events across all KPs at the sample
    #: point (0 for engines that commit as they execute).
    processed_depth: int
    #: Optimism-throttle factor at the sample point (1.0 when off).
    throttle: float
    #: Cumulative event-pool hit rate at the sample point (0.0 when
    #: pooling is off).
    pool_hit_rate: float
    #: Messages reused in place by lazy cancellation during the interval
    #: (0 under aggressive cancellation).  Delta counter.
    lazy_hits: int = 0
    #: Anti-message batch flushes during the interval (0 under aggressive
    #: cancellation).  Delta counter.
    antimsg_batches: int = 0
    #: GVT estimates served by the incremental manager during the
    #: interval (0 under synchronous/Mattern).  Delta counter.
    gvt_incremental_rounds: int = 0
    #: Same-timestamp-band runs dispatched by the vectorized executor
    #: during the interval (0 under the scalar executor).  Delta counter.
    soa_batches: int = 0
    #: Events advanced by those runs during the interval.  Delta counter.
    soa_lps_stepped: int = 0
    #: Per-KP events rolled back during the interval; only KPs with a
    #: nonzero delta appear (empty for non-optimistic engines).
    kp_rolled_back: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat JSON-ready dict (KP keys become strings in JSON)."""
        d = {
            "round": self.round,
            "gvt": self.gvt,
            "committed": self.committed,
            "processed": self.processed,
            "rolled_back": self.rolled_back,
            "rollbacks": self.rollbacks,
            "stragglers": self.stragglers,
            "fossil_collected": self.fossil_collected,
            "pending": self.pending,
            "processed_depth": self.processed_depth,
            "throttle": self.throttle,
            "pool_hit_rate": self.pool_hit_rate,
            "lazy_hits": self.lazy_hits,
            "antimsg_batches": self.antimsg_batches,
            "gvt_incremental_rounds": self.gvt_incremental_rounds,
            "soa_batches": self.soa_batches,
            "soa_lps_stepped": self.soa_lps_stepped,
        }
        if self.kp_rolled_back:
            d["kp_rolled_back"] = {str(k): v for k, v in self.kp_rolled_back.items()}
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "MetricSample":
        """Inverse of :meth:`as_dict` (the JSONL loader's entry point)."""
        return cls(
            round=int(d["round"]),
            gvt=float(d["gvt"]),
            committed=int(d["committed"]),
            processed=int(d["processed"]),
            rolled_back=int(d["rolled_back"]),
            rollbacks=int(d["rollbacks"]),
            stragglers=int(d["stragglers"]),
            fossil_collected=int(d["fossil_collected"]),
            pending=int(d["pending"]),
            processed_depth=int(d["processed_depth"]),
            throttle=float(d["throttle"]),
            pool_hit_rate=float(d["pool_hit_rate"]),
            # Pre-lazy-cancellation recordings lack these three counters;
            # default them to zero so old JSONL files stay loadable.
            lazy_hits=int(d.get("lazy_hits", 0)),
            antimsg_batches=int(d.get("antimsg_batches", 0)),
            gvt_incremental_rounds=int(d.get("gvt_incremental_rounds", 0)),
            # Pre-vectorized-executor recordings lack the SoA pair; same
            # zero-default convention.
            soa_batches=int(d.get("soa_batches", 0)),
            soa_lps_stepped=int(d.get("soa_lps_stepped", 0)),
            kp_rolled_back={
                int(k): int(v) for k, v in d.get("kp_rolled_back", {}).items()
            },
        )


class MetricsRecorder:
    """Collects :class:`MetricSample` rows from a kernel, one per GVT round.

    Parameters
    ----------
    sink:
        Optional :class:`~repro.obs.recorder.JsonlSink`; samples are
        written through as produced (bounded memory for long runs).
    keep:
        Keep samples in :attr:`samples` (default).  With a sink
        attached, ``keep=False`` streams only.
    interval:
        Sampling period, in events, for engines without GVT rounds (the
        sequential engine).  Ignored by the round-driven engines.
    """

    def __init__(self, sink=None, *, keep: bool = True, interval: int = 1024) -> None:
        if interval < 1:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sink = sink
        self.keep = keep
        self.interval = interval
        self.samples: list[MetricSample] = []
        self.n_samples = 0
        # Previous cumulative counter values (delta computation).
        self._prev = {
            "committed": 0,
            "processed": 0,
            "rolled_back": 0,
            "rollbacks": 0,
            "stragglers": 0,
            "fossil_collected": 0,
            "lazy_hits": 0,
            "antimsg_batches": 0,
            "gvt_incremental_rounds": 0,
            "soa_batches": 0,
            "soa_lps_stepped": 0,
        }
        self._prev_kp: list[int] | None = None

    def sample(
        self,
        *,
        gvt: float,
        committed: int,
        processed: int,
        rolled_back: int = 0,
        rollbacks: int = 0,
        stragglers: int = 0,
        fossil_collected: int = 0,
        pending: int = 0,
        processed_depth: int = 0,
        throttle: float = 1.0,
        pool_hit_rate: float = 0.0,
        lazy_hits: int = 0,
        antimsg_batches: int = 0,
        gvt_incremental_rounds: int = 0,
        soa_batches: int = 0,
        soa_lps_stepped: int = 0,
        kp_rolled_back: list[int] | None = None,
    ) -> MetricSample:
        """Feed *cumulative* counters; records and returns the delta sample.

        ``kp_rolled_back`` is the cumulative per-KP ``events_rolled_back``
        vector; only KPs whose count advanced since the last sample make
        it into the stored delta map.
        """
        prev = self._prev
        kp_delta: dict[int, int] = {}
        if kp_rolled_back is not None:
            prev_kp = self._prev_kp
            if prev_kp is None:
                prev_kp = [0] * len(kp_rolled_back)
            for kp_id, (now, before) in enumerate(zip(kp_rolled_back, prev_kp)):
                if now != before:
                    kp_delta[kp_id] = now - before
            self._prev_kp = list(kp_rolled_back)
        s = MetricSample(
            round=self.n_samples,
            gvt=gvt,
            committed=committed - prev["committed"],
            processed=processed - prev["processed"],
            rolled_back=rolled_back - prev["rolled_back"],
            rollbacks=rollbacks - prev["rollbacks"],
            stragglers=stragglers - prev["stragglers"],
            fossil_collected=fossil_collected - prev["fossil_collected"],
            pending=pending,
            processed_depth=processed_depth,
            throttle=throttle,
            pool_hit_rate=pool_hit_rate,
            lazy_hits=lazy_hits - prev["lazy_hits"],
            antimsg_batches=antimsg_batches - prev["antimsg_batches"],
            gvt_incremental_rounds=(
                gvt_incremental_rounds - prev["gvt_incremental_rounds"]
            ),
            soa_batches=soa_batches - prev["soa_batches"],
            soa_lps_stepped=soa_lps_stepped - prev["soa_lps_stepped"],
            kp_rolled_back=kp_delta,
        )
        prev["committed"] = committed
        prev["processed"] = processed
        prev["rolled_back"] = rolled_back
        prev["rollbacks"] = rollbacks
        prev["stragglers"] = stragglers
        prev["fossil_collected"] = fossil_collected
        prev["lazy_hits"] = lazy_hits
        prev["antimsg_batches"] = antimsg_batches
        prev["gvt_incremental_rounds"] = gvt_incremental_rounds
        prev["soa_batches"] = soa_batches
        prev["soa_lps_stepped"] = soa_lps_stepped
        self.n_samples += 1
        if self.sink is not None:
            self.sink.write_metric(s)
        if self.keep:
            self.samples.append(s)
        return s

    def __len__(self) -> int:
        return self.n_samples
