"""Kernel observability: GVT-interval metrics, flight recorder, forensics.

The report's evaluation (§4.2) is written in kernel observables — event
rate, rollbacks, KP containment — but end-of-run aggregates cannot show
*how* a run evolved.  This package adds the missing time dimension:

* :mod:`repro.obs.metrics` — a :class:`MetricsRecorder` sampling kernel
  state once per GVT round (zero overhead when detached; the fused hot
  paths stay installed when attached),
* :mod:`repro.obs.recorder` — a schema-versioned streaming JSONL flight
  recorder (:class:`JsonlSink`, :class:`StreamingTracer`) and its loader
  (:func:`load_recording`), which reconstructs the committed-sequence
  determinism check across processes,
* :mod:`repro.obs.spans` — a :class:`SpanTracer` recording wall-clock
  phase spans (exec / rollback / antimsg / gvt / fossil / snapshot /
  transport) with PE/KP/LP attribution at phase boundaries only,
* :mod:`repro.obs.forensics` — rollback hot spots, rollback-chain
  reconstruction, rollback attribution and recording-vs-recording diff,
* :mod:`repro.obs.critpath` — committed-trace critical-path analysis
  (path length, achievable speedup bound, per-LP slack),
* :mod:`repro.obs.watch` — the live terminal dashboard behind
  ``python -m repro.obs watch``,
* :mod:`repro.obs.capture` — :class:`RunCapture`, the one-call wiring
  used by the CLIs' ``--metrics-out`` / ``--trace-out`` /
  ``--spans-out`` flags,
* ``python -m repro.obs`` — the forensics CLI (``summary``,
  ``timeline``, ``thrash``, ``critpath``, ``watch``, ``diff``).

See ``docs/OBSERVABILITY.md`` for metric definitions and the file
schema.
"""

from repro.obs.capture import RunCapture
from repro.obs.critpath import CritPathReport, critical_path
from repro.obs.forensics import (
    RollbackChain,
    chain_summary,
    diff_recordings,
    rollback_attribution,
    rollback_chains,
)
from repro.obs.metrics import MetricSample, MetricsRecorder
from repro.obs.recorder import (
    SCHEMA_VERSION,
    JsonlSink,
    RunRecording,
    StreamingTracer,
    load_recording,
)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "SCHEMA_VERSION",
    "JsonlSink",
    "StreamingTracer",
    "RunRecording",
    "load_recording",
    "MetricSample",
    "MetricsRecorder",
    "RunCapture",
    "Span",
    "SpanTracer",
    "CritPathReport",
    "critical_path",
    "RollbackChain",
    "rollback_chains",
    "chain_summary",
    "rollback_attribution",
    "diff_recordings",
]
