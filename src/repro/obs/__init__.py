"""Kernel observability: GVT-interval metrics, flight recorder, forensics.

The report's evaluation (§4.2) is written in kernel observables — event
rate, rollbacks, KP containment — but end-of-run aggregates cannot show
*how* a run evolved.  This package adds the missing time dimension:

* :mod:`repro.obs.metrics` — a :class:`MetricsRecorder` sampling kernel
  state once per GVT round (zero overhead when detached; the fused hot
  paths stay installed when attached),
* :mod:`repro.obs.recorder` — a schema-versioned streaming JSONL flight
  recorder (:class:`JsonlSink`, :class:`StreamingTracer`) and its loader
  (:func:`load_recording`), which reconstructs the committed-sequence
  determinism check across processes,
* :mod:`repro.obs.forensics` — rollback hot spots, rollback-chain
  reconstruction and recording-vs-recording diff,
* :mod:`repro.obs.capture` — :class:`RunCapture`, the one-call wiring
  used by the CLIs' ``--metrics-out`` / ``--trace-out`` flags,
* ``python -m repro.obs`` — the forensics CLI (``summary``,
  ``timeline``, ``thrash``, ``diff``).

See ``docs/OBSERVABILITY.md`` for metric definitions and the file
schema.
"""

from repro.obs.capture import RunCapture
from repro.obs.forensics import (
    RollbackChain,
    chain_summary,
    diff_recordings,
    rollback_chains,
)
from repro.obs.metrics import MetricSample, MetricsRecorder
from repro.obs.recorder import (
    SCHEMA_VERSION,
    JsonlSink,
    RunRecording,
    StreamingTracer,
    load_recording,
)

__all__ = [
    "SCHEMA_VERSION",
    "JsonlSink",
    "StreamingTracer",
    "RunRecording",
    "load_recording",
    "MetricSample",
    "MetricsRecorder",
    "RunCapture",
    "RollbackChain",
    "rollback_chains",
    "chain_summary",
    "diff_recordings",
]
