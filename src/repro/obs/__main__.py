"""``python -m repro.obs`` — forensics over recorded runs, no rerun needed.

Subcommands::

    python -m repro.obs summary  RUN.jsonl          # header + full RunStats
    python -m repro.obs timeline RUN.jsonl          # ASCII metric sparklines
    python -m repro.obs thrash   RUN.jsonl          # rollback hot spots/chains
    python -m repro.obs critpath RUN.jsonl          # causal critical path
    python -m repro.obs faults   RUN.jsonl          # fault-injection forensics
    python -m repro.obs watch    RUN.jsonl          # live terminal dashboard
    python -m repro.obs diff     A.jsonl B.jsonl    # determinism comparison

``diff`` exits 0 when the two recordings are equivalent (committed
sequences equal — the report's Attachment-3 check, across processes) and
1 when they diverge; engine-dependent stat differences are reported but
do not fail the diff.  ``critpath --json`` output is a pure function of
the committed trace, so two processes analyzing equivalent recordings
emit byte-identical reports.  ``watch`` tails a recording while the run
writes it; ``watch --once`` renders a single headless frame for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.asciichart import plot
from repro.core.trace import COMMIT, EXEC, UNDO
from repro.obs.critpath import critical_path
from repro.obs.forensics import (
    chain_summary,
    diff_recordings,
    rollback_attribution,
    rollback_chains,
)
from repro.obs.recorder import RunRecording, load_recording
from repro.obs.watch import watch

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare recorded simulation runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="header, trace counts and full RunStats")
    p.add_argument("file", type=Path)

    p = sub.add_parser("timeline", help="GVT-interval metric sparklines")
    p.add_argument("file", type=Path)
    p.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        choices=sorted(TIMELINE_METRICS),
        help="chart only the named metric group(s); default: all with data",
    )
    p.add_argument("--height", type=int, default=8, help="chart height (rows)")
    p.add_argument("--width", type=int, default=64, help="chart width (cols)")

    p = sub.add_parser("thrash", help="rollback hot spots and chain forensics")
    p.add_argument("file", type=Path)
    p.add_argument("--top", type=int, default=10, help="rows per hot-spot table")

    p = sub.add_parser(
        "critpath",
        help="critical path, speedup bound and per-LP slack from the trace",
    )
    p.add_argument("file", type=Path)
    p.add_argument("--top", type=int, default=10, help="rows per LP table")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as deterministic JSON (sorted keys)",
    )

    p = sub.add_parser("faults", help="fault-plan timeline and fault counters")
    p.add_argument("file", type=Path)
    p.add_argument("--top", type=int, default=10, help="rows in the node table")

    p = sub.add_parser("watch", help="live dashboard over a (growing) recording")
    p.add_argument("file", type=Path)
    p.add_argument(
        "--once",
        action="store_true",
        help="render one plain frame from the file's current state and exit",
    )
    p.add_argument(
        "--interval", type=float, default=0.5, help="refresh period (seconds)"
    )
    p.add_argument("--height", type=int, default=8, help="chart height (rows)")
    p.add_argument("--width", type=int, default=60, help="chart width (cols)")

    p = sub.add_parser("diff", help="compare two recordings for equivalence")
    p.add_argument("a", type=Path)
    p.add_argument("b", type=Path)
    p.add_argument(
        "--strict",
        action="store_true",
        help="also fail on engine-dependent stat differences",
    )
    return parser


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
def _print_kv_table(pairs: list[tuple[str, object]], indent: str = "  ") -> None:
    width = max((len(k) for k, _ in pairs), default=0)
    for key, value in pairs:
        if isinstance(value, float):
            text = f"{value:,.6g}"
        elif isinstance(value, int) and not isinstance(value, bool):
            text = f"{value:,}"
        else:
            text = str(value)
        print(f"{indent}{key:<{width}} : {text}")


#: Delta counters summed over the metric stream for the summary view —
#: the subsystem activity (lazy cancellation, anti-message batching,
#: incremental GVT, vectorized stepping) that RunStats alone understates
#: or omits.
_STREAM_COUNTERS = (
    "committed",
    "processed",
    "rolled_back",
    "rollbacks",
    "stragglers",
    "fossil_collected",
    "lazy_hits",
    "antimsg_batches",
    "gvt_incremental_rounds",
    "soa_batches",
    "soa_lps_stepped",
)


def cmd_summary(rec: RunRecording) -> int:
    """Print the recording's header, trace counts and final RunStats."""
    print(f"recording: {rec.path}")
    header = [(k, v) for k, v in rec.header.items() if k != "schema"]
    _print_kv_table([("schema", rec.header.get("schema"))] + header)
    print(
        f"  trace records: {len(rec.records):,} "
        f"(EXEC {rec.counts[EXEC]:,}, UNDO {rec.counts[UNDO]:,}, "
        f"COMMIT {rec.counts[COMMIT]:,}); metric samples: {len(rec.metrics):,}"
    )
    if rec.faults:
        print(f"  scheduled fault events: {len(rec.faults):,}")
    if rec.adversary:
        print(f"  adversary injections scripted: {len(rec.adversary):,}")
    if rec.health:
        by_det: dict[str, int] = {}
        for h in rec.health:
            det = h.get("detector", "?")
            by_det[det] = by_det.get(det, 0) + 1
        breakdown = ", ".join(f"{d} {n}x" for d, n in sorted(by_det.items()))
        print(f"  watchdog trips: {len(rec.health):,} ({breakdown})")
    if rec.truncated_lines:
        print(
            f"  WARNING: {rec.truncated_lines} torn trailing line tolerated "
            "(recording was cut off mid-write; totals may be incomplete)"
        )
    if rec.metrics:
        print("metric stream totals:")
        _print_kv_table(
            [
                (name, sum(getattr(s, name) for s in rec.metrics))
                for name in _STREAM_COUNTERS
            ]
        )
    if rec.spans:
        total = sum(sec for _n, sec, _sh in rec.span_breakdown().values())
        print(f"span phases ({len(rec.spans):,} spans, {total:.3f}s recorded):")
        _print_kv_table(
            [
                (phase, f"{n:,}x {sec:.4f}s ({share * 100:.1f}%)")
                for phase, (n, sec, share) in rec.span_breakdown().items()
            ]
        )
        busy = rec.span_busy_by_pe()
        if busy:
            print("exec busy by PE:")
            _print_kv_table(
                [(f"pe{pe}", f"{sec:.4f}s") for pe, sec in sorted(busy.items())]
            )
    if rec.stats is None:
        print("  no stats line (run did not finalize)")
        return 0
    reason = rec.stats.get("soa_decline_reason")
    if reason:
        print(f"  vectorized executor fell back to scalar: {reason}")
    procs = rec.stats.get("procs", 1)
    if procs and procs > 1:
        # Process-mode run: attribute the cross-process overhead.  These
        # counters live in RunStats too, but scattered among forty other
        # keys; the ratios (bytes/frame, stall rate, frames/wave) are
        # what make "the transport is/isn't the bottleneck" readable.
        msgs = rec.stats.get("ring_messages", 0)
        ring_bytes = rec.stats.get("ring_bytes", 0)
        stalls = rec.stats.get("ring_full_stalls", 0)
        token_rounds = rec.stats.get("gvt_token_rounds", 0)
        rows = [
            ("worker processes", procs),
            ("ring frames crossed", msgs),
            ("ring bytes crossed", ring_bytes),
            ("ring full-stalls", stalls),
            ("gvt token rounds", token_rounds),
        ]
        if msgs:
            rows.append(("bytes / frame", f"{ring_bytes / msgs:.1f}"))
            rows.append(("full-stall rate", f"{stalls / msgs:.2%}"))
        if token_rounds:
            rows.append(("frames / token round", f"{msgs / token_rounds:.1f}"))
        print("multicore transport:")
        _print_kv_table(rows)
    print("run stats:")
    _print_kv_table(sorted(rec.stats.items()))
    return 0


# ----------------------------------------------------------------------
# timeline
# ----------------------------------------------------------------------
#: Chart groups: title -> list of (series name, sample attribute).
TIMELINE_METRICS = {
    "rate": [("committed/interval", "committed"), ("processed/interval", "processed")],
    "rollbacks": [
        ("rolled_back/interval", "rolled_back"),
        ("stragglers/interval", "stragglers"),
    ],
    "depth": [("pending", "pending"), ("processed_depth", "processed_depth")],
    "throttle": [("throttle factor", "throttle")],
    "cancellation": [
        ("lazy_hits/interval", "lazy_hits"),
        ("antimsg_batches/interval", "antimsg_batches"),
    ],
    "vectorized": [
        ("soa_batches/interval", "soa_batches"),
        ("soa_lps_stepped/interval", "soa_lps_stepped"),
    ],
}


def cmd_timeline(
    rec: RunRecording,
    metrics: list[str] | None,
    height: int,
    width: int,
) -> int:
    """Render the metric time series as ASCII charts over GVT."""
    samples = rec.metrics
    if not samples:
        print(
            f"{rec.path}: no metric samples; re-record with --metrics-out "
            "to enable timelines"
        )
        return 1
    xs = [s.gvt for s in samples]
    chosen = metrics if metrics else list(TIMELINE_METRICS)
    drawn = 0
    for group in chosen:
        series = {}
        for name, attr in TIMELINE_METRICS[group]:
            ys = [float(getattr(s, attr)) for s in samples]
            if any(ys) or group == "throttle":
                series[name] = list(zip(xs, ys))
        if not series:
            continue  # nothing ever moved (e.g. rollbacks on sequential)
        print(plot(series, height=height, width=width, title=f"[{group}] vs GVT"))
        print()
        drawn += 1
    if not drawn:
        print("no nonzero series to chart")
    return 0


# ----------------------------------------------------------------------
# thrash
# ----------------------------------------------------------------------
def cmd_thrash(rec: RunRecording, top: int) -> int:
    """Print rollback hot spots (per LP, per KP) and chain forensics."""
    by_lp = rec.thrash_by_lp()
    by_kp = rec.thrash_by_kp()
    if not by_lp and not by_kp:
        print(
            f"{rec.path}: no rollback activity recorded (sequential/"
            "conservative run, rollback-free run, or metrics+trace not captured)"
        )
        return 0
    if by_lp:
        total = sum(by_lp.values())
        print(f"events undone per LP (total {total:,}, {len(by_lp)} LPs):")
        rows = sorted(by_lp.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        _print_kv_table([(f"lp{lp}", n) for lp, n in rows])
    if by_kp:
        total = sum(by_kp.values())
        print(f"events rolled back per KP (total {total:,}, {len(by_kp)} KPs):")
        rows = sorted(by_kp.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        _print_kv_table([(f"kp{kp}", n) for kp, n in rows])
    chains = rollback_chains(rec)
    if chains:
        summary = chain_summary(chains)
        print(
            f"rollback chains: {summary['chains']:,} episodes, "
            f"{summary['events_undone']:,} events undone, "
            f"max length {summary['max_length']}, "
            f"mean {summary['mean_length']:.2f}, "
            f"{summary['multi_lp_chains']:,} touched multiple LPs "
            "(false-rollback spillover)"
        )
        worst = sorted(chains, key=lambda c: -c.length)[: min(top, 5)]
        for c in worst:
            print(
                f"  len {c.length:>4}  lps {c.lp_spread:>3}  "
                f"ts [{c.min_ts:.6f}, {c.max_ts:.6f}]  "
                f"resumed at lp{c.resumed_lp}"
            )
        attr = rollback_attribution(rec)
        print(
            f"rollback attribution: {attr['wasted_fraction'] * 100:.1f}% of "
            f"executed work undone ({attr['events_undone']:,} UNDO / "
            f"{attr['exec_records']:,} EXEC in window); "
            f"{attr['storm_events']:,} events undone more than once "
            "(anti-message storm signature)"
        )
        if attr["by_source"]:
            print("  chains triggered, by source LP:")
            for row in attr["by_source"][:top]:
                print(
                    f"    lp{row['lp']:<5} {row['chains']:>5} chains, "
                    f"{row['events_undone']:>7,} events undone"
                )
        if attr["by_link"]:
            print("  worst source -> victim links:")
            for row in attr["by_link"][:top]:
                print(
                    f"    lp{row['source']} -> lp{row['victim']}: "
                    f"{row['chains']} chains, "
                    f"{row['events_undone']:,} events undone"
                )
        if attr["undo_multiplicity"]:
            hist = ", ".join(
                f"{times}x: {n:,}"
                for times, n in attr["undo_multiplicity"].items()
            )
            print(f"  undo multiplicity (times undone: events): {hist}")
    return 0


# ----------------------------------------------------------------------
# critpath
# ----------------------------------------------------------------------
def cmd_critpath(rec: RunRecording, top: int, as_json: bool) -> int:
    """Critical-path report over the recording's committed sequence."""
    commits = rec.committed_sequence()
    report = critical_path(commits)
    if as_json:
        # sort_keys + fixed separators: byte-identical across processes
        # for equivalent recordings (checked in CI).
        print(json.dumps(report.as_dict(), sort_keys=True,
                         separators=(",", ":")))
        return 0
    if report.events == 0:
        print(f"{rec.path}: no committed events in the trace")
        return 1
    print(f"recording: {rec.path}")
    _print_kv_table(
        [
            ("committed events", report.events),
            ("lps", report.lps),
            ("critical path length", report.path_length),
            ("achievable speedup bound", round(report.speedup_bound, 3)),
        ]
    )
    rows = sorted(report.lp_heights.items(), key=lambda kv: (-kv[1], kv[0]))
    print(f"deepest LPs (height; slack = {report.path_length} - height):")
    _print_kv_table(
        [
            (f"lp{lp}", f"height {h:,}, slack {report.lp_slack[lp]:,}")
            for lp, h in rows[:top]
        ]
    )
    if report.path_lp_events:
        on_path = sorted(
            report.path_lp_events.items(), key=lambda kv: (-kv[1], kv[0])
        )
        share = ", ".join(f"lp{lp}: {n}" for lp, n in on_path[:top])
        print(f"witness path events per LP: {share}")
    return 0


# ----------------------------------------------------------------------
# faults
# ----------------------------------------------------------------------
#: Stats fields that carry fault-injection activity (model-side counters
#: live in model stats, which recordings do not carry; these are the
#: engine-side ones from RunStats).
_FAULT_STAT_FIELDS = (
    "transport_dropped",
    "transport_duplicated",
    "transport_delayed",
    "pe_stall_rounds",
)


def cmd_faults(rec: RunRecording, top: int) -> int:
    """Print the recorded fault-plan timeline and fault counters."""
    header_keys = [
        (k, v) for k, v in sorted(rec.header.items()) if k.startswith("fault_")
    ]
    stat_rows = []
    if rec.stats is not None:
        stat_rows = [
            (k, rec.stats[k]) for k in _FAULT_STAT_FIELDS if rec.stats.get(k)
        ]
    if not rec.faults and not header_keys and not stat_rows:
        print(f"{rec.path}: no fault activity recorded (unfaulted run)")
        return 0
    if header_keys:
        print("fault plan (header):")
        _print_kv_table(header_keys)
    if rec.faults:
        print(f"scheduled fault events ({len(rec.faults):,}):")
        by_kind: dict[str, int] = {}
        by_node: dict[int, int] = {}
        for f in rec.faults:
            by_kind[f.get("kind", "?")] = by_kind.get(f.get("kind", "?"), 0) + 1
            node = f.get("node", -1)
            by_node[node] = by_node.get(node, 0) + 1
        _print_kv_table(sorted(by_kind.items()))
        rows = sorted(by_node.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        print(f"most-faulted nodes (top {len(rows)}):")
        _print_kv_table([(f"node{n}", c) for n, c in rows])
        for f in rec.faults[: min(top, len(rec.faults))]:
            d = f.get("direction", -1)
            where = f"node {f.get('node')}" + (f" dir {d}" if d >= 0 else "")
            print(f"  step {f.get('step'):>6}  {f.get('kind'):<10} {where}")
        if len(rec.faults) > top:
            print(f"  ... {len(rec.faults) - top} more")
    if stat_rows:
        print("engine fault counters:")
        _print_kv_table(stat_rows)
    return 0


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def cmd_diff(a: RunRecording, b: RunRecording, strict: bool) -> int:
    """Compare two recordings; exit 0 iff they are equivalent."""
    report = diff_recordings(a, b)
    mism = report["field_mismatches"]
    for name in mism["invariant"]:
        va, vb = report["fields"][name]
        print(f"INVARIANT DIFF  {name}: {va!r} != {vb!r}")
    for name in mism["engine_dependent"]:
        va, vb = report["fields"][name]
        print(f"engine-dependent {name}: {va!r} vs {vb!r}")
    seq = report["sequences"]
    if seq == "unavailable":
        print(
            "committed sequences: unavailable (a recording lacks trace "
            "records); falling back to invariant stats comparison"
        )
    elif seq == "equal":
        n = len(a.select(COMMIT))
        print(f"committed sequences: EQUAL ({n:,} events)")
    else:
        idx, ta, tb = report["first_divergence"]
        print(f"committed sequences: DIFFERENT at index {idx}:")
        print(f"  {a.path}: {ta}")
        print(f"  {b.path}: {tb}")
    equivalent = report["equivalent"]
    if strict and mism["engine_dependent"]:
        equivalent = False
    print("verdict:", "EQUIVALENT" if equivalent else "DIVERGENT")
    return 0 if equivalent else 1


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "diff":
            return cmd_diff(
                load_recording(args.a), load_recording(args.b), args.strict
            )
        if args.command == "watch":
            # watch tails the raw file itself (the recording may still
            # be growing); no up-front load.
            return watch(
                args.file,
                once=args.once,
                interval=args.interval,
                height=args.height,
                width=args.width,
            )
        rec = load_recording(args.file)
        if args.command == "summary":
            return cmd_summary(rec)
        if args.command == "timeline":
            return cmd_timeline(rec, args.metrics, args.height, args.width)
        if args.command == "critpath":
            return cmd_critpath(rec, args.top, args.json)
        if args.command == "faults":
            return cmd_faults(rec, args.top)
        return cmd_thrash(rec, args.top)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
