"""The streaming flight recorder: schema-versioned JSONL in, forensics out.

One recording file is a sequence of JSON lines, each tagged with a type:

* ``{"t": "header", "schema": 1, "engine": ..., ...}`` — written first;
  carries the schema version and free-form run metadata.
* ``{"t": "trace", "a": "EXEC"|"UNDO"|"COMMIT", "ts": ..., "origin":
  ..., "seq": ..., "dst": ..., "kind": ...}`` — one event lifecycle
  transition (see :class:`~repro.core.trace.TraceRecord`).
* ``{"t": "metric", ...}`` — one GVT-interval
  :class:`~repro.obs.metrics.MetricSample`.
* ``{"t": "fault", "step": ..., "kind": ..., "node": ..., "direction":
  ...}`` — one scheduled fault-plan event (schema 2; see
  :mod:`repro.faults`).  Written up front when a run carries a fault
  plan, so forensics can line fault times up against the trace.
* ``{"t": "span", "ph": ..., "t0": ..., "dt": ..., "pe": ..., "kp":
  ..., "lp": ..., "n": ...}`` — one timed engine-phase occurrence
  (schema 3; see :mod:`repro.obs.spans`).  Span timings are wall-clock
  and therefore the one *nondeterministic* line type: determinism
  checks (``committed_sequence``, diff, critpath) never read them.
* ``{"t": "adversary", "step": ..., "node": ..., "dest": ...}`` — one
  scripted adversarial injection decision (schema 4; see
  :mod:`repro.scenarios.adversary`).  Like faults, written up front when
  a run carries an injection plan, so forensics can line the adversary's
  workload up against the trace.
* ``{"t": "health", "detector": ..., "action": ..., "engine": ...,
  "boundary": ..., "position": ..., "wall": ...}`` — one liveness
  watchdog trip and the degradation-ladder action taken for it
  (schema 5; see :mod:`repro.health`).  Like spans, health lines carry
  wall-clock fields and are never read by determinism checks.
* ``{"t": "stats", ...}`` — the final
  :class:`~repro.core.stats.RunStats`, written once at run end.

Writers (:class:`JsonlSink`, :class:`StreamingTracer`) are
**write-through**: nothing accumulates in memory, so a recording can
outlive any in-memory :class:`~repro.core.trace.Tracer` limit.  The
loader (:func:`load_recording`) reconstructs the run — including the
``committed_sequence()`` the determinism check compares — from the file
alone, so the report's strongest repeatability check works *across
processes*: record a sequential run in one process, an optimistic run in
another, and diff the files.

Floats survive the round trip exactly (``json`` emits shortest-repr
floats and parses them back bit-identically), so sequence comparison on
reloaded recordings is as strict as the in-memory check.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable, Mapping

from repro.core.trace import COMMIT, EXEC, TRIMMED_COMMITS_MSG, UNDO, TraceRecord
from repro.obs.metrics import MetricSample
from repro.obs.spans import Span

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "JsonlSink",
    "StreamingTracer",
    "RunRecording",
    "load_recording",
]

#: Bump when a line type gains/loses/renames fields; the loader refuses
#: files from a future schema rather than misreading them.  Version 2
#: added the ``fault`` line type, version 3 the ``span`` line type,
#: version 4 the ``adversary`` line type, and version 5 the ``health``
#: line type (all purely additive — every schema-N file is also a valid
#: schema-N+1 file, so the loader accepts all five).
SCHEMA_VERSION = 5
SUPPORTED_SCHEMAS = (1, 2, 3, 4, 5)

_COMPACT = {"separators": (",", ":"), "sort_keys": True}


class JsonlSink:
    """Write-through JSONL writer for one recording file.

    Accepts a path (opened/closed by the sink) or an open text stream
    (left open — the caller owns it).  Usable as a context manager.  The
    header line is written on first use; pass run metadata early via
    :meth:`write_header` to make it informative.

    Crash tolerance: each record is written as one atomic string (never
    a partial ``write`` per field), so a crash can truncate at most the
    final line; :meth:`close` fsyncs path-opened files so a completed
    recording survives power loss; and the loader tolerates (and counts)
    a truncated final line.  The sink tracks its byte offset
    (``self.bytes``) so a checkpoint can record exactly how much of the
    file is trusted and :meth:`resume` can truncate back to it.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self.path: Path | None = Path(target)
            self._fh: IO[str] = self.path.open("w")
            self._owns = True
        else:
            self.path = None
            self._fh = target
            self._owns = False
        self._header_written = False
        self.lines = 0
        #: Bytes this sink has written.  JSON output is pure ASCII
        #: (``json.dumps`` escapes by default), so character count equals
        #: byte count — no encoder state to track.
        self.bytes = 0

    @classmethod
    def resume(cls, target: str | Path, state: Mapping) -> "JsonlSink":
        """Reopen a recording at a checkpointed offset.

        Truncates ``target`` to ``state["bytes"]`` — discarding anything
        a crashed run wrote past its last checkpoint, including any
        torn final line — and continues appending after it, restoring
        the line counter and header flag.  Only path targets can resume.
        """
        sink = cls.__new__(cls)
        sink.path = Path(target)
        with sink.path.open("r+") as fh:
            fh.truncate(state["bytes"])
        sink._fh = sink.path.open("a")
        sink._owns = True
        sink._header_written = state["header"]
        sink.lines = state["lines"]
        sink.bytes = state["bytes"]
        return sink

    def checkpoint_state(self) -> dict:
        """Flush and return the offsets :meth:`resume` needs."""
        self._fh.flush()
        return {
            "bytes": self.bytes,
            "lines": self.lines,
            "header": self._header_written,
        }

    # ------------------------------------------------------------------
    def write_header(self, meta: Mapping | None = None) -> None:
        """Write the schema header (once; later calls are ignored)."""
        if self._header_written:
            return
        doc = {"t": "header", "schema": SCHEMA_VERSION}
        if meta:
            doc.update(meta)
        self._write(doc)
        self._header_written = True

    def write_trace(self, action: str, record: TraceRecord) -> None:
        """Write one event lifecycle transition."""
        self.write_header()
        self._write(
            {
                "t": "trace",
                "a": action,
                "ts": record.ts,
                "origin": record.origin,
                "seq": record.seq,
                "dst": record.dst,
                "kind": record.kind,
            }
        )

    def write_metric(self, sample: MetricSample) -> None:
        """Write one GVT-interval metric sample."""
        self.write_header()
        doc = {"t": "metric"}
        doc.update(sample.as_dict())
        self._write(doc)

    def write_fault(self, fault_dict: Mapping) -> None:
        """Write one scheduled fault event (a FaultEvent.to_dict())."""
        self.write_header()
        doc = {"t": "fault"}
        doc.update(fault_dict)
        self._write(doc)

    def write_adversary(self, event_dict: Mapping) -> None:
        """Write one adversary injection decision (InjectionEvent.to_dict())."""
        self.write_header()
        doc = {"t": "adversary"}
        doc.update(event_dict)
        self._write(doc)

    def write_health(self, event_dict: Mapping) -> None:
        """Write one watchdog trip (a HealthEvent.to_dict())."""
        self.write_header()
        doc = {"t": "health"}
        doc.update(event_dict)
        self._write(doc)

    def write_span(self, span: Span) -> None:
        """Write one engine-phase span (see repro.obs.spans)."""
        self.write_header()
        doc = {"t": "span"}
        doc.update(span.as_dict())
        self._write(doc)

    def write_stats(self, stats_dict: Mapping) -> None:
        """Write the final RunStats dict (call once, at run end)."""
        self.write_header()
        doc = {"t": "stats"}
        doc.update(stats_dict)
        self._write(doc)

    def _write(self, doc: dict) -> None:
        data = json.dumps(doc, **_COMPACT) + "\n"
        self._fh.write(data)
        self.lines += 1
        self.bytes += len(data)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush (and fsync + close, for path-opened sinks)."""
        self.write_header()  # even an empty recording is a valid file
        self._fh.flush()
        if self._owns:
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingTracer:
    """Tracer-compatible hook set that streams records to a sink.

    Drop-in for :class:`~repro.core.trace.Tracer` on the kernel side
    (``attach_tracer`` accepts either): same ``on_exec`` / ``on_undo`` /
    ``on_commit`` hooks, but each record goes straight to the JSONL sink
    and only the action counts stay in memory — a full-fidelity trace of
    an arbitrarily long run in O(1) space.  Queries live on the loader's
    :class:`RunRecording`, not here.
    """

    def __init__(self, sink: JsonlSink) -> None:
        self.sink = sink
        self.counts = {EXEC: 0, UNDO: 0, COMMIT: 0}

    def on_exec(self, event) -> None:
        """Record a forward execution."""
        self.counts[EXEC] += 1
        self.sink.write_trace(EXEC, TraceRecord.of(EXEC, event))

    def on_undo(self, event) -> None:
        """Record a rollback of a processed event."""
        self.counts[UNDO] += 1
        self.sink.write_trace(UNDO, TraceRecord.of(UNDO, event))

    def on_commit(self, event) -> None:
        """Record an event becoming irreversible (below GVT)."""
        self.counts[COMMIT] += 1
        self.sink.write_trace(COMMIT, TraceRecord.of(COMMIT, event))


class RunRecording:
    """One loaded recording: header, trace, metrics, final stats.

    Offers the same forensic queries as an in-memory
    :class:`~repro.core.trace.Tracer` — plus the metric time series —
    reconstructed entirely from the file.
    """

    def __init__(
        self,
        header: dict,
        records: list[TraceRecord],
        metrics: list[MetricSample],
        stats: dict | None,
        path: Path | None = None,
        faults: list[dict] | None = None,
        spans: list[Span] | None = None,
        adversary: list[dict] | None = None,
        health: list[dict] | None = None,
    ) -> None:
        self.header = header
        self.records = records
        self.metrics = metrics
        self.stats = stats
        self.path = path
        #: Scheduled fault events ({"step", "kind", "node", "direction"}),
        #: in plan order; empty for unfaulted runs and schema-1 files.
        self.faults = faults if faults is not None else []
        #: Scripted adversary injections ({"step", "node", "dest"}), in
        #: plan order; empty for Bernoulli runs and pre-schema-4 files.
        self.adversary = adversary if adversary is not None else []
        #: Engine-phase spans (see repro.obs.spans), in recording order;
        #: empty for runs without a SpanTracer and pre-schema-3 files.
        self.spans = spans if spans is not None else []
        #: Watchdog trips ({"detector", "action", "engine", "boundary",
        #: "position", "wall", ...}), in trip order; empty for healthy
        #: runs, unwatched runs and pre-schema-5 files.
        self.health = health if health is not None else []
        #: Count of unparseable trailing lines the loader tolerated (a
        #: crash can tear at most the final line; see JsonlSink).  0 for
        #: cleanly closed recordings.
        self.truncated_lines = 0
        self.counts = {EXEC: 0, UNDO: 0, COMMIT: 0}
        for r in records:
            self.counts[r.action] += 1

    # ------------------------------------------------------------------
    # Tracer-equivalent queries.
    # ------------------------------------------------------------------
    def select(self, action: str) -> list[TraceRecord]:
        """All trace records of one action, in recording order."""
        return [r for r in self.records if r.action == action]

    def committed_sequence(self) -> list[tuple]:
        """Committed events as comparable tuples, sorted by event key.

        The cross-process form of the report's determinism check: two
        recordings are equivalent iff these sequences are equal.  Raises
        :class:`ValueError` when the recording carries no trace lines
        (metrics-only files cannot support the check) or when the
        recorded stats say more events committed than the trace holds.
        """
        commits = self.select(COMMIT)
        if not commits and self.counts[EXEC] == 0:
            raise ValueError(
                f"recording {self.path or '<stream>'} has no trace records; "
                "re-record with --trace-out to enable sequence comparison"
            )
        if self.stats is not None and self.stats.get("committed", 0) > len(commits):
            raise ValueError(TRIMMED_COMMITS_MSG)
        return sorted((r.ts, r.origin, r.seq, r.dst, r.kind) for r in commits)

    def thrash_by_lp(self) -> dict[int, int]:
        """UNDO count per destination LP — who rolls back the most."""
        out: dict[int, int] = {}
        for r in self.records:
            if r.action == UNDO:
                out[r.dst] = out.get(r.dst, 0) + 1
        return out

    def thrash_by_kp(self) -> dict[int, int]:
        """Total events rolled back per KP, summed over metric samples."""
        out: dict[int, int] = {}
        for s in self.metrics:
            for kp_id, n in s.kp_rolled_back.items():
                out[kp_id] = out.get(kp_id, 0) + n
        return out

    def span_breakdown(self) -> dict[str, tuple[int, float, float]]:
        """``{phase: (count, seconds, share)}`` over the recorded spans.

        ``share`` is the phase's fraction of summed span time (phases
        nest, so they do not sum to wall time; see repro.obs.spans).
        """
        totals: dict[str, list] = {}
        for span in self.spans:
            tot = totals.setdefault(span.phase, [0, 0.0])
            tot[0] += 1
            tot[1] += span.dt
        grand = sum(t for _, t in totals.values())
        return {
            ph: (count, total, total / grand if grand else 0.0)
            for ph, (count, total) in sorted(totals.items())
        }

    def span_busy_by_pe(self) -> dict[int, float]:
        """Recorded ``exec`` span seconds per PE."""
        out: dict[int, float] = {}
        for span in self.spans:
            if span.phase == "exec" and span.pe >= 0:
                out[span.pe] = out.get(span.pe, 0.0) + span.dt
        return out

    def __len__(self) -> int:
        return len(self.records)


def _parse_lines(lines: Iterable[str], path: Path | None) -> RunRecording:
    header: dict = {}
    records: list[TraceRecord] = []
    metrics: list[MetricSample] = []
    faults: list[dict] = []
    spans: list[Span] = []
    adversary: list[dict] = []
    health: list[dict] = []
    stats: dict | None = None
    truncated: tuple[int, ValueError] | None = None
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if truncated is not None:
            # An unparseable line followed by more content is corruption,
            # not a crash-torn tail: fail at the original line.
            raise truncated[1]
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            err = ValueError(
                f"{path or '<stream>'}:{lineno}: not valid JSON ({exc})"
            )
            if raw.endswith("\n"):
                # The sink appends each record and its newline in one
                # write, so a crash can only tear the final, unterminated
                # line.  A *complete* line of non-JSON is corruption.
                raise err
            truncated = (lineno, err)
            continue
        kind = doc.get("t")
        if not header and kind != "header":
            raise ValueError(
                f"{path or '<stream>'}:{lineno}: missing header line "
                "(recordings must start with a header)"
            )
        if kind == "header":
            schema = doc.get("schema")
            if schema not in SUPPORTED_SCHEMAS:
                raise ValueError(
                    f"{path or '<stream>'}: schema {schema!r} is not a "
                    f"supported version {SUPPORTED_SCHEMAS}"
                )
            header = {k: v for k, v in doc.items() if k != "t"}
        elif kind == "trace":
            records.append(
                TraceRecord(
                    action=doc["a"],
                    ts=doc["ts"],
                    origin=doc["origin"],
                    seq=doc["seq"],
                    dst=doc["dst"],
                    kind=doc["kind"],
                )
            )
        elif kind == "metric":
            metrics.append(MetricSample.from_dict(doc))
        elif kind == "fault":
            faults.append({k: v for k, v in doc.items() if k != "t"})
        elif kind == "span":
            spans.append(Span.from_dict(doc))
        elif kind == "adversary":
            adversary.append({k: v for k, v in doc.items() if k != "t"})
        elif kind == "health":
            health.append({k: v for k, v in doc.items() if k != "t"})
        elif kind == "stats":
            stats = {k: v for k, v in doc.items() if k != "t"}
        else:
            raise ValueError(
                f"{path or '<stream>'}:{lineno}: unknown line type {kind!r}"
            )
    if not header:
        raise ValueError(f"{path or '<stream>'}: missing header line")
    recording = RunRecording(
        header, records, metrics, stats, path, faults, spans, adversary, health
    )
    if truncated is not None:
        recording.truncated_lines = 1
    return recording


def load_recording(source: str | Path | IO[str]) -> RunRecording:
    """Load one JSONL recording from a path or open text stream."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open() as fh:
            return _parse_lines(fh, path)
    return _parse_lines(source, None)
