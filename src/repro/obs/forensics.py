"""Run forensics: turn a recording into answers about *what went wrong*.

Four analyses over a loaded :class:`~repro.obs.recorder.RunRecording`:

* **Hot spots** — per-LP UNDO counts (from the trace) and per-KP
  events-rolled-back totals (from the metric samples): which parts of
  the model thrash, and whether the KP containment the report's §4.2.3
  studies is actually containing them.
* **Rollback chains** — reconstruction of rollback episodes from the
  trace stream.  The kernel emits UNDO records tail-first as a KP
  unwinds, so a maximal run of consecutive UNDO records is one episode
  (a straggler or anti-message cascade); the chain's length, LP spread
  and trigger (the next EXEC after the chain, i.e. the re-execution
  front) characterise storms far better than the aggregate count.
* **Attribution** — the causal view of the same chains: which *source*
  LPs (and which source→victim links) triggered them, how much executed
  work each undid, and how often single events were undone repeatedly
  (the anti-message-storm signature).
* **Diff** — field-by-field comparison of two recordings' final stats
  plus the decisive check: committed-sequence equality, the
  cross-process form of the report's Attachment-3 determinism test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import EXEC, UNDO
from repro.obs.recorder import RunRecording

__all__ = [
    "RollbackChain",
    "rollback_chains",
    "chain_summary",
    "rollback_attribution",
    "diff_recordings",
]


@dataclass(frozen=True)
class RollbackChain:
    """One rollback episode reconstructed from the trace stream."""

    #: Index of the chain's first UNDO in the recording's trace.
    start_index: int
    #: Events undone in this episode.
    length: int
    #: Distinct LPs whose events were undone (spread > 1 means sibling
    #: LPs paid for the straggler — false-rollback territory).
    lp_spread: int
    #: Timestamp of the earliest undone event (the rollback's depth).
    min_ts: float
    #: Timestamp of the latest undone event.
    max_ts: float
    #: LP that re-executed first after the chain (the straggler's
    #: target), or -1 when the trace ends inside the chain.
    resumed_lp: int
    #: Origin LP of that first re-executed event — the sender whose
    #: straggler/anti-message triggered the rollback, i.e. the chain's
    #: causal *source* (-1 when the trace ends inside the chain).
    trigger_lp: int = -1


def rollback_chains(rec: RunRecording) -> list[RollbackChain]:
    """Maximal runs of consecutive UNDO records, in recording order."""
    chains: list[RollbackChain] = []
    records = rec.records
    i, n = 0, len(records)
    while i < n:
        if records[i].action != UNDO:
            i += 1
            continue
        j = i
        lps = set()
        lo, hi = float("inf"), float("-inf")
        while j < n and records[j].action == UNDO:
            r = records[j]
            lps.add(r.dst)
            lo = min(lo, r.ts)
            hi = max(hi, r.ts)
            j += 1
        resumed = -1
        trigger = -1
        for k in range(j, n):
            if records[k].action == EXEC:
                resumed = records[k].dst
                trigger = records[k].origin
                break
        chains.append(
            RollbackChain(
                start_index=i,
                length=j - i,
                lp_spread=len(lps),
                min_ts=lo,
                max_ts=hi,
                resumed_lp=resumed,
                trigger_lp=trigger,
            )
        )
        i = j
    return chains


def chain_summary(chains: list[RollbackChain]) -> dict:
    """Aggregate chain statistics for the ``thrash`` report."""
    if not chains:
        return {
            "chains": 0,
            "events_undone": 0,
            "max_length": 0,
            "mean_length": 0.0,
            "multi_lp_chains": 0,
        }
    lengths = [c.length for c in chains]
    return {
        "chains": len(chains),
        "events_undone": sum(lengths),
        "max_length": max(lengths),
        "mean_length": sum(lengths) / len(lengths),
        "multi_lp_chains": sum(1 for c in chains if c.lp_spread > 1),
    }


def rollback_attribution(rec: RunRecording) -> dict:
    """Attribute rollback chains to the LPs and links that caused them.

    Each chain's cause is the first event re-executed after it: its
    origin LP sent the straggler (the *source*), its destination is the
    LP that rolled back first (the *victim*), and ``source→victim`` is
    the offending link.  Alongside the per-source/per-link tables this
    reports wasted-work accounting (UNDO records per EXEC record) and
    the undo-multiplicity histogram — events undone two or more times
    are the signature of an anti-message storm (rollbacks re-triggering
    rollbacks), which per-chain stats alone cannot distinguish from many
    independent stragglers.

    All counts cover the recording's trace window; with a bounded tracer
    that window is the most recent ``limit`` records, not the whole run.
    """
    chains = rollback_chains(rec)
    execs = undone_total = 0
    multiplicity: dict[tuple, int] = {}
    for r in rec.records:
        if r.action == EXEC:
            execs += 1
        elif r.action == UNDO:
            undone_total += 1
            ident = (r.ts, r.origin, r.seq, r.dst)
            multiplicity[ident] = multiplicity.get(ident, 0) + 1

    by_source: dict[int, list[int]] = {}
    by_link: dict[tuple[int, int], list[int]] = {}
    unattributed = 0
    for c in chains:
        if c.trigger_lp < 0:
            unattributed += 1
            continue
        src = by_source.setdefault(c.trigger_lp, [0, 0])
        src[0] += 1
        src[1] += c.length
        link = by_link.setdefault((c.trigger_lp, c.resumed_lp), [0, 0])
        link[0] += 1
        link[1] += c.length

    histogram: dict[int, int] = {}
    for times in multiplicity.values():
        histogram[times] = histogram.get(times, 0) + 1
    storm_events = sum(n for times, n in histogram.items() if times > 1)
    return {
        "chains": len(chains),
        "events_undone": undone_total,
        "exec_records": execs,
        "wasted_fraction": undone_total / execs if execs else 0.0,
        "by_source": [
            {"lp": lp, "chains": c, "events_undone": u}
            for lp, (c, u) in sorted(
                by_source.items(), key=lambda kv: (-kv[1][1], kv[0])
            )
        ],
        "by_link": [
            {"source": s, "victim": v, "chains": c, "events_undone": u}
            for (s, v), (c, u) in sorted(
                by_link.items(), key=lambda kv: (-kv[1][1], kv[0])
            )
        ],
        "undo_multiplicity": {
            times: histogram[times] for times in sorted(histogram)
        },
        "storm_events": storm_events,
        "unattributed_chains": unattributed,
    }


#: Stats fields expected to differ between engines even on equivalent
#: runs (engine identity, engine-internal work accounting and derived
#: timing); the diff reports them informationally but they never decide
#: equivalence.
ENGINE_DEPENDENT_FIELDS = frozenset(
    {
        "engine",
        "n_pes",
        "n_kps",
        "processed",
        "events_rolled_back",
        "rollbacks",
        "false_rollback_events",
        "stragglers",
        "cancelled_direct",
        "cancelled_via_rollback",
        "lazy_reused",
        "throttle_adjustments",
        "throttle_final_factor",
        "local_sends",
        "remote_sends",
        "gvt_rounds",
        "fossil_collected",
        "pool_hits",
        "pool_allocs",
        "pool_hit_rate",
        "peak_pending",
        "peak_processed",
        "makespan_seconds",
        "event_rate",
        "total_busy_seconds",
        # Fault-injection accounting is engine-side work: transport
        # perturbation counters and stall rounds vary with scheduling and
        # exist only on the parallel engines, while committed results —
        # the invariant — stay identical (see repro.faults).
        "transport_dropped",
        "transport_duplicated",
        "transport_delayed",
        "pe_stall_rounds",
        # Process-mode plumbing: how many OS workers ran and what crossed
        # the shared-memory rings is an execution-mode property, never a
        # result (sequential == process-mode committed sequences is the
        # invariant tests/test_mp_determinism.py pins).
        "procs",
        "ring_messages",
        "ring_bytes",
        "ring_full_stalls",
        "gvt_token_rounds",
    }
)


def diff_recordings(a: RunRecording, b: RunRecording) -> dict:
    """Compare two recordings; returns a structured report.

    The result dict has:

    * ``fields`` — ``{name: (value_a, value_b)}`` for every stats field
      present in either recording, values ``None`` when absent;
    * ``field_mismatches`` — the subset of names with differing values,
      split into ``invariant`` (fields equivalent runs must agree on,
      e.g. ``committed``) and ``engine_dependent`` (informational);
    * ``sequences`` — ``"equal"``, ``"different"`` or ``"unavailable"``
      (one side has no trace records);
    * ``first_divergence`` — when sequences differ, the first index and
      the two tuples at it (``None`` otherwise);
    * ``equivalent`` — the verdict: committed sequences equal when
      available, otherwise all invariant fields equal.
    """
    sa = a.stats or {}
    sb = b.stats or {}
    fields: dict[str, tuple] = {}
    for name in sorted(set(sa) | set(sb)):
        fields[name] = (sa.get(name), sb.get(name))
    invariant, engine_dep = [], []
    for name, (va, vb) in fields.items():
        if va == vb:
            continue
        (engine_dep if name in ENGINE_DEPENDENT_FIELDS else invariant).append(name)

    sequences = "unavailable"
    first_divergence = None
    seq_a = seq_b = None
    try:
        seq_a = a.committed_sequence()
        seq_b = b.committed_sequence()
    except ValueError:
        pass
    if seq_a is not None and seq_b is not None:
        if seq_a == seq_b:
            sequences = "equal"
        else:
            sequences = "different"
            limit = min(len(seq_a), len(seq_b))
            idx = next(
                (i for i in range(limit) if seq_a[i] != seq_b[i]), limit
            )
            first_divergence = (
                idx,
                seq_a[idx] if idx < len(seq_a) else None,
                seq_b[idx] if idx < len(seq_b) else None,
            )

    if sequences != "unavailable":
        equivalent = sequences == "equal"
    else:
        equivalent = not invariant and bool(fields)
    return {
        "fields": fields,
        "field_mismatches": {"invariant": invariant, "engine_dependent": engine_dep},
        "sequences": sequences,
        "first_divergence": first_divergence,
        "equivalent": equivalent,
    }
