"""Span tracing: where the engine's wall time actually goes, per phase.

PR 2's metrics answer *what* the kernel did per GVT interval (counts);
spans answer *where the time went*: one :class:`Span` per engine phase
occurrence — an optimism batch, a rollback episode, an anti-message
flush, a GVT round, a fossil sweep, a snapshot, a transport drain — with
PE/KP/LP attribution and real ``perf_counter`` timings.  This is the
profiling layer the multicore and 65k-LP scale work reports through:
"PE 3 spends 40% of its wall time rolling back" is a span query, not a
counter query.

Design rules (the same contract as :mod:`repro.obs.metrics`):

* **Zero overhead when detached.**  Engines consult the tracer via
  ``if spans is not None`` at *phase* boundaries only — per PE batch,
  per rollback episode, per GVT round — never per event, and the
  optimistic kernel's fused send/execute/batch fast paths stay installed
  with a span tracer attached (asserted in ``tests/test_obs_spans.py``).
* **Bounded memory.**  Recent spans live in a fixed-capacity ring
  buffer; exact per-phase totals (count and duration) survive ring
  wrap-around, so the phase breakdown is always exact no matter how long
  the run.  With a ``sink``, every span is also written through to the
  JSONL recording (schema 3 ``span`` lines) in O(1) memory.
* **Honest nondeterminism.**  Span timings are wall-clock and therefore
  *not* reproducible across runs — unlike every other line type in a
  recording.  Determinism tooling (``repro.obs diff``, committed
  sequences, critpath) never reads spans; dashboards and profiles do.

Spans may nest: a rollback episode triggered inside an anti-message
flush records both the inner ``rollback`` span and the enclosing
``antimsg`` span, so phase durations are not disjoint and do not sum to
wall time.  ``exec`` spans cover the batch loop, which *includes* any
rollbacks its sends trigger mid-batch.
"""

from __future__ import annotations

import time
from typing import NamedTuple

__all__ = ["PHASES", "Span", "SpanTracer"]

#: The engine phases a span can belong to, in reporting order.
#:
#: * ``exec``      — one optimism batch (optimistic), one round's window
#:   execution (conservative), or one sampling interval (sequential).
#: * ``rollback``  — one KP rollback episode (straggler, anti-message or
#:   secondary cancellation).
#: * ``antimsg``   — one anti-message resolution pass: a lazy-mode batch
#:   flush or an aggressive-mode cancel-worklist drain.
#: * ``gvt``       — one GVT estimate.
#: * ``fossil``    — one fossil-collection sweep.
#: * ``snapshot``  — one checkpoint snapshot actually written.
#: * ``transport`` — one mailbox-transport flush that delivered messages.
PHASES = (
    "exec",
    "rollback",
    "antimsg",
    "gvt",
    "fossil",
    "snapshot",
    "transport",
)


class Span(NamedTuple):
    """One timed phase occurrence.

    ``t0`` is seconds since the tracer's epoch (its construction time),
    ``dt`` the duration in seconds.  ``pe``/``kp``/``lp`` attribute the
    span to a processing element / kernel process / logical process
    where that makes sense and are ``-1`` otherwise.  ``n`` counts the
    units the phase handled (events executed, events undone, messages
    delivered, ...; 0 when the phase has no natural unit).

    A ``NamedTuple`` rather than a dataclass: :meth:`SpanTracer.record`
    sits on engine phase boundaries, and tuple construction is what
    keeps the attached-tracer overhead inside its smoke-gate budget.
    """

    phase: str
    t0: float
    dt: float
    pe: int = -1
    kp: int = -1
    lp: int = -1
    n: int = 0

    def as_dict(self) -> dict:
        """Flat JSON-ready dict (the ``span`` line payload)."""
        return {
            "ph": self.phase,
            "t0": self.t0,
            "dt": self.dt,
            "pe": self.pe,
            "kp": self.kp,
            "lp": self.lp,
            "n": self.n,
        }

    @classmethod
    def from_dict(cls, d) -> "Span":
        """Inverse of :meth:`as_dict` (the JSONL loader's entry point)."""
        return cls(
            phase=d["ph"],
            t0=float(d["t0"]),
            dt=float(d["dt"]),
            pe=int(d.get("pe", -1)),
            kp=int(d.get("kp", -1)),
            lp=int(d.get("lp", -1)),
            n=int(d.get("n", 0)),
        )


class SpanTracer:
    """Ring-buffered span collector, attachable to any of the engines.

    Parameters
    ----------
    capacity:
        Ring-buffer size: the most recent ``capacity`` spans stay in
        memory.  Per-phase totals are exact regardless.
    sink:
        Optional :class:`~repro.obs.recorder.JsonlSink`; every span is
        written through as recorded (schema 3 ``span`` lines).
    interval:
        Sampling period, in events, for the sequential engine (which
        has no batches or GVT rounds to delimit ``exec`` phases).
    clock:
        Time source; engines call :attr:`clock` directly to bracket a
        phase and pass both readings to :meth:`record`.  Injectable for
        tests.
    """

    def __init__(
        self,
        capacity: int = 4096,
        sink=None,
        *,
        interval: int = 1024,
        clock=time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"span capacity must be positive, got {capacity}")
        if interval < 1:
            raise ValueError(f"interval must be positive, got {interval}")
        self.capacity = capacity
        self.sink = sink
        self.interval = interval
        self.clock = clock
        self.epoch = clock()
        self.n_spans = 0
        #: Spans evicted from the ring so far (0 until it wraps).
        self.dropped = 0
        #: Exact per-phase ``[count, total_seconds]``, whole-run.
        self.totals: dict[str, list] = {ph: [0, 0.0] for ph in PHASES}
        self._ring: list[Span] = []
        self._head = 0

    # ------------------------------------------------------------------
    # Kernel-facing hook.
    # ------------------------------------------------------------------
    def record(
        self,
        phase: str,
        t0: float,
        t1: float,
        pe: int = -1,
        kp: int = -1,
        lp: int = -1,
        n: int = 0,
    ) -> None:
        """Record one phase occurrence bracketed by two clock readings."""
        dt = t1 - t0
        span = Span(phase, t0 - self.epoch, dt, pe, kp, lp, n)
        tot = self.totals[phase]
        tot[0] += 1
        tot[1] += dt
        self.n_spans += 1
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(span)
        else:
            head = self._head
            ring[head] = span
            head += 1
            self._head = 0 if head == self.capacity else head
            self.dropped += 1
        if self.sink is not None:
            self.sink.write_span(span)

    def ingest(self, span: Span) -> None:
        """Adopt a span recorded by *another* tracer, as-is.

        The multiprocess runtime ships worker spans to the parent through
        this: ``span.t0`` stays relative to the worker's own epoch (each
        process clock starts at its own construction), so cross-process
        ``t0`` values are comparable only per process — phase totals and
        breakdowns remain exact.
        """
        tot = self.totals[span.phase]
        tot[0] += 1
        tot[1] += span.dt
        self.n_spans += 1
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(span)
        else:
            head = self._head
            ring[head] = span
            head += 1
            self._head = 0 if head == self.capacity else head
            self.dropped += 1
        if self.sink is not None:
            self.sink.write_span(span)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        ring = self._ring
        head = self._head
        return ring[head:] + ring[:head]

    def phase_breakdown(self) -> dict[str, tuple[int, float, float]]:
        """Exact ``{phase: (count, seconds, share)}`` over the whole run.

        ``share`` is the phase's fraction of the summed phase time (not
        of wall time — spans nest; see the module docstring).  Phases
        that never occurred are omitted.
        """
        grand = sum(t for _, t in self.totals.values())
        return {
            ph: (count, total, total / grand if grand else 0.0)
            for ph, (count, total) in self.totals.items()
            if count
        }

    def busy_by_pe(self) -> dict[int, float]:
        """Retained-window ``exec`` seconds per PE (ring window only)."""
        out: dict[int, float] = {}
        for span in self._ring:
            if span.phase == "exec" and span.pe >= 0:
                out[span.pe] = out.get(span.pe, 0.0) + span.dt
        return out

    def __len__(self) -> int:
        return len(self._ring)
