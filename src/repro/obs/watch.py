"""Live terminal dashboard over a JSONL flight recording.

``python -m repro.obs watch run.jsonl`` tails a recording *while the
run writes it* (the :class:`~repro.obs.recorder.JsonlSink` is
write-through, so the file is live) and redraws a frame every refresh
interval: GVT progress, commit/rollback rates, per-PE busy time and the
span phase breakdown.  The same code renders a finished recording — the
tail just reaches the ``stats`` line immediately.

Three design rules:

* **The reader never disturbs the writer.**  Watching is a separate
  process holding a read-only handle; it polls by byte offset and keeps
  a partial-line buffer, so a torn tail (the writer mid-line at poll
  time) is simply held until the next poll completes it.
* **Bounded memory.**  The tail keeps per-series point lists capped at
  a few thousand entries (uniformly thinned when they overflow), so
  watching an arbitrarily long run is O(1).
* **Headless-friendly.**  ``--once`` renders exactly one frame with no
  ANSI control sequences and exits 0 — the CI smoke mode.  The live
  loop clears the screen between frames and exits when the recording's
  final ``stats`` line appears (or on Ctrl-C).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.asciichart import plot
from repro.obs.spans import PHASES

__all__ = ["WatchState", "render_frame", "watch"]

#: Cap on stored points per series; overflow thins uniformly by 2.
_MAX_POINTS = 4096


class WatchState:
    """Incremental aggregation of a recording, fed line by line.

    Unlike :func:`~repro.obs.recorder.load_recording` this never holds
    the trace — per-event records are folded into counters on arrival —
    so it scales to recordings far larger than memory.
    """

    def __init__(self) -> None:
        self.header: dict | None = None
        self.stats: dict | None = None
        self.n_samples = 0
        self.trace_counts = {"EXEC": 0, "UNDO": 0, "COMMIT": 0}
        self.faults = 0
        self.bad_lines = 0
        #: Watchdog trips, per detector, plus the last few raw events
        #: (bounded) for the health panel.
        self.health_counts: dict[str, int] = {}
        self.health_last: list[dict] = []
        #: (round, value) point series for the charts.
        self.gvt_points: list[tuple[float, float]] = []
        self.commit_points: list[tuple[float, float]] = []
        self.undo_points: list[tuple[float, float]] = []
        self.pending_points: list[tuple[float, float]] = []
        #: Span aggregation: {phase: [count, seconds]} and per-PE busy.
        self.span_totals: dict[str, list] = {}
        self.busy_by_pe: dict[int, float] = {}

    def feed_line(self, line: str) -> None:
        """Fold one complete JSONL line into the state."""
        line = line.strip()
        if not line:
            return
        try:
            doc = json.loads(line)
        except ValueError:
            self.bad_lines += 1
            return
        kind = doc.get("t")
        if kind == "header":
            self.header = doc
        elif kind == "metric":
            rnd = float(doc.get("round", self.n_samples))
            self.n_samples += 1
            self._push(self.gvt_points, rnd, float(doc.get("gvt", 0.0)))
            self._push(self.commit_points, rnd, float(doc.get("committed", 0)))
            self._push(self.undo_points, rnd, float(doc.get("rolled_back", 0)))
            self._push(self.pending_points, rnd, float(doc.get("pending", 0)))
        elif kind == "trace":
            action = doc.get("a")
            if action in self.trace_counts:
                self.trace_counts[action] += 1
        elif kind == "span":
            ph = doc.get("ph", "?")
            dt = float(doc.get("dt", 0.0))
            tot = self.span_totals.setdefault(ph, [0, 0.0])
            tot[0] += 1
            tot[1] += dt
            if ph == "exec":
                pe = int(doc.get("pe", -1))
                self.busy_by_pe[pe] = self.busy_by_pe.get(pe, 0.0) + dt
        elif kind == "fault":
            self.faults += 1
        elif kind == "health":
            det = doc.get("detector", "?")
            self.health_counts[det] = self.health_counts.get(det, 0) + 1
            self.health_last.append(doc)
            if len(self.health_last) > 8:
                del self.health_last[0]
        elif kind == "stats":
            self.stats = doc

    @staticmethod
    def _push(points: list, x: float, y: float) -> None:
        points.append((x, y))
        if len(points) > _MAX_POINTS:
            del points[::2]

    @property
    def finished(self) -> bool:
        """True once the recording's final ``stats`` line has arrived."""
        return self.stats is not None


class _Tail:
    """Byte-offset tail of a growing file, tolerant of torn last lines."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._pos = 0
        self._buf = ""

    def poll(self, state: WatchState) -> int:
        """Feed every newly completed line into ``state``; returns count."""
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.seek(self._pos)
            chunk = fh.read()
            self._pos = fh.tell()
        if not chunk:
            return 0
        self._buf += chunk
        *complete, self._buf = self._buf.split("\n")
        for line in complete:
            state.feed_line(line)
        return len(complete)


def _fmt_seconds(s: float) -> str:
    return f"{s * 1e3:.1f}ms" if s < 1.0 else f"{s:.2f}s"


def render_frame(
    state: WatchState, *, height: int = 8, width: int = 60
) -> str:
    """Render one dashboard frame as plain text (no control sequences)."""
    lines: list[str] = []
    hdr = state.header or {}
    desc = " ".join(
        f"{k}={hdr[k]}"
        for k in ("engine", "workload", "n", "duration", "seed", "schema")
        if k in hdr
    )
    lines.append(f"repro.obs watch — {desc or 'waiting for header ...'}")
    lines.append("")

    if state.gvt_points:
        lines.append(plot({"gvt": state.gvt_points},
                          height=height, width=width, title="GVT progress"))
        lines.append("")
        rates = {"committed": state.commit_points}
        if any(y for _x, y in state.undo_points):
            rates["rolled_back"] = state.undo_points
        lines.append(plot(rates, height=height, width=width,
                          title="events per interval"))
        lines.append("")
    else:
        lines.append("(no metric samples yet)")
        lines.append("")

    if state.busy_by_pe:
        lines.append("busy by PE (exec spans)")
        total = sum(state.busy_by_pe.values()) or 1.0
        for pe in sorted(state.busy_by_pe):
            busy = state.busy_by_pe[pe]
            bar = "#" * max(1, round(busy / total * 40))
            lines.append(f"  pe{pe:<3} {_fmt_seconds(busy):>8} {bar}")
        lines.append("")
    if state.span_totals:
        lines.append("span phases")
        grand = sum(t[1] for t in state.span_totals.values()) or 1.0
        for ph in PHASES:
            tot = state.span_totals.get(ph)
            if tot is None:
                continue
            share = tot[1] / grand
            lines.append(
                f"  {ph:<10} {tot[0]:>7}x {_fmt_seconds(tot[1]):>9}"
                f"  {share * 100:5.1f}%"
            )
        lines.append("")

    if state.health_counts:
        lines.append("watchdog")
        for det in sorted(state.health_counts):
            lines.append(f"  {det:<16} {state.health_counts[det]:>4}x")
        for ev in state.health_last[-3:]:
            lines.append(
                "  last: [{}] -> {} @ boundary {} pos {}".format(
                    ev.get("detector", "?"), ev.get("action", "?"),
                    ev.get("boundary", "?"), ev.get("position", "?"),
                )
            )
        lines.append("")

    tc = state.trace_counts
    status = (
        f"samples={state.n_samples}  commits={tc['COMMIT']}  "
        f"undos={tc['UNDO']}  faults={state.faults}"
    )
    if state.health_counts:
        status += f"  health={sum(state.health_counts.values())}"
    if state.bad_lines:
        status += f"  bad_lines={state.bad_lines}"
    lines.append(status)
    if state.finished:
        st = state.stats
        lines.append(
            "finished: committed={} event_rate={:.0f}/s makespan={}".format(
                st.get("committed", "?"),
                float(st.get("event_rate", 0.0)),
                _fmt_seconds(float(st.get("makespan_seconds", 0.0))),
            )
        )
    else:
        lines.append("running ... (Ctrl-C to stop watching)")
    return "\n".join(lines)


def watch(
    path: str | Path,
    *,
    once: bool = False,
    interval: float = 0.5,
    height: int = 8,
    width: int = 60,
    out=None,
) -> int:
    """Tail ``path`` and render dashboard frames; returns an exit code.

    With ``once`` the current state of the file is rendered as a single
    plain frame (works mid-run and on finished recordings alike).  The
    live loop redraws every ``interval`` seconds and ends when the
    recording finishes.
    """
    import sys

    if out is None:
        out = sys.stdout
    state = WatchState()
    tail = _Tail(path)
    if once:
        tail.poll(state)
        print(render_frame(state, height=height, width=width), file=out)
        return 0
    try:
        while True:
            tail.poll(state)
            # ANSI clear + home; live mode only, so piped/CI output of
            # --once stays control-sequence-free.
            out.write("\x1b[2J\x1b[H")
            out.write(render_frame(state, height=height, width=width))
            out.write("\n")
            out.flush()
            if state.finished:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 130
