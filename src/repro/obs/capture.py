"""Capture plumbing: attach telemetry to a run and finalise the files.

The CLIs (``repro.hotpotato``, ``repro.bench``, ``repro.experiments``,
``benchmarks/profile_kernel.py``) all need the same four steps — open
sink(s), build a :class:`~repro.obs.metrics.MetricsRecorder` and/or
:class:`~repro.obs.recorder.StreamingTracer`, attach them to an engine,
and write the final stats line when the run ends.  :class:`RunCapture`
packages those steps; metrics and trace may go to separate files or
share one (pass the same path twice — record types are tagged, so one
file holds both streams).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.core.result import RunResult
from repro.obs.metrics import MetricsRecorder
from repro.obs.recorder import JsonlSink, StreamingTracer

__all__ = ["RunCapture"]


class RunCapture:
    """Telemetry capture for one run: sinks + recorder + tracer.

    Parameters
    ----------
    metrics_out:
        Path for GVT-interval metric samples, or ``None`` to skip
        metrics (fast paths stay installed either way — metrics sample
        only at GVT boundaries).
    trace_out:
        Path for the full event-lifecycle trace, or ``None`` to skip
        tracing (tracing disables the optimistic kernel's fused execute
        path for the run, as any tracer does).
    meta:
        Free-form run metadata for the header line (engine, workload,
        seed, CLI arguments ...).
    interval:
        Sequential-engine sampling period, in events (see
        :class:`~repro.obs.metrics.MetricsRecorder`).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`.  Its summary goes into
        the header and every scheduled fault event is written as a
        ``fault`` line up front, so forensics can line fault times up
        against the committed trace without the plan file in hand.
    """

    def __init__(
        self,
        metrics_out: str | Path | None = None,
        trace_out: str | Path | None = None,
        *,
        meta: Mapping | None = None,
        interval: int = 1024,
        fault_plan=None,
    ) -> None:
        self.meta = dict(meta) if meta else {}
        if fault_plan is not None:
            self.meta.setdefault("fault_events", len(fault_plan.events))
            self.meta.setdefault("fault_seed", fault_plan.seed)
            if fault_plan.has_transport_faults:
                self.meta.setdefault("fault_drop_rate", fault_plan.drop_rate)
                self.meta.setdefault("fault_dup_rate", fault_plan.dup_rate)
                self.meta.setdefault("fault_delay_rate", fault_plan.delay_rate)
        self._sinks: list[JsonlSink] = []
        metrics_sink = trace_sink = None
        if metrics_out is not None:
            metrics_sink = JsonlSink(metrics_out)
            self._sinks.append(metrics_sink)
        if trace_out is not None:
            if metrics_sink is not None and Path(trace_out) == Path(metrics_out):
                trace_sink = metrics_sink
            else:
                trace_sink = JsonlSink(trace_out)
                self._sinks.append(trace_sink)
        for sink in self._sinks:
            sink.write_header(self.meta)
            if fault_plan is not None:
                for fev in fault_plan.events:
                    sink.write_fault(fev.to_dict())
        self.metrics = (
            MetricsRecorder(metrics_sink, keep=False, interval=interval)
            if metrics_sink is not None
            else None
        )
        self.tracer = StreamingTracer(trace_sink) if trace_sink is not None else None

    @property
    def active(self) -> bool:
        """True when at least one output was requested."""
        return bool(self._sinks)

    def attach(self, engine) -> None:
        """Attach the recorder/tracer to any of the three engines."""
        if self.metrics is not None:
            engine.attach_metrics(self.metrics)
        if self.tracer is not None:
            engine.attach_tracer(self.tracer)

    def finalize(self, result: RunResult | None = None) -> None:
        """Write the final stats line(s) and close owned files."""
        if result is not None:
            stats = result.run.as_dict()
            for sink in self._sinks:
                sink.write_stats(stats)
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "RunCapture":
        return self

    def __exit__(self, *exc) -> None:
        for sink in self._sinks:
            sink.close()
