"""Capture plumbing: attach telemetry to a run and finalise the files.

The CLIs (``repro.hotpotato``, ``repro.bench``, ``repro.experiments``,
``benchmarks/profile_kernel.py``) all need the same four steps — open
sink(s), build a :class:`~repro.obs.metrics.MetricsRecorder` and/or
:class:`~repro.obs.recorder.StreamingTracer`, attach them to an engine,
and write the final stats line when the run ends.  :class:`RunCapture`
packages those steps; metrics and trace may go to separate files or
share one (pass the same path twice — record types are tagged, so one
file holds both streams).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.core.result import RunResult
from repro.obs.metrics import MetricsRecorder
from repro.obs.recorder import JsonlSink, StreamingTracer
from repro.obs.spans import SpanTracer

__all__ = ["RunCapture"]


class RunCapture:
    """Telemetry capture for one run: sinks + recorder + tracer.

    Parameters
    ----------
    metrics_out:
        Path for GVT-interval metric samples, or ``None`` to skip
        metrics (fast paths stay installed either way — metrics sample
        only at GVT boundaries).
    trace_out:
        Path for the full event-lifecycle trace, or ``None`` to skip
        tracing (tracing disables the optimistic kernel's fused execute
        path for the run, as any tracer does).
    spans_out:
        Path for wall-clock phase spans, or ``None`` to skip span
        tracing (spans record at phase boundaries only, so — unlike a
        trace — they keep the fused fast paths installed).
    health_out:
        Path for liveness-watchdog ``health`` lines, or ``None``.  The
        capture only owns the sink (exposed as :attr:`health_sink` and
        shared with the other streams when the paths match); the CLI
        passes it to :class:`repro.health.Watchdog` and attaches the
        watchdog itself.
    meta:
        Free-form run metadata for the header line (engine, workload,
        seed, CLI arguments ...).
    interval:
        Sequential-engine sampling period, in events (see
        :class:`~repro.obs.metrics.MetricsRecorder`).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`.  Its summary goes into
        the header and every scheduled fault event is written as a
        ``fault`` line up front, so forensics can line fault times up
        against the committed trace without the plan file in hand.
    injection_plan:
        Optional :class:`repro.scenarios.InjectionPlan`.  Same treatment
        as the fault plan: summary in the header, every adversary
        decision written as an ``adversary`` line up front.
    """

    def __init__(
        self,
        metrics_out: str | Path | None = None,
        trace_out: str | Path | None = None,
        spans_out: str | Path | None = None,
        *,
        health_out: str | Path | None = None,
        meta: Mapping | None = None,
        interval: int = 1024,
        fault_plan=None,
        injection_plan=None,
    ) -> None:
        self.meta = dict(meta) if meta else {}
        if fault_plan is not None:
            self.meta.setdefault("fault_events", len(fault_plan.events))
            self.meta.setdefault("fault_seed", fault_plan.seed)
            if fault_plan.has_transport_faults:
                self.meta.setdefault("fault_drop_rate", fault_plan.drop_rate)
                self.meta.setdefault("fault_dup_rate", fault_plan.dup_rate)
                self.meta.setdefault("fault_delay_rate", fault_plan.delay_rate)
        if injection_plan is not None:
            self.meta.setdefault("adversary", injection_plan.strategy)
            self.meta.setdefault("adversary_rate", injection_plan.rate)
            self.meta.setdefault("adversary_seed", injection_plan.seed)
            self.meta.setdefault(
                "adversary_generated", len(injection_plan.entries)
            )
        self._sinks: list[JsonlSink] = []
        metrics_sink = trace_sink = spans_sink = None
        if metrics_out is not None:
            metrics_sink = JsonlSink(metrics_out)
            self._sinks.append(metrics_sink)
        if trace_out is not None:
            if metrics_sink is not None and Path(trace_out) == Path(metrics_out):
                trace_sink = metrics_sink
            else:
                trace_sink = JsonlSink(trace_out)
                self._sinks.append(trace_sink)
        if spans_out is not None:
            for existing in self._sinks:
                if Path(spans_out) == existing.path:
                    spans_sink = existing
                    break
            else:
                spans_sink = JsonlSink(spans_out)
                self._sinks.append(spans_sink)
        health_sink = None
        if health_out is not None:
            for existing in self._sinks:
                if Path(health_out) == existing.path:
                    health_sink = existing
                    break
            else:
                health_sink = JsonlSink(health_out)
                self._sinks.append(health_sink)
        for sink in self._sinks:
            sink.write_header(self.meta)
            if fault_plan is not None:
                for fev in fault_plan.events:
                    sink.write_fault(fev.to_dict())
            if injection_plan is not None:
                for iev in injection_plan.entries:
                    sink.write_adversary(iev.to_dict())
        self.metrics = (
            MetricsRecorder(metrics_sink, keep=False, interval=interval)
            if metrics_sink is not None
            else None
        )
        self.tracer = StreamingTracer(trace_sink) if trace_sink is not None else None
        self.spans = SpanTracer(sink=spans_sink) if spans_sink is not None else None
        self._metrics_sink = metrics_sink
        self._trace_sink = trace_sink
        self._spans_sink = spans_sink
        #: Sink for watchdog ``health`` lines (None unless requested);
        #: pass to ``Watchdog(cfg, sink=capture.health_sink)``.
        self.health_sink = health_sink

    @property
    def active(self) -> bool:
        """True when at least one output was requested."""
        return bool(self._sinks)

    # ------------------------------------------------------------------
    # Checkpoint support (see repro.ckpt): a checkpoint records how far
    # each sink has written, so a resumed run can truncate the files back
    # to that point and continue producing byte-identical output.
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Flush sinks and return everything :meth:`resume` needs."""
        from repro.errors import SnapshotError

        for sink in self._sinks:
            if sink.path is None:
                raise SnapshotError(
                    "cannot checkpoint a stream-backed telemetry sink; "
                    "record to files to use checkpointing"
                )
        state: dict = {
            "meta": dict(self.meta),
            "sinks": [
                {"path": str(sink.path), **sink.checkpoint_state()}
                for sink in self._sinks
            ],
            "metrics_sink": (
                self._sinks.index(self._metrics_sink)
                if self._metrics_sink is not None
                else None
            ),
            "trace_sink": (
                self._sinks.index(self._trace_sink)
                if self._trace_sink is not None
                else None
            ),
            "spans_sink": (
                self._sinks.index(self._spans_sink)
                if self._spans_sink is not None
                else None
            ),
            "health_sink": (
                self._sinks.index(self.health_sink)
                if self.health_sink is not None
                else None
            ),
            "metrics": None,
            "tracer": None,
        }
        recorder = self.metrics
        if recorder is not None:
            state["metrics"] = {
                "prev": dict(recorder._prev),
                "prev_kp": (
                    list(recorder._prev_kp)
                    if recorder._prev_kp is not None
                    else None
                ),
                "n_samples": recorder.n_samples,
                "interval": recorder.interval,
            }
        if self.tracer is not None:
            state["tracer"] = dict(self.tracer.counts)
        return state

    @classmethod
    def resume(cls, state: dict) -> "RunCapture":
        """Rebuild a capture from :meth:`checkpoint_state` output.

        Each sink's file is truncated back to the checkpointed byte
        offset and reopened for append; headers are *not* rewritten, and
        the metric recorder's delta baselines and the tracer's counts are
        restored, so the finished files are byte-identical to an
        uninterrupted run's.
        """
        cap = cls.__new__(cls)
        cap.meta = dict(state["meta"])
        cap._sinks = [
            JsonlSink.resume(s["path"], s) for s in state["sinks"]
        ]
        mi, ti = state["metrics_sink"], state["trace_sink"]
        si = state.get("spans_sink")  # absent in pre-span snapshots
        hi = state.get("health_sink")  # absent in pre-health snapshots
        cap._metrics_sink = cap._sinks[mi] if mi is not None else None
        cap._trace_sink = cap._sinks[ti] if ti is not None else None
        cap._spans_sink = cap._sinks[si] if si is not None else None
        cap.health_sink = cap._sinks[hi] if hi is not None else None
        # Spans are wall-clock measurements, the one non-deterministic
        # stream — a resumed run starts a fresh tracer rather than
        # pretending to continue timings from a dead process.
        cap.spans = (
            SpanTracer(sink=cap._spans_sink)
            if cap._spans_sink is not None
            else None
        )
        cap.metrics = None
        if state["metrics"] is not None:
            ms = state["metrics"]
            recorder = MetricsRecorder(
                cap._metrics_sink, keep=False, interval=ms["interval"]
            )
            recorder._prev.update(ms["prev"])
            recorder._prev_kp = (
                list(ms["prev_kp"]) if ms["prev_kp"] is not None else None
            )
            recorder.n_samples = ms["n_samples"]
            cap.metrics = recorder
        cap.tracer = None
        if state["tracer"] is not None:
            cap.tracer = StreamingTracer(cap._trace_sink)
            cap.tracer.counts.update(state["tracer"])
        return cap

    def attach(self, engine) -> None:
        """Attach the recorder/tracer/spans to any of the three engines."""
        if self.metrics is not None:
            engine.attach_metrics(self.metrics)
        if self.tracer is not None:
            engine.attach_tracer(self.tracer)
        if self.spans is not None:
            engine.attach_spans(self.spans)

    def finalize(self, result: RunResult | None = None) -> None:
        """Write the final stats line(s) and close owned files."""
        if result is not None:
            stats = result.run.as_dict()
            for sink in self._sinks:
                sink.write_stats(stats)
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "RunCapture":
        return self

    def __exit__(self, *exc) -> None:
        for sink in self._sinks:
            sink.close()
