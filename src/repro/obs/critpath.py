"""Critical-path analysis of a committed event trace.

A Time Warp run can be rolled back, re-executed and reordered at will,
but the *committed* events form a fixed causal structure: every event
depends on the previous committed event at its destination LP (state
carries forward), and — when it was sent from another LP — on the event
at its origin whose execution produced it.  The longest dependency chain
through that DAG is the **critical path**; no schedule, conservative or
optimistic, on any number of processors, can finish in fewer steps.
``events / path_length`` is therefore an upper bound on achievable
speedup for this workload — the observability counterpart of the
report's Fig 5 scaling curves.

Two approximations keep this analyzer trace-only (no kernel hooks, no
extra recording cost):

* The committed trace does not record which *execution* produced a
  given send, so the sender dependency is approximated conservatively
  as the **latest committed event at the origin LP with a strictly
  smaller timestamp** — the real producer executed no later than that,
  so the reported path length is an upper bound (and the speedup bound
  remains a valid bound).
* Dependencies are structural (LP state order + send order), not
  model-semantic; an LP whose handler ignores a message still counts.

Everything here is a pure function of
:meth:`~repro.core.trace.Tracer.committed_sequence` output — the
sorted, engine-independent determinism tuples — so two processes
analyzing the same workload produce bit-identical reports (asserted in
CI).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence

__all__ = ["CritPathReport", "critical_path"]


@dataclass(frozen=True)
class CritPathReport:
    """Result of :func:`critical_path` over one committed trace.

    ``lp_heights`` maps each LP to the depth of its deepest event — how
    much of the critical path runs through it; ``lp_slack`` is the
    complement (``path_length - height``): LPs with large slack could
    lag that many steps behind the frontier without slowing the run.
    ``witness`` is one concrete longest chain as ``(depth, lp, ts)``
    hops, deepest last.
    """

    events: int
    lps: int
    path_length: int
    speedup_bound: float
    lp_heights: dict[int, int]
    lp_slack: dict[int, int]
    path_lp_events: dict[int, int]
    witness: tuple[tuple[int, int, float], ...]

    def as_dict(self, *, max_witness: int | None = 16) -> dict:
        """JSON-ready form (string keys, sorted, witness optionally capped).

        The output is a pure function of the committed trace, so two
        processes serializing with ``sort_keys`` produce identical bytes
        — the cross-process determinism check for this analyzer.
        """
        witness = list(self.witness)
        trimmed = 0
        if max_witness is not None and len(witness) > max_witness:
            # Keep both ends of the chain; the middle is the least
            # informative part of a long witness.
            head = max_witness // 2
            tail = max_witness - head
            trimmed = len(witness) - max_witness
            witness = witness[:head] + witness[-tail:]
        return {
            "events": self.events,
            "lps": self.lps,
            "path_length": self.path_length,
            "speedup_bound": self.speedup_bound,
            "lp_heights": {str(k): v for k, v in sorted(self.lp_heights.items())},
            "lp_slack": {str(k): v for k, v in sorted(self.lp_slack.items())},
            "path_lp_events": {
                str(k): v for k, v in sorted(self.path_lp_events.items())
            },
            "witness": [[d, lp, ts] for d, lp, ts in witness],
            "witness_trimmed": trimmed,
        }


def critical_path(commits: Sequence[tuple]) -> CritPathReport:
    """Analyze a committed sequence (``(ts, origin, seq, dst, kind)`` tuples).

    ``commits`` must be sorted by event key, exactly as
    ``committed_sequence()`` returns it.  Runs in ``O(E log E)``: one
    pass with a binary search per cross-LP dependency.
    """
    commits = list(commits)
    n = len(commits)
    depths = [0] * n
    parents = [-1] * n
    # Per-LP histories in execution order (the key-sorted trace restricts
    # to execution order at each destination LP, and per-LP depths are
    # strictly increasing, so ``ts_hist`` stays sorted for bisect).
    ts_hist: dict[int, list[float]] = {}
    depth_hist: dict[int, list[int]] = {}
    idx_hist: dict[int, list[int]] = {}
    for i, (ts, origin, _seq, dst, _kind) in enumerate(commits):
        best = 0
        parent = -1
        dh = depth_hist.get(dst)
        if dh:
            # State dependency: the previous committed event at dst.
            best = dh[-1]
            parent = idx_hist[dst][-1]
        if origin != dst:
            # Sender dependency (conservative; see module docstring).
            oh = ts_hist.get(origin)
            if oh:
                j = bisect_left(oh, ts) - 1
                if j >= 0 and depth_hist[origin][j] > best:
                    best = depth_hist[origin][j]
                    parent = idx_hist[origin][j]
        depth = best + 1
        depths[i] = depth
        parents[i] = parent
        if dh is None:
            ts_hist[dst] = [ts]
            depth_hist[dst] = [depth]
            idx_hist[dst] = [i]
        else:
            ts_hist[dst].append(ts)
            dh.append(depth)
            idx_hist[dst].append(i)

    if n == 0:
        return CritPathReport(
            events=0,
            lps=0,
            path_length=0,
            speedup_bound=0.0,
            lp_heights={},
            lp_slack={},
            path_lp_events={},
            witness=(),
        )

    length = max(depths)
    # First deepest event (ties broken by trace order → deterministic).
    tip = depths.index(length)
    witness = []
    i = tip
    while i != -1:
        ts, _origin, _seq, dst, _kind = commits[i]
        witness.append((depths[i], dst, ts))
        i = parents[i]
    witness.reverse()
    path_lp_events: dict[int, int] = {}
    for _d, lp, _ts in witness:
        path_lp_events[lp] = path_lp_events.get(lp, 0) + 1
    # Per-LP depths increase strictly, so each history's last entry is
    # that LP's height.
    lp_heights = {lp: dh[-1] for lp, dh in depth_hist.items()}
    lp_slack = {lp: length - h for lp, h in lp_heights.items()}
    return CritPathReport(
        events=n,
        lps=len(depth_hist),
        path_length=length,
        speedup_bound=n / length,
        lp_heights=lp_heights,
        lp_slack=lp_slack,
        path_lp_events=path_lp_events,
        witness=tuple(witness),
    )
