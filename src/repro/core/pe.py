"""Processing elements: the units of (simulated) parallelism.

"ROSS divides up the simulation tasks among processors (PEs), which then
execute their assigned tasks optimistically ... each processor operates
semi-autonomously by assuming that the information that it currently has
is correct and complete" (§3.2.1).

Each PE owns a pending-event queue and executes events in local key order.
The executive (see :mod:`repro.core.optimistic`) schedules PEs round-robin,
giving each an *optimism batch*; because a PE may run ahead of its peers in
virtual time, messages from other PEs can arrive in its past — stragglers —
triggering rollbacks exactly as on real shared-memory hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.queue import make_pending_queue
from repro.core.stats import PEStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimistic import TimeWarpKernel

__all__ = ["ProcessingElement"]


class ProcessingElement:
    """One simulated processor: a pending queue plus cost accounting."""

    __slots__ = ("id", "kp_ids", "lp_count", "pending", "stats", "event_cost")

    def __init__(self, pe_id: int, queue: str = "heap") -> None:
        self.id = pe_id
        self.kp_ids: list[int] = []
        self.lp_count = 0
        self.pending = make_pending_queue(queue)
        self.stats = PEStats()
        #: Per-event forward cost including this PE's cache factor;
        #: finalised by the kernel once the LP population is mapped.
        self.event_cost = 0.0

    def process_batch(
        self, kernel: "TimeWarpKernel", max_events: int, limit_ts: float
    ) -> int:
        """Execute up to ``max_events`` pending events below ``limit_ts``.

        ``limit_ts`` is the end-time barrier, optionally tightened to
        ``GVT + window`` by the executive's virtual-time optimism window.
        Returns the number of events executed.  Execution happens in local
        key order; sends during execution are delivered immediately by the
        kernel and may roll back other PEs (or other KPs on this PE).
        """
        done = 0
        pop_below = self.pending.pop_below
        execute = kernel.execute
        while done < max_events:
            ev = pop_below(limit_ts)
            if ev is None:
                break
            execute(self, ev)
            done += 1
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessingElement(id={self.id}, lps={self.lp_count})"
