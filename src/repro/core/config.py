"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import CostModel
from repro.errors import ConfigurationError

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Configuration for an optimistic (Time Warp) run.

    Parameters mirror the knobs the report varies: number of PEs (Figs 5/6),
    number of KPs (Figs 7/8), mapping strategy (§3.2.3) and the rollback
    strategy (ROSS's reverse computation vs GTW-style state saving).

    Attributes
    ----------
    end_time:
        Virtual-time barrier; only events strictly below it execute (the
        report's ``SIMULATION_DURATION``).
    n_pes, n_kps:
        Processing elements and kernel processes.  ``n_kps`` must be a
        multiple of ``n_pes``; the report uses 64 KPs by default.
    batch_size:
        Events a PE executes per scheduling round before yielding — the
        optimism budget.  Larger batches mean PEs run further ahead of each
        other, producing more stragglers and rollbacks.
    window:
        Optional *virtual-time* optimism window: when set, each PE also
        stops its round at ``GVT + window``, so per-round optimism scales
        with the model's event density instead of being a fixed event
        count.  This matches ROSS's behaviour, where each PE drains what
        it has between GVT epochs; use it (with a generous batch_size cap)
        for the speed-up and KP experiments.
    gvt_interval:
        Scheduling rounds between GVT computations / fossil collections.
    mapping:
        ``"block"``, ``"striped"`` or ``"random"`` (see
        :mod:`repro.core.mapping`).
    rollback:
        ``"reverse"`` (reverse computation) or ``"copy"`` (state saving).
    transport:
        ``"immediate"`` (shared-memory pointer handoff, the ROSS model) or
        ``"mailbox"`` (cross-PE delivery deferred to round boundaries).
    gvt:
        ``"synchronous"`` (Fujimoto-style barrier reduction) or
        ``"mattern"`` (token-ring algorithm over the mailbox transport).
    cancellation:
        ``"aggressive"`` — a rollback immediately cancels every message the
        undone events sent (classic Time Warp).  ``"lazy"`` — undone events
        keep their messages; when the event re-executes, regenerated
        messages identical to the originals are *reused* in place, sparing
        the receivers any cancellation or secondary rollback.  Results are
        identical either way (reuse only happens on exact matches); lazy
        wins when rollbacks rarely change what events send.
    adaptive:
        Enable the optimism throttle (:mod:`repro.core.throttle`):
        ``batch_size``/``window`` become ceilings that the executive scales
        down when the measured rollback fraction spikes and restores when
        it subsides.  Deterministic, like everything else.
    queue:
        Pending-event structure per PE: ``"heap"`` (binary heap),
        ``"ladder"`` (ladder queue) or ``"splay"`` (ROSS's splay tree).
        Identical ordering and results; a pure performance choice.
    executor:
        ``"scalar"`` — one event at a time through ``LogicalProcess.forward``
        (the oracle path).  ``"vectorized"`` — ask the model for its
        struct-of-arrays LP build (:meth:`~repro.core.lp.Model.build_vectorized`)
        and, where the engine supports it, step same-timestamp-band event
        runs through fused per-kind loops.  Models without an SoA build
        fall back to scalar silently; results are bit-identical either
        way (the executor-ABI conformance suite asserts this).
    pool:
        Recycle fossil-collected events through a per-kernel free list
        (:class:`~repro.core.event.EventPool`) instead of re-allocating.
        Observationally invisible — results are bit-identical with it on
        or off (the determinism suite asserts this); a pure performance
        choice, on by default.
    parallelism:
        ``"inline"`` — the whole kernel runs in this process (PEs are
        simulated concurrency, the default).  ``"process"`` — the run is
        split across ``procs`` OS processes, each owning an equal slice
        of the PEs and exchanging events over pickle-free shared-memory
        rings (see :mod:`repro.mp` and docs/KERNEL.md "Multicore
        execution").  Committed results are bit-identical either way.
    procs:
        Worker process count for ``parallelism="process"``.  Must divide
        ``n_pes``; ignored (and forced to 1) in inline mode.
    seed:
        Global seed from which every LP RNG stream is derived.
    paranoid:
        Run the opt-in invariant checks (:mod:`repro.core.invariants`)
        at every GVT epoch: queue order, GVT monotonicity, processed
        order, packet conservation.  O(live events) per epoch; off by
        default, observationally invisible when on.
    cost:
        The virtual wall-clock :class:`~repro.core.costmodel.CostModel`.
    """

    end_time: float
    n_pes: int = 1
    n_kps: int = 1
    batch_size: int = 16
    window: float | None = None
    gvt_interval: int = 1
    mapping: str = "block"
    rollback: str = "reverse"
    transport: str = "immediate"
    gvt: str = "synchronous"
    cancellation: str = "aggressive"
    adaptive: bool = False
    queue: str = "heap"
    executor: str = "scalar"
    pool: bool = True
    parallelism: str = "inline"
    procs: int = 1
    seed: int = 0x5EED
    paranoid: bool = False
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.end_time <= 0:
            raise ConfigurationError(f"end_time must be positive, got {self.end_time}")
        if self.n_pes < 1:
            raise ConfigurationError(f"n_pes must be >= 1, got {self.n_pes}")
        if self.n_kps < self.n_pes:
            raise ConfigurationError(
                f"need at least one KP per PE (n_kps={self.n_kps}, n_pes={self.n_pes})"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.window is not None and self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if self.cancellation not in ("aggressive", "lazy"):
            raise ConfigurationError(
                f"cancellation must be 'aggressive' or 'lazy', "
                f"got {self.cancellation!r}"
            )
        if self.gvt_interval < 1:
            raise ConfigurationError(
                f"gvt_interval must be >= 1, got {self.gvt_interval}"
            )
        if self.queue not in ("heap", "ladder", "splay"):
            raise ConfigurationError(
                f"queue must be 'heap', 'ladder' or 'splay', got {self.queue!r}"
            )
        if self.executor not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f"executor must be 'scalar' or 'vectorized', "
                f"got {self.executor!r}"
            )
        if self.parallelism not in ("inline", "process"):
            raise ConfigurationError(
                f"parallelism must be 'inline' or 'process', "
                f"got {self.parallelism!r}"
            )
        if self.procs < 1:
            raise ConfigurationError(f"procs must be >= 1, got {self.procs}")
        if self.parallelism == "process":
            if self.n_pes % self.procs:
                raise ConfigurationError(
                    f"procs must divide n_pes in process mode "
                    f"(n_pes={self.n_pes}, procs={self.procs})"
                )
            if self.transport != "immediate":
                raise ConfigurationError(
                    "process mode owns cross-worker delivery; the in-worker "
                    f"transport must be 'immediate', got {self.transport!r}"
                )
            if self.gvt != "synchronous":
                raise ConfigurationError(
                    "process mode computes GVT with its own cross-process "
                    "token waves; the in-worker gvt manager must be "
                    f"'synchronous', got {self.gvt!r}"
                )
            if self.paranoid and self.procs > 1:
                raise ConfigurationError(
                    "paranoid invariant checks are per-worker and would "
                    "false-alarm on cross-worker packet conservation; run "
                    "paranoid inline (or with procs=1) instead"
                )
