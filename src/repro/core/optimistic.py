"""The optimistic (Time Warp) engine: kernel plus round-robin executive.

This is the ROSS analog.  The kernel owns the LP population, the KP/PE
structure, the transport, rollback strategy, GVT manager and all statistics;
the executive schedules PEs round-robin, each executing an *optimism batch*
of events per round.  Because PEs run ahead of each other in virtual time,
cross-PE messages genuinely arrive in the receiver's past, producing real
stragglers, rollbacks, anti-message cascades and fossil collection — the
full Time Warp dynamic, deterministic and repeatable.

Hardware substitution (see DESIGN.md): the PEs are *simulated* processors
multiplexed on one OS thread.  Every count the report's figures use
(events processed, rolled back, remote messages, rounds) is measured from
the real execution; wall-clock speed is derived from those counts through
the calibrated :class:`~repro.core.costmodel.CostModel`.

Why the interleaving is safe (the invariant the implementation leans on):
any rollback triggered while event ``e`` is being processed was caused by a
message ``e`` itself sent, whose timestamp is strictly greater than
``e.ts``; therefore every event undone by the cascade has a key greater
than ``e``'s and neither ``e`` nor its parent can be affected mid-flight.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.config import EngineConfig
from repro.core.event import Event, _next_serial
from repro.core.executor import Executor
from repro.core.gvt import make_gvt_manager
from repro.core.invariants import check_optimistic
from repro.core.kp import KernelProcess
from repro.core.lp import LogicalProcess, Model
from repro.core.mapping import build_mapping
from repro.core.pe import ProcessingElement
from repro.core.result import RunResult
from repro.core.rollback import make_strategy
from repro.core.stats import RunStats
from repro.core.throttle import Throttle
from repro.core.transport import make_transport
from repro.errors import ConfigurationError, SchedulingError
from repro.vt.time import TIME_HORIZON, EventKey

__all__ = ["TimeWarpKernel", "run_optimistic"]

_tuple_new = tuple.__new__


def _compile_send(kernel: "TimeWarpKernel", lp, use_heap: bool):
    """Build the fused per-LP send fast path.

    This is ``LogicalProcess._kernel_send`` + ``EventPool.acquire`` +
    ``TimeWarpKernel._emit`` collapsed into one closure: one frame per
    send instead of three, with every piece of kernel state that is
    constant for the run (and for this source LP) captured as a cell
    variable instead of re-read through attribute chains.  Only compiled
    for the immediate transport, where delivery can be inlined too.
    Specialised per cancellation mode: the aggressive variant carries no
    lazy-reuse check at all (``_lazy_pool`` can never be set), the lazy
    variant batches divergent anti-messages (see ``_flush_antimsgs``).

    Correctness contract: the operation sequence is *identical* to the
    generic path — same validation, same RNG/sequence usage, same stats,
    same straggler handling — so fused and generic runs are bit-identical
    (the determinism suite compares them).
    """
    lp_id = lp.id
    pe_of_lp = kernel.pe_of_lp
    src_pe = pe_of_lp[lp_id]
    src_stats = kernel._stats_by_pe[src_pe]
    cost_local = kernel._cost_local
    cost_remote = kernel._cost_remote
    pool = kernel.pool
    pool_free = pool._free if pool is not None else ()
    gvt = kernel.gvt_manager
    on_send = gvt.on_send if kernel._gvt_send_hook else None
    on_receive = gvt.on_receive if kernel._gvt_recv_hook else None
    kp_of_lp = kernel._kp_of_lp
    pe_by_lp = kernel._pe_by_lp
    pending_by_lp = [pe.pending for pe in pe_by_lp]
    processed_by_lp = [kp.processed for kp in kp_of_lp]
    serial = _next_serial
    straggler = kernel._straggler
    batch_append = kernel._antimsg_batch.append

    if not kernel.lazy:

        def fast_send(ts, dst, kind, data=None):
            if ts <= lp._now:
                raise SchedulingError(
                    f"LP {lp_id} tried to send {kind!r} at ts={ts} while "
                    f"processing ts={lp._now}; sends must move strictly forward"
                )
            seq = lp.send_seq
            lp.send_seq = seq + 1
            key = _tuple_new(EventKey, (ts, lp_id, seq))
            # Inlined EventPool.acquire.
            if pool_free:
                pool.hits += 1
                ev = pool_free.pop()
                ev.key = key
                ev.dst = dst
                ev.kind = kind
                ev.data = data if data is not None else {}
                ev.rng_draws = 0
                ev.prev_send_seq = 0
                ev.processed = False
                ev.color = 0
                entry = ev.entry = (ts, lp_id, seq, serial(), ev)
            else:
                if pool is not None:
                    pool.allocs += 1
                ev = Event(key, dst, kind, data)
                entry = ev.entry
            # Inlined TimeWarpKernel._emit.
            current = kernel._current_event
            dst_pe = pe_of_lp[dst]
            if current is not None:
                current.sent.append(ev)
            if src_pe == dst_pe:
                src_stats.local_sends += 1
                units = cost_local
            else:
                src_stats.remote_sends += 1
                units = cost_remote
            src_stats.busy += units
            src_stats.round_busy += units
            if on_send is not None:
                on_send(src_pe, ev)
            if on_receive is not None:
                on_receive(dst_pe, ev)
            q = pending_by_lp[dst]
            if use_heap:
                # Inlined PendingQueue.push.
                heappush(q._heap, entry)
                ev.in_pending = True
                q._live += 1
            else:
                q.push(ev)
            processed = processed_by_lp[dst]
            if processed and processed[-1].key > key:
                straggler(pe_by_lp[dst], kp_of_lp[dst], ev)
            return ev

        return fast_send

    def fast_send_lazy(ts, dst, kind, data=None):
        if ts <= lp._now:
            raise SchedulingError(
                f"LP {lp_id} tried to send {kind!r} at ts={ts} while "
                f"processing ts={lp._now}; sends must move strictly forward"
            )
        seq = lp.send_seq
        lp.send_seq = seq + 1
        key = _tuple_new(EventKey, (ts, lp_id, seq))
        # Inlined EventPool.acquire.
        if pool_free:
            pool.hits += 1
            ev = pool_free.pop()
            ev.key = key
            ev.dst = dst
            ev.kind = kind
            ev.data = data if data is not None else {}
            ev.rng_draws = 0
            ev.prev_send_seq = 0
            ev.processed = False
            ev.color = 0
            entry = ev.entry = (ts, lp_id, seq, serial(), ev)
        else:
            if pool is not None:
                pool.allocs += 1
            ev = Event(key, dst, kind, data)
            entry = ev.entry
        # Inlined TimeWarpKernel._emit.
        current = kernel._current_event
        lazy = kernel._lazy_pool
        if lazy is not None:
            old = lazy.pop(key, None)
            if old is not None:
                if (
                    not old.cancelled
                    and old.dst == dst
                    and old.kind == kind
                    and old.data == ev.data
                ):
                    current.sent.append(old)
                    kernel.lazy_reused += 1
                    return ev
                # Genuinely divergent send: batch the anti-message; the
                # flush runs after this forward completes, before any
                # other event can execute.
                batch_append(old)
        dst_pe = pe_of_lp[dst]
        if current is not None:
            current.sent.append(ev)
        if src_pe == dst_pe:
            src_stats.local_sends += 1
            units = cost_local
        else:
            src_stats.remote_sends += 1
            units = cost_remote
        src_stats.busy += units
        src_stats.round_busy += units
        if on_send is not None:
            on_send(src_pe, ev)
        if on_receive is not None:
            on_receive(dst_pe, ev)
        q = pending_by_lp[dst]
        if use_heap:
            # Inlined PendingQueue.push.
            heappush(q._heap, entry)
            ev.in_pending = True
            q._live += 1
        else:
            q.push(ev)
        processed = processed_by_lp[dst]
        if processed and processed[-1].key > key:
            straggler(pe_by_lp[dst], kp_of_lp[dst], ev)
        return ev

    return fast_send_lazy


def _compile_execute(kernel: "TimeWarpKernel"):
    """Build the fused event-execution fast path.

    ``TimeWarpKernel.execute`` with run-constant state captured in cells;
    only installed when no tracer is attached (the generic method keeps
    the tracer hook).  Same operation sequence as the method.  Compiled
    per cancellation mode: under aggressive cancellation ``lazy_sent`` is
    never set and ``_lazy_pool`` is never read, so the variant carries
    neither; the lazy variant flushes the anti-message batch after each
    forward execution.
    """
    lps = kernel.lps
    snapshot_before = kernel._snapshot_before
    processed_append_by_lp = [kp.processed.append for kp in kernel._kp_of_lp]

    if not kernel.lazy:

        def fast_execute(pe, ev):
            dst = ev.dst
            lp = lps[dst]
            ev.sent.clear()
            ev.snapshot = None
            ev.prev_send_seq = lp.send_seq
            if snapshot_before is not None:
                snapshot_before(lp, ev)
            rng = lp.rng
            rng_before = rng._count
            lp._now = ev.entry[0]
            kernel._current_event = ev
            try:
                lp.forward(ev)
            finally:
                kernel._current_event = None
            ev.rng_draws = rng._count - rng_before
            ev.processed = True
            processed_append_by_lp[dst](ev)
            stats = pe.stats
            stats.processed += 1
            units = pe.event_cost
            stats.busy += units
            stats.round_busy += units

        return fast_execute

    batch = kernel._antimsg_batch
    flush = kernel._flush_antimsgs

    def fast_execute_lazy(pe, ev):
        dst = ev.dst
        lp = lps[dst]
        pool = None
        lz = ev.lazy_sent
        if lz:
            pool = {c.key: c for c in lz}
            ev.lazy_sent = None
        ev.sent.clear()
        ev.snapshot = None
        ev.prev_send_seq = lp.send_seq
        if snapshot_before is not None:
            snapshot_before(lp, ev)
        rng = lp.rng
        rng_before = rng._count
        lp._now = ev.entry[0]
        kernel._current_event = ev
        kernel._lazy_pool = pool
        try:
            lp.forward(ev)
        finally:
            kernel._current_event = None
            kernel._lazy_pool = None
        if pool:
            # Messages the re-execution did not regenerate are orphans.
            batch.extend(pool.values())
        if batch:
            flush()
        ev.rng_draws = rng._count - rng_before
        ev.processed = True
        processed_append_by_lp[dst](ev)
        stats = pe.stats
        stats.processed += 1
        units = pe.event_cost
        stats.busy += units
        stats.round_busy += units

    return fast_execute_lazy


def _compile_batch(kernel: "TimeWarpKernel", pe, use_heap: bool):
    """Build the fused per-PE batch loop.

    ``ProcessingElement.process_batch`` + ``PendingQueue.pop_below`` +
    the fused execute body collapsed into one closure: the scheduler's
    innermost loop runs without a single Python-level call beyond
    ``lp.forward`` and the send path.  Installed under exactly the same
    conditions as the fused execute (immediate transport, no tracer) and
    with the identical operation sequence, so fused and generic runs stay
    bit-identical — including the per-event order of the floating-point
    busy charges, which rollback charges interleave with.

    Rollbacks triggered mid-loop mutate the same heap list and stats
    objects captured here (they are never rebound), so the hoisted locals
    stay valid across re-entrant sends.
    """
    lps = kernel.lps
    snapshot_before = kernel._snapshot_before
    processed_append_by_lp = [kp.processed.append for kp in kernel._kp_of_lp]
    pending = pe.pending
    heap = pending._heap if use_heap else None
    pop_below = pending.pop_below
    stats = pe.stats
    event_cost = pe.event_cost
    batch = kernel._antimsg_batch
    flush = kernel._flush_antimsgs

    if not kernel.lazy:
        if use_heap:

            def fast_batch(max_events, limit_ts):
                # ``_live`` and ``stats.processed`` are settled once per
                # batch in the ``finally`` below: both are plain counters
                # that nothing reads mid-batch (the run loop, GVT, fossil
                # collection and telemetry all run between batches), and
                # re-entrant sends/rollbacks only ever ``+=``/``-=`` them,
                # which commutes with the deferred decrement.  The float
                # busy charges stay per-event: rollback charges interleave
                # with them and the accumulation order is part of the
                # fused-vs-generic bit-identity contract.
                done = 0
                try:
                    while done < max_events:
                        # --- inlined PendingQueue.pop_below -----------
                        while True:
                            if not heap:
                                return done
                            entry = heap[0]
                            ev = entry[4]
                            if ev.cancelled:
                                heappop(heap)
                                ev.in_pending = False
                                continue
                            if entry[0] >= limit_ts:
                                return done
                            heappop(heap)
                            ev.in_pending = False
                            break
                        # --- inlined fused execute body ---------------
                        dst = ev.dst
                        lp = lps[dst]
                        ev.sent.clear()
                        ev.prev_send_seq = lp.send_seq
                        if snapshot_before is not None:
                            ev.snapshot = None
                            snapshot_before(lp, ev)
                        # (Under reverse computation ``ev.snapshot`` is
                        # already None — nothing on that strategy's path
                        # ever sets it — so the per-event clear is
                        # elided.)
                        rng = lp.rng
                        rng_before = rng._count
                        lp._now = ev.entry[0]
                        kernel._current_event = ev
                        try:
                            lp.forward(ev)
                        finally:
                            kernel._current_event = None
                        ev.rng_draws = rng._count - rng_before
                        ev.processed = True
                        processed_append_by_lp[dst](ev)
                        stats.busy += event_cost
                        stats.round_busy += event_cost
                        done += 1
                    return done
                finally:
                    if done:
                        pending._live -= done
                        stats.processed += done

            return fast_batch

        def fast_batch(max_events, limit_ts):
            done = 0
            while done < max_events:
                ev = pop_below(limit_ts)
                if ev is None:
                    return done
                # --- inlined fused execute body -----------------------
                dst = ev.dst
                lp = lps[dst]
                ev.sent.clear()
                ev.prev_send_seq = lp.send_seq
                if snapshot_before is not None:
                    ev.snapshot = None
                    snapshot_before(lp, ev)
                rng = lp.rng
                rng_before = rng._count
                lp._now = ev.entry[0]
                kernel._current_event = ev
                try:
                    lp.forward(ev)
                finally:
                    kernel._current_event = None
                ev.rng_draws = rng._count - rng_before
                ev.processed = True
                processed_append_by_lp[dst](ev)
                stats.processed += 1
                stats.busy += event_cost
                stats.round_busy += event_cost
                done += 1
            return done

        return fast_batch

    def fast_batch_lazy(max_events, limit_ts):
        done = 0
        while done < max_events:
            # --- inlined PendingQueue.pop_below -----------------------
            if use_heap:
                while True:
                    if not heap:
                        return done
                    entry = heap[0]
                    ev = entry[4]
                    if ev.cancelled:
                        heappop(heap)
                        ev.in_pending = False
                        continue
                    if entry[0] >= limit_ts:
                        return done
                    heappop(heap)
                    ev.in_pending = False
                    pending._live -= 1
                    break
            else:
                ev = pop_below(limit_ts)
                if ev is None:
                    return done
            # --- inlined fused execute body ---------------------------
            dst = ev.dst
            lp = lps[dst]
            pool = None
            lz = ev.lazy_sent
            if lz:
                pool = {c.key: c for c in lz}
                ev.lazy_sent = None
            ev.sent.clear()
            ev.prev_send_seq = lp.send_seq
            if snapshot_before is not None:
                ev.snapshot = None
                snapshot_before(lp, ev)
            rng = lp.rng
            rng_before = rng._count
            lp._now = ev.entry[0]
            kernel._current_event = ev
            kernel._lazy_pool = pool
            try:
                lp.forward(ev)
            finally:
                kernel._current_event = None
                kernel._lazy_pool = None
            if pool:
                batch.extend(pool.values())
            if batch:
                flush()
            ev.rng_draws = rng._count - rng_before
            ev.processed = True
            processed_append_by_lp[dst](ev)
            stats.processed += 1
            stats.busy += event_cost
            stats.round_busy += event_cost
            done += 1
        return done

    return fast_batch_lazy


class TimeWarpKernel(Executor):
    """One optimistic simulation instance.

    Build it with a :class:`~repro.core.lp.Model` and an
    :class:`~repro.core.config.EngineConfig`, then call :meth:`run`.
    """

    kind = "optimistic"

    def __init__(self, model: Model, config: EngineConfig) -> None:
        self.cfg = config
        self.cost = config.cost

        # --- LP population -------------------------------------------------
        # With ``executor="vectorized"`` this may be a struct-of-arrays
        # population plus a vector plan (``self.vec_plan``); the plan is
        # consulted by ``_install_fast_paths``, everything else treats the
        # SoA LPs exactly like scalar ones.
        self._init_population(model, config.executor)
        n_lps = len(self.lps)

        # --- Mapping, KPs, PEs --------------------------------------------
        grid = getattr(model, "grid", None)
        self.mapping = build_mapping(
            n_lps,
            config.n_kps,
            config.n_pes,
            config.mapping,
            grid=grid,
            seed=config.seed,
        )
        self.kps = [
            KernelProcess(k, self.mapping.kp_to_pe[k]) for k in range(config.n_kps)
        ]
        self.pes = [
            ProcessingElement(p, config.queue) for p in range(config.n_pes)
        ]
        for kp in self.kps:
            self.pes[kp.pe_id].kp_ids.append(kp.id)
        self.pe_of_lp: list[int] = []
        for lp in self.lps:
            kp = self.kps[self.mapping.lp_to_kp[lp.id]]
            lp.kp = kp
            kp.lp_ids.append(lp.id)
            pe_id = kp.pe_id
            self.pe_of_lp.append(pe_id)
            self.pes[pe_id].lp_count += 1

        # --- Strategy / transport / GVT -------------------------------------
        self.strategy = make_strategy(config.rollback)
        self.transport = make_transport(config.transport, self._receive, config.n_pes)
        self.gvt_manager = make_gvt_manager(config.gvt, config.n_pes)
        incremental_gvt = getattr(self.gvt_manager, "needs_requeue_hook", False)
        if not incremental_gvt:
            # Messages annihilated in transit still count as "arrived" for
            # GVT message accounting (Mattern epoch balance).  The
            # incremental manager must NOT see them: floors may only be
            # lowered by live work, or a dead event could pin GVT forever.
            self.transport.on_drop = lambda ev: self.gvt_manager.on_receive(
                self.pe_of_lp[ev.dst], ev
            )

        # --- Hot-path capability flags & event pool --------------------------
        #: Event recycling free list (None when cfg.pool is off).
        self._alloc = self._init_pool(config.pool)
        #: Managers whose send/receive hooks are no-ops (the synchronous
        #: barrier algorithm) skip the two per-message calls entirely.
        self._gvt_hooks = getattr(self.gvt_manager, "tracks_messages", True)
        #: Finer-grained hook flags: the incremental manager needs the
        #: receive hook (floors drop at delivery) but not the send hook.
        self._gvt_send_hook = self._gvt_hooks and getattr(
            self.gvt_manager, "needs_send_hook", True
        )
        self._gvt_recv_hook = self._gvt_hooks
        #: Incremental-GVT bookkeeping callbacks (None for the others, so
        #: the rollback/cancel/round paths stay hook-free by default).
        self._gvt_requeue = (
            self.gvt_manager.on_requeue if incremental_gvt else None
        )
        self._gvt_note_cancel = (
            self.gvt_manager.note_cancelled if incremental_gvt else None
        )
        self._gvt_note_exec = (
            self.gvt_manager.note_executed if incremental_gvt else None
        )
        #: The immediate transport is a plain function indirection; _emit
        #: inlines its delivery when this is set.
        self._direct = getattr(self.transport, "name", "") == "immediate"
        #: ``strategy.before`` is a no-op under reverse computation; only
        #: the copy strategy keeps its per-event call.
        self._snapshot_before = (
            self.strategy.before if self.strategy.name == "copy" else None
        )
        #: Per-LP destination caches: one flat index replaces the
        #: lps[i].kp / pes[pe_of_lp[i]] double lookups on the send path.
        self._kp_of_lp = [self.kps[self.mapping.lp_to_kp[lp.id]] for lp in self.lps]
        self._pe_by_lp = [self.pes[p] for p in self.pe_of_lp]
        self._stats_by_pe = [pe.stats for pe in self.pes]
        self._cost_local = self.cost.local_send
        self._cost_remote = self.cost.remote_send
        #: Per-LP commit hook table: ``None`` for LPs that inherit the
        #: base no-op ``commit``, so fossil collection skips the call
        #: entirely (PHOLD commits nothing; hot-potato routers do).
        base_commit = LogicalProcess.commit
        commit_of_lp = [
            None if type(lp).commit is base_commit else lp.commit
            for lp in self.lps
        ]
        #: ``None`` when no LP overrides ``commit`` at all — fossil
        #: collection then skips even the per-event table lookup.
        self._commit_of_lp = (
            commit_of_lp if any(cb is not None for cb in commit_of_lp) else None
        )

        # --- Cost precomputation --------------------------------------------
        snapshot_cost = self.cost.snapshot if self.strategy.name == "copy" else 0.0
        bus = self.cost.bus_factor(config.n_pes, n_lps)
        # The cache factor uses the *total* LP population: on the ROSS-style
        # shared-memory target the event pool and fossil lists live in one
        # shared heap, so partitioning LPs across PEs does not shrink the
        # hot working set — while the bus factor makes the misses pricier.
        for pe in self.pes:
            pe.event_cost = (self.cost.event_cost(n_lps) + snapshot_cost) * bus
        self.undo_cost = (
            self.cost.reverse if self.strategy.name == "reverse" else self.cost.restore
        )

        # --- Run-level counters ----------------------------------------------
        self.makespan_units = 0.0
        self.fossil_collected = 0
        self.gvt_rounds = 0
        self.cancelled_direct = 0
        self.cancelled_via_rollback = 0
        self._cancel_worklist: list[Event] = []
        self._current_event: Event | None = None
        self._lazy_pool: dict | None = None
        #: Lazy cancellation mode (see EngineConfig.cancellation).
        self.lazy = config.cancellation == "lazy"
        self.lazy_reused = 0
        #: Anti-messages found divergent during one forward execution,
        #: deferred so the whole group is resolved in one flush (one
        #: secondary rollback per affected KP).  The list object is
        #: captured by the fused closures — it is drained in place, never
        #: rebound.  Always empty between events.
        self._antimsg_batch: list[Event] = []
        #: Non-empty anti-message batch flushes (see ``_flush_antimsgs``).
        self.antimsg_batches = 0
        #: Vectorized-executor activity: band runs dispatched through the
        #: plan's fused steppers, and events advanced by them (both stay 0
        #: under the scalar executor or when no plan applies).
        self.soa_batches = 0
        self.soa_lps_stepped = 0
        #: Per-PE fused batch loops (see ``_compile_batch``); ``None``
        #: until ``_install_fast_paths`` decides they apply.
        self._batch_by_pe: list | None = None
        #: Optional optimism throttle (see EngineConfig.adaptive).
        self.throttle = Throttle() if config.adaptive else None
        self.gvt = 0.0
        #: Optional event tracer (see repro.core.trace).
        self.tracer = None
        #: Optional GVT-interval metrics recorder (see repro.obs.metrics).
        #: Consulted only at GVT boundaries — never on the per-event path —
        #: so attaching one keeps the fused fast paths installed and costs
        #: nothing when detached.
        self.metrics = None
        #: Optional span tracer (see repro.obs.spans).  Consulted at phase
        #: boundaries only — per PE batch, per rollback episode, per GVT
        #: round — so, like metrics, it keeps the fused fast paths
        #: installed and costs nothing when detached.
        self.spans = None
        #: Optional fault driver (see repro.faults.injector.EngineFaults).
        #: Consulted once per PE per round when attached; when None (the
        #: default) the run loop and fast paths are exactly as before.
        self.faults = None
        #: Peak live-event counts, sampled at GVT boundaries (the memory
        #: footprint Time Warp is famous for; ROSS's fossil collection
        #: exists to bound exactly this).
        self.peak_pending = 0
        self.peak_processed = 0
        #: Optional checkpointer (see repro.ckpt); consulted only at GVT
        #: boundaries, after fossil collection and the transport flush,
        #: when mailboxes are empty and below-GVT state is committed.
        self.ckpt = None
        #: Optional liveness watchdog (see repro.health); consulted only
        #: at GVT boundaries, like metrics — fast paths stay installed.
        self.health = None
        #: Run-loop state grafted by a checkpoint restore; consumed (and
        #: cleared) at the top of :meth:`run`.
        self._resume = None

        # --- Bind LPs ---------------------------------------------------------
        self._bind_lps(config.seed, self._alloc)

    # ------------------------------------------------------------------
    # Message path.
    # ------------------------------------------------------------------
    def _emit(self, src_lp: LogicalProcess, ev: Event) -> None:
        """Kernel side of ``LogicalProcess.send``: journal, charge, route."""
        current = self._current_event
        pool = self._lazy_pool
        if pool is not None:
            # Lazy cancellation: if this re-execution regenerated a message
            # identical to one from the rolled-back execution, keep the
            # original in place — its receiver never learns anything
            # happened.  The send-sequence counter was restored on undo,
            # so identical behaviour produces identical keys.
            old = pool.pop(ev.key, None)
            if old is not None:
                if (
                    not old.cancelled
                    and old.dst == ev.dst
                    and old.kind == ev.kind
                    and old.data == ev.data
                ):
                    current.sent.append(old)
                    self.lazy_reused += 1
                    return
                # Same key, different content: the old message is wrong.
                # Batch the anti-message; the flush runs when this forward
                # execution completes (see _flush_antimsgs).
                self._antimsg_batch.append(old)
        pe_of_lp = self.pe_of_lp
        src_pe = pe_of_lp[src_lp.id]
        dst = ev.dst
        dst_pe = pe_of_lp[dst]
        if current is not None:
            current.sent.append(ev)
        stats = self._stats_by_pe[src_pe]
        if src_pe == dst_pe:
            stats.local_sends += 1
            units = self._cost_local
        else:
            stats.remote_sends += 1
            units = self._cost_remote
        stats.busy += units
        stats.round_busy += units
        if self._gvt_send_hook:
            self.gvt_manager.on_send(src_pe, ev)
        if not self._direct:
            self.transport.deliver(ev, src_pe, dst_pe)
            return
        # Immediate transport: the inlined body of _receive.
        kp = self._kp_of_lp[dst]
        pe = self._pe_by_lp[dst]
        if self._gvt_recv_hook:
            self.gvt_manager.on_receive(pe.id, ev)
        pe.pending.push(ev)
        processed = kp.processed
        if processed and processed[-1].key > ev.key:
            pe.stats.stragglers += 1
            self._charge(pe, self.cost.rollback_fixed)
            undone = kp.rollback_until(ev.key, self, ev.dst)
            self._charge(pe, undone * self.undo_cost)
            self._drain_cancels()

    def _receive(self, ev: Event) -> None:
        """Deliver an event to its destination PE, rolling back if it is a

        straggler for the destination KP.
        """
        kp = self.lps[ev.dst].kp
        pe = self.pes[kp.pe_id]
        self.gvt_manager.on_receive(pe.id, ev)
        pe.pending.push(ev)
        if kp.needs_rollback(ev.key):
            pe.stats.stragglers += 1
            self._charge(pe, self.cost.rollback_fixed)
            undone = kp.rollback_until(ev.key, self, ev.dst)
            self._charge(pe, undone * self.undo_cost)
            self._drain_cancels()

    # ------------------------------------------------------------------
    # Event execution and undo.
    # ------------------------------------------------------------------
    def execute(self, pe: ProcessingElement, ev: Event) -> None:
        """Forward-execute one event on its LP (called by the PE)."""
        lp = self.lps[ev.dst]
        # Under lazy cancellation, offer the previous execution's messages
        # for reuse, keyed by their (identically regenerated) event keys.
        pool: dict | None = None
        if ev.lazy_sent:
            pool = {c.key: c for c in ev.lazy_sent}
            ev.lazy_sent = None
        # Inlined reset_journal (rng_draws is overwritten below anyway).
        ev.sent.clear()
        ev.snapshot = None
        ev.prev_send_seq = lp.send_seq
        snapshot_before = self._snapshot_before
        if snapshot_before is not None:
            snapshot_before(lp, ev)
        rng = lp.rng
        rng_before = rng._count  # .count property, sans descriptor call
        lp._now = ev.key.ts
        # execute is never re-entered (rollbacks triggered mid-forward go
        # through undo_event, not execute), so the outer context is always
        # the executive's None/None — restore that directly.
        self._current_event = ev
        self._lazy_pool = pool
        try:
            lp.forward(ev)
        finally:
            self._current_event = None
            self._lazy_pool = None
        if pool:
            # Messages the re-execution did not regenerate are now orphans.
            self._antimsg_batch.extend(pool.values())
        if self._antimsg_batch:
            self._flush_antimsgs()
        ev.rng_draws = rng._count - rng_before
        ev.processed = True
        lp.kp.processed.append(ev)
        stats = pe.stats
        stats.processed += 1
        units = pe.event_cost
        stats.busy += units
        stats.round_busy += units
        if self.tracer is not None:
            self.tracer.on_exec(ev)

    def undo_event(self, ev: Event) -> None:
        """Undo one processed event (called by KP rollback, tail-first).

        Under aggressive cancellation the messages it sent are cancelled
        now (processed ones are deferred to the cancel worklist to avoid
        unbounded recursion through cascades).  Under lazy cancellation
        they are parked on the event for possible reuse at re-execution.
        Either way the rollback strategy restores LP state and the event
        is requeued.
        """
        lp = self.lps[ev.dst]
        if self.lazy:
            if ev.sent:
                ev.lazy_sent = ev.sent[:]
                ev.sent.clear()
        else:
            for child in reversed(ev.sent):
                self._cancel(child)
            ev.sent.clear()
        self.strategy.undo(lp, ev)
        ev.processed = False
        pe_id = self.pe_of_lp[ev.dst]
        self.pes[pe_id].pending.push(ev)
        requeue = self._gvt_requeue
        if requeue is not None:
            # The incremental GVT manager must see the requeue: it can
            # land below a floor that was re-peeked after this event was
            # first popped.
            requeue(pe_id, ev.entry[0])
        if self.tracer is not None:
            self.tracer.on_undo(ev)

    def _cancel(self, child: Event) -> None:
        """Cancel one message: flag it if unprocessed, defer a secondary

        rollback to the worklist if it has already executed.
        """
        if child.processed:
            self._cancel_worklist.append(child)
        elif not child.cancelled:
            self._flag_cancelled(child)
            self.cancelled_direct += 1

    def _flag_cancelled(self, ev: Event) -> None:
        """Mark an unprocessed event dead and reap its parked children."""
        ev.cancelled = True
        if ev.in_pending:
            pe_id = self.pe_of_lp[ev.dst]
            self.pes[pe_id].pending.note_cancelled()
            note_cancel = self._gvt_note_cancel
            if note_cancel is not None:
                # The dead event may be the one holding the incremental
                # floor down; force an exact re-peek of this PE.
                note_cancel(pe_id)
        if ev.lazy_sent:
            # The event will never re-execute, so its kept messages from
            # the undone execution can no longer be claimed: cancel them.
            for child in ev.lazy_sent:
                self._cancel(child)
            ev.lazy_sent = None

    def _drain_cancels(self) -> None:
        """Resolve deferred cancellations of already-processed events.

        Each entry needs a *secondary rollback* of its KP back to just
        before the event ran; the rollback requeues the event, which is
        then flagged cancelled.  Rollbacks triggered here may push more
        work onto the list; the loop runs until quiescence (processed-event
        count strictly decreases, so it terminates).
        """
        worklist = self._cancel_worklist
        if not worklist:
            return
        spans = self.spans
        t0 = spans.clock() if spans is not None else 0.0
        drained = 0
        while worklist:
            ev = worklist.pop()
            drained += 1
            if ev.cancelled:
                continue
            if ev.processed:
                kp = self.lps[ev.dst].kp
                pe = self.pes[kp.pe_id]
                self._charge(pe, self.cost.rollback_fixed)
                undone = kp.rollback_until(ev.key, self, ev.dst)
                self._charge(pe, undone * self.undo_cost)
            if not ev.cancelled:
                self._flag_cancelled(ev)
                self.cancelled_via_rollback += 1
        if spans is not None:
            spans.record("antimsg", t0, spans.clock(), n=drained)

    def _flush_antimsgs(self) -> None:
        """Resolve one forward execution's batched anti-messages.

        Lazy cancellation discovers divergent and orphaned messages one at
        a time while an event re-executes; cancelling each immediately
        would trigger one secondary-rollback cascade per message.  The
        discoveries are instead collected in ``_antimsg_batch`` and
        resolved here, after the forward handler returns and before any
        other event can execute (the PEs are multiplexed on one thread, so
        nothing observes the window in between): one secondary rollback
        per affected KP, to the minimum annihilated key.  Tail-first undo
        makes that the exact undo sequence the per-message cascades would
        have produced, so committed sequences are bit-identical — only the
        rollback-episode count (and its fixed cost) shrinks.
        """
        spans = self.spans
        span_t0 = spans.clock() if spans is not None else 0.0
        batch = self._antimsg_batch
        work = batch[:]
        batch.clear()
        self.antimsg_batches += 1
        # Processed-at-flush-time snapshot (the group rollbacks below flip
        # these flags) — it decides direct-vs-via-rollback accounting.
        was_processed = [old.processed and not old.cancelled for old in work]
        groups: dict[int, list] = {}
        for old, was in zip(work, was_processed):
            if was:
                kp = self.lps[old.dst].kp
                g = groups.get(kp.id)
                if g is None:
                    groups[kp.id] = [kp, old.key, old.dst]
                elif old.key < g[1]:
                    g[1] = old.key
                    g[2] = old.dst
        for kp, bound, trigger in groups.values():
            pe = self.pes[kp.pe_id]
            self._charge(pe, self.cost.rollback_fixed)
            undone = kp.rollback_until(bound, self, trigger)
            self._charge(pe, undone * self.undo_cost)
        for old, was in zip(work, was_processed):
            if old.cancelled:
                continue
            self._flag_cancelled(old)
            if was:
                self.cancelled_via_rollback += 1
            else:
                self.cancelled_direct += 1
        self._drain_cancels()
        if not self._direct:
            # Batched in-transit annihilation: reap newly dead messages
            # still sitting in mailboxes in one sweep.
            annihilate = getattr(self.transport, "annihilate", None)
            if annihilate is not None:
                annihilate()
        if spans is not None:
            spans.record("antimsg", span_t0, spans.clock(), n=len(work))

    def _charge(self, pe: ProcessingElement, units: float) -> None:
        pe.stats.busy += units
        pe.stats.round_busy += units

    def _straggler(self, pe: ProcessingElement, kp, ev: Event) -> None:
        """Straggler arrival: charge and roll the destination KP back.

        The rare branch of the fused send path (see :func:`_compile_send`);
        identical to the straggler handling in :meth:`_emit`.
        """
        stats = pe.stats
        stats.stragglers += 1
        # Two separate charges, exactly as in _emit — float accumulation
        # order is part of bit-identical reproducibility.
        units = self.cost.rollback_fixed
        stats.busy += units
        stats.round_busy += units
        undone = kp.rollback_until(ev.key, self, ev.dst)
        units = undone * self.undo_cost
        stats.busy += units
        stats.round_busy += units
        self._drain_cancels()

    # ------------------------------------------------------------------
    # GVT and fossil collection.
    # ------------------------------------------------------------------
    def schedule(self, ev: Event) -> None:
        """Executor ABI: bare enqueue at the destination LP's PE."""
        self._pe_by_lp[ev.dst].pending.push(ev)

    def deliver(self, ev: Event) -> None:
        """Executor ABI: full Time Warp arrival (straggler check, rollback)."""
        self._receive(ev)

    def fossil(self, horizon: float) -> int:
        """Executor ABI: real fossil collection below ``horizon``."""
        return self.fossil_collect(horizon)

    def attach_faults(self, driver) -> "TimeWarpKernel":
        """Attach a :class:`repro.faults.injector.EngineFaults`; returns self.

        Installing may wrap the transport (clearing ``_direct``, so the
        fused fast paths are not compiled around the wrapper) and compile
        PE-stall windows; must happen before :meth:`run`.
        """
        self.faults = driver
        driver.install(self)
        return self

    def _sample_metrics(self, recorder, gvt: float) -> None:
        """Feed the recorder the current cumulative counters (O(PEs+KPs))."""
        pes, kps = self.pes, self.kps
        hit_rate = self._pool_hit_rate()
        recorder.sample(
            gvt=gvt,
            committed=self.fossil_collected,
            processed=sum(pe.stats.processed for pe in pes),
            rolled_back=sum(kp.stats.events_rolled_back for kp in kps),
            rollbacks=sum(kp.stats.rollbacks for kp in kps),
            stragglers=sum(pe.stats.stragglers for pe in pes),
            fossil_collected=self.fossil_collected,
            pending=sum(len(pe.pending) for pe in pes),
            processed_depth=sum(len(kp.processed) for kp in kps),
            throttle=self.throttle.factor if self.throttle is not None else 1.0,
            pool_hit_rate=hit_rate,
            lazy_hits=self.lazy_reused,
            antimsg_batches=self.antimsg_batches,
            gvt_incremental_rounds=getattr(
                self.gvt_manager, "incremental_rounds", 0
            ),
            soa_batches=self.soa_batches,
            soa_lps_stepped=self.soa_lps_stepped,
            kp_rolled_back=[kp.stats.events_rolled_back for kp in kps],
        )

    def fossil_collect(self, gvt_ts: float) -> int:
        """Commit and free everything below ``gvt_ts`` across all KPs."""
        # ``_live`` is PendingQueue/LadderQueue.__len__ without the
        # dispatch; this runs every GVT boundary (default: every round).
        pending_now = 0
        for pe in self.pes:
            pending_now += pe.pending._live
        processed_now = 0
        collected = 0
        for kp in self.kps:
            processed_now += len(kp.processed)
            collected += kp.fossil_collect(gvt_ts, self)
        if pending_now > self.peak_pending:
            self.peak_pending = pending_now
        if processed_now > self.peak_processed:
            self.peak_processed = processed_now
        self.fossil_collected += collected
        return collected

    # ------------------------------------------------------------------
    # The executive.
    # ------------------------------------------------------------------
    def _install_fast_paths(self) -> None:
        """Swap in the compiled hot-path closures where the config allows.

        Called once at the top of :meth:`run`, after any tracer has been
        attached.  The fused send requires the immediate transport (other
        transports route through :meth:`_emit`/:meth:`_receive` unchanged);
        the fused execute additionally requires no tracer.  Both are pure
        specialisations — observable behaviour is identical either way.
        """
        if not self._direct:
            if self.vec_plan is not None and not self.soa_decline:
                self.soa_decline = (
                    f"transport {self.cfg.transport!r} routes through "
                    "_emit/_receive, which the fused band batch bypasses"
                )
            return
        use_heap = self.cfg.queue == "heap"
        for lp in self.lps:
            lp.send = _compile_send(self, lp, use_heap)
        if self.tracer is not None and self.vec_plan is not None:
            if not self.soa_decline:
                self.soa_decline = (
                    "a Tracer is attached (fused execute skips the "
                    "per-event trace hook)"
                )
        if self.tracer is None:
            self.execute = _compile_execute(self)
            plan = self.vec_plan
            if (
                plan is not None
                and not self.lazy
                and self.strategy.name == "reverse"
            ):
                # Vectorized fast path: the model's plan fuses whole
                # same-timestamp-band runs into struct-of-arrays steps.
                # Lazy cancellation and copy rollback fall back to the
                # scalar batch (the SoA LPs still run fine through it);
                # the plan's compiled batch is bit-identical to the scalar
                # one by construction (the conformance suite checks).
                self._batch_by_pe = [
                    plan.compile_batch(self, pe, use_heap) for pe in self.pes
                ]
            else:
                if plan is not None and not self.soa_decline:
                    self.soa_decline = (
                        "lazy cancellation or copy rollback configured "
                        "(the fused band batch assumes reverse computation "
                        "with aggressive cancellation)"
                    )
                self._batch_by_pe = [
                    _compile_batch(self, pe, use_heap) for pe in self.pes
                ]

    def run(self) -> RunResult:
        """Execute the model to ``cfg.end_time`` and collect statistics."""
        self._install_fast_paths()
        cfg = self.cfg
        end = cfg.end_time
        resume = self._resume
        if resume is None:
            # Bootstrap: LPs schedule their initial events "at startup".
            self._current_event = None
            for lp in self.lps:
                lp._now = -1.0
                lp.on_init()

        pes = self.pes
        batches = self._batch_by_pe
        stats_by_pe = self._stats_by_pe
        sched_per_round = self.cost.sched_per_round
        rounds = 0
        note_exec = self._gvt_note_exec
        gvt_overhead = max(
            self.cost.gvt_overhead(pe.lp_count, len(pe.kp_ids)) for pe in pes
        )
        throttle = self.throttle
        metrics = self.metrics
        faults = self.faults
        spans = self.spans
        clock = spans.clock if spans is not None else None
        ckpt = self.ckpt
        health = self.health
        paranoid = cfg.paranoid
        eff_batch = cfg.batch_size
        eff_window = cfg.window
        last_processed = 0
        last_rolled = 0
        if resume is not None:
            rounds = resume["rounds"]
            eff_batch = resume["eff_batch"]
            eff_window = resume["eff_window"]
            last_processed = resume["last_processed"]
            last_rolled = resume["last_rolled"]
            self._resume = None
        prev_gvt = self.gvt
        while True:
            # Optimism limit: the end barrier, tightened to GVT + window in
            # virtual-time-window mode.
            if eff_window is not None:
                limit = min(end, self.gvt + eff_window)
            else:
                limit = end
            any_work = False
            for st in stats_by_pe:
                st.round_busy = 0.0
            for pe in pes:
                if faults is not None and faults.stalled(pe.id, rounds):
                    # Straggler injection: this PE executes nothing this
                    # round.  Safe at any point — Time Warp absorbs the
                    # reordering, and GVT cannot pass the stalled PE's
                    # pending events — and stall windows are finite, so
                    # the run still terminates.
                    continue
                if spans is None:
                    done = (
                        batches[pe.id](eff_batch, limit)
                        if batches is not None
                        else pe.process_batch(self, eff_batch, limit)
                    )
                else:
                    # One span per optimism batch: includes any rollbacks
                    # the batch's own sends triggered mid-loop (those also
                    # record their own nested "rollback" spans).
                    t0 = clock()
                    done = (
                        batches[pe.id](eff_batch, limit)
                        if batches is not None
                        else pe.process_batch(self, eff_batch, limit)
                    )
                    if done:
                        spans.record("exec", t0, clock(), pe=pe.id, n=done)
                if done:
                    any_work = True
                    if note_exec is not None:
                        # Incremental GVT: this PE popped events, so its
                        # cached floor may have risen — re-peek it at the
                        # next estimate.
                        note_exec(pe.id)
            rounds += 1
            round_max = 0.0
            for st in stats_by_pe:
                if st.round_busy > round_max:
                    round_max = st.round_busy
            self.makespan_units += round_max + sched_per_round
            gvt_boundary = rounds % cfg.gvt_interval == 0 or not any_work
            if gvt_boundary:
                # Estimate is taken *before* the flush so the GVT manager
                # really has to account for in-flight messages.
                if spans is None:
                    self.gvt = self.gvt_manager.estimate(self)
                    self.gvt_rounds += 1
                    collected = self.fossil_collect(self.gvt)
                else:
                    t0 = clock()
                    self.gvt = self.gvt_manager.estimate(self)
                    spans.record("gvt", t0, clock())
                    self.gvt_rounds += 1
                    t0 = clock()
                    collected = self.fossil_collect(self.gvt)
                    if collected:
                        spans.record("fossil", t0, clock(), n=collected)
                self.makespan_units += gvt_overhead + (
                    self.cost.fossil_per_event * collected / len(pes)
                )
                if throttle is not None:
                    processed_now = sum(pe.stats.processed for pe in pes)
                    rolled_now = sum(
                        kp.stats.events_rolled_back for kp in self.kps
                    )
                    throttle.update(
                        processed_now - last_processed, rolled_now - last_rolled
                    )
                    last_processed, last_rolled = processed_now, rolled_now
                    eff_batch = throttle.scaled(cfg.batch_size, 1)
                    if cfg.window is not None:
                        eff_window = throttle.scaled(
                            cfg.window, cfg.window / 64.0
                        )
                if metrics is not None:
                    # GVT estimates jump to the time horizon once the
                    # queues drain; clamp so the time series stays on the
                    # run's virtual-time axis.
                    self._sample_metrics(metrics, min(self.gvt, end))
                if paranoid:
                    check_optimistic(self, prev_gvt)
                    prev_gvt = self.gvt
                if health is not None:
                    # The watchdog may tighten the throttle in place; the
                    # next boundary's throttle.update() folds that into
                    # eff_batch / eff_window.  Escalations raise out of
                    # run() here — a quiescent point, right after fossil
                    # collection, so recovery sees committed state only.
                    health.boundary_optimistic(self)
                if self.gvt >= end:
                    break
            if spans is None or self._direct:
                # Immediate transport has nothing to flush; don't time the
                # no-op.
                self.transport.flush()
            else:
                t0 = clock()
                delivered = self.transport.flush()
                if delivered:
                    spans.record("transport", t0, clock(), n=delivered)
            if ckpt is not None and gvt_boundary:
                # After the flush, so mailboxes are empty (only a fault
                # wrapper's held events remain, and those are captured).
                written_before = ckpt.written
                t0 = clock() if spans is not None else 0.0
                ckpt.boundary(
                    self,
                    lambda: {
                        "rounds": rounds,
                        "eff_batch": eff_batch,
                        "eff_window": eff_window,
                        "last_processed": last_processed,
                        "last_rolled": last_rolled,
                    },
                )
                if spans is not None and ckpt.written > written_before:
                    spans.record("snapshot", t0, clock())

        # Everything below the end barrier is final: commit it all.
        self.fossil_collect(TIME_HORIZON)
        if metrics is not None:
            self._sample_metrics(metrics, end)
        return self._build_result(rounds)

    # ------------------------------------------------------------------
    def _build_result(self, rounds: int) -> RunResult:
        stats = RunStats(engine="optimistic")
        stats.soa_decline_reason = self.soa_decline
        cfg = self.cfg
        stats.n_pes = cfg.n_pes
        stats.n_kps = cfg.n_kps
        stats.processed = sum(pe.stats.processed for pe in self.pes)
        stats.events_rolled_back = sum(kp.stats.events_rolled_back for kp in self.kps)
        stats.rollbacks = sum(kp.stats.rollbacks for kp in self.kps)
        stats.false_rollback_events = sum(
            kp.stats.false_rollback_events for kp in self.kps
        )
        stats.stragglers = sum(pe.stats.stragglers for pe in self.pes)
        stats.cancelled_direct = self.cancelled_direct
        stats.cancelled_via_rollback = self.cancelled_via_rollback
        stats.lazy_reused = self.lazy_reused
        stats.antimsg_batches = self.antimsg_batches
        stats.gvt_incremental_rounds = getattr(
            self.gvt_manager, "incremental_rounds", 0
        )
        stats.soa_batches = self.soa_batches
        stats.soa_lps_stepped = self.soa_lps_stepped
        if self.throttle is not None:
            stats.throttle_adjustments = self.throttle.adjustments
            stats.throttle_final_factor = self.throttle.factor
        stats.local_sends = sum(pe.stats.local_sends for pe in self.pes)
        stats.remote_sends = sum(pe.stats.remote_sends for pe in self.pes)
        stats.gvt_rounds = self.gvt_rounds
        stats.fossil_collected = self.fossil_collected
        stats.peak_pending = self.peak_pending
        stats.peak_processed = self.peak_processed
        if self.pool is not None:
            stats.pool_hits = self.pool.hits
            stats.pool_allocs = self.pool.allocs
        stats.committed = self.fossil_collected
        stats.makespan_seconds = self.cost.seconds(self.makespan_units)
        stats.total_busy_seconds = self.cost.seconds(
            sum(pe.stats.busy for pe in self.pes)
        )
        stats.per_pe_busy_seconds = [
            self.cost.seconds(pe.stats.busy) for pe in self.pes
        ]
        if self.faults is not None:
            ft = self.faults.transport
            if ft is not None:
                stats.transport_dropped = ft.dropped
                stats.transport_duplicated = ft.duplicated
                stats.transport_delayed = ft.delayed
            stats.pe_stall_rounds = self.faults.stall_rounds
        stats.event_rate = (
            stats.committed / stats.makespan_seconds if stats.makespan_seconds else 0.0
        )
        model_stats = self.model.collect_stats(self.lps)
        return RunResult(model_stats=model_stats, run=stats, lps=self.lps)


def run_optimistic(
    model: Model,
    config: EngineConfig,
    *,
    tracer=None,
    metrics=None,
    spans=None,
    faults=None,
    checkpointer=None,
    health=None,
) -> RunResult:
    """Convenience wrapper: build a kernel, attach telemetry, run it."""
    if config.parallelism == "process":
        # True multicore: every caller of the optimistic engine — the CLI,
        # experiments, the bench harness, scenarios — reaches process mode
        # through this one chokepoint.
        from repro.mp.runtime import run_multiprocess

        return run_multiprocess(
            model,
            config,
            tracer=tracer,
            metrics=metrics,
            spans=spans,
            faults=faults,
            checkpointer=checkpointer,
            health=health,
        )
    kernel = TimeWarpKernel(model, config)
    if tracer is not None:
        kernel.attach_tracer(tracer)
    if metrics is not None:
        kernel.attach_metrics(metrics)
    if spans is not None:
        kernel.attach_spans(spans)
    if faults is not None:
        kernel.attach_faults(faults)
    if health is not None:
        kernel.attach_health(health)
    if checkpointer is not None:
        kernel.attach_checkpointer(checkpointer)
    return kernel.run()
