"""The optimistic (Time Warp) engine: kernel plus round-robin executive.

This is the ROSS analog.  The kernel owns the LP population, the KP/PE
structure, the transport, rollback strategy, GVT manager and all statistics;
the executive schedules PEs round-robin, each executing an *optimism batch*
of events per round.  Because PEs run ahead of each other in virtual time,
cross-PE messages genuinely arrive in the receiver's past, producing real
stragglers, rollbacks, anti-message cascades and fossil collection — the
full Time Warp dynamic, deterministic and repeatable.

Hardware substitution (see DESIGN.md): the PEs are *simulated* processors
multiplexed on one OS thread.  Every count the report's figures use
(events processed, rolled back, remote messages, rounds) is measured from
the real execution; wall-clock speed is derived from those counts through
the calibrated :class:`~repro.core.costmodel.CostModel`.

Why the interleaving is safe (the invariant the implementation leans on):
any rollback triggered while event ``e`` is being processed was caused by a
message ``e`` itself sent, whose timestamp is strictly greater than
``e.ts``; therefore every event undone by the cascade has a key greater
than ``e``'s and neither ``e`` nor its parent can be affected mid-flight.
"""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.event import Event
from repro.core.gvt import make_gvt_manager
from repro.core.kp import KernelProcess
from repro.core.lp import LogicalProcess, Model
from repro.core.mapping import build_mapping
from repro.core.pe import ProcessingElement
from repro.core.result import RunResult
from repro.core.rollback import make_strategy
from repro.core.stats import RunStats
from repro.core.throttle import Throttle
from repro.core.transport import make_transport
from repro.errors import ConfigurationError
from repro.rng.streams import ReversibleStream, derive_seed
from repro.vt.time import TIME_HORIZON

__all__ = ["TimeWarpKernel", "run_optimistic"]


class TimeWarpKernel:
    """One optimistic simulation instance.

    Build it with a :class:`~repro.core.lp.Model` and an
    :class:`~repro.core.config.EngineConfig`, then call :meth:`run`.
    """

    def __init__(self, model: Model, config: EngineConfig) -> None:
        self.model = model
        self.cfg = config
        self.cost = config.cost

        # --- LP population -------------------------------------------------
        self.lps: list[LogicalProcess] = model.build()
        if not self.lps:
            raise ConfigurationError("model.build() returned no LPs")
        for i, lp in enumerate(self.lps):
            if lp.id != i:
                raise ConfigurationError(
                    f"LP ids must be dense 0..n-1 in build() order; "
                    f"position {i} has id {lp.id}"
                )
        n_lps = len(self.lps)

        # --- Mapping, KPs, PEs --------------------------------------------
        grid = getattr(model, "grid", None)
        self.mapping = build_mapping(
            n_lps,
            config.n_kps,
            config.n_pes,
            config.mapping,
            grid=grid,
            seed=config.seed,
        )
        self.kps = [
            KernelProcess(k, self.mapping.kp_to_pe[k]) for k in range(config.n_kps)
        ]
        self.pes = [
            ProcessingElement(p, config.queue) for p in range(config.n_pes)
        ]
        for kp in self.kps:
            self.pes[kp.pe_id].kp_ids.append(kp.id)
        self.pe_of_lp: list[int] = []
        for lp in self.lps:
            kp = self.kps[self.mapping.lp_to_kp[lp.id]]
            lp.kp = kp
            kp.lp_ids.append(lp.id)
            pe_id = kp.pe_id
            self.pe_of_lp.append(pe_id)
            self.pes[pe_id].lp_count += 1

        # --- Strategy / transport / GVT -------------------------------------
        self.strategy = make_strategy(config.rollback)
        self.transport = make_transport(config.transport, self._receive, config.n_pes)
        self.gvt_manager = make_gvt_manager(config.gvt, config.n_pes)
        # Messages annihilated in transit still count as "arrived" for GVT
        # message accounting.
        self.transport.on_drop = lambda ev: self.gvt_manager.on_receive(
            self.pe_of_lp[ev.dst], ev
        )

        # --- Cost precomputation --------------------------------------------
        snapshot_cost = self.cost.snapshot if self.strategy.name == "copy" else 0.0
        bus = self.cost.bus_factor(config.n_pes, n_lps)
        # The cache factor uses the *total* LP population: on the ROSS-style
        # shared-memory target the event pool and fossil lists live in one
        # shared heap, so partitioning LPs across PEs does not shrink the
        # hot working set — while the bus factor makes the misses pricier.
        for pe in self.pes:
            pe.event_cost = (self.cost.event_cost(n_lps) + snapshot_cost) * bus
        self.undo_cost = (
            self.cost.reverse if self.strategy.name == "reverse" else self.cost.restore
        )

        # --- Run-level counters ----------------------------------------------
        self.makespan_units = 0.0
        self.fossil_collected = 0
        self.gvt_rounds = 0
        self.cancelled_direct = 0
        self.cancelled_via_rollback = 0
        self._cancel_worklist: list[Event] = []
        self._current_event: Event | None = None
        self._lazy_pool: dict | None = None
        #: Lazy cancellation mode (see EngineConfig.cancellation).
        self.lazy = config.cancellation == "lazy"
        self.lazy_reused = 0
        #: Optional optimism throttle (see EngineConfig.adaptive).
        self.throttle = Throttle() if config.adaptive else None
        self.gvt = 0.0
        #: Optional event tracer (see repro.core.trace).
        self.tracer = None
        #: Peak live-event counts, sampled at GVT boundaries (the memory
        #: footprint Time Warp is famous for; ROSS's fossil collection
        #: exists to bound exactly this).
        self.peak_pending = 0
        self.peak_processed = 0

        # --- Bind LPs ---------------------------------------------------------
        for lp in self.lps:
            lp.bind(
                ReversibleStream(derive_seed(config.seed, lp.id), lp.id),
                self._emit,
            )

    # ------------------------------------------------------------------
    # Message path.
    # ------------------------------------------------------------------
    def _emit(self, src_lp: LogicalProcess, ev: Event) -> None:
        """Kernel side of ``LogicalProcess.send``: journal, charge, route."""
        current = self._current_event
        pool = self._lazy_pool
        if pool is not None:
            # Lazy cancellation: if this re-execution regenerated a message
            # identical to one from the rolled-back execution, keep the
            # original in place — its receiver never learns anything
            # happened.  The send-sequence counter was restored on undo,
            # so identical behaviour produces identical keys.
            old = pool.pop(ev.key, None)
            if old is not None:
                if (
                    not old.cancelled
                    and old.dst == ev.dst
                    and old.kind == ev.kind
                    and old.data == ev.data
                ):
                    current.sent.append(old)
                    self.lazy_reused += 1
                    return
                # Same key, different content: the old message is wrong.
                self._cancel(old)
                self._drain_cancels()
        src_pe = self.pe_of_lp[src_lp.id]
        dst_pe = self.pe_of_lp[ev.dst]
        if current is not None:
            current.sent.append(ev)
        pe = self.pes[src_pe]
        if src_pe == dst_pe:
            pe.stats.local_sends += 1
            self._charge(pe, self.cost.local_send)
        else:
            pe.stats.remote_sends += 1
            self._charge(pe, self.cost.remote_send)
        self.gvt_manager.on_send(src_pe, ev)
        self.transport.deliver(ev, src_pe, dst_pe)

    def _receive(self, ev: Event) -> None:
        """Deliver an event to its destination PE, rolling back if it is a

        straggler for the destination KP.
        """
        kp = self.lps[ev.dst].kp
        pe = self.pes[kp.pe_id]
        self.gvt_manager.on_receive(pe.id, ev)
        pe.pending.push(ev)
        if kp.needs_rollback(ev.key):
            pe.stats.stragglers += 1
            self._charge(pe, self.cost.rollback_fixed)
            undone = kp.rollback_until(ev.key, self, ev.dst)
            self._charge(pe, undone * self.undo_cost)
            self._drain_cancels()

    # ------------------------------------------------------------------
    # Event execution and undo.
    # ------------------------------------------------------------------
    def execute(self, pe: ProcessingElement, ev: Event) -> None:
        """Forward-execute one event on its LP (called by the PE)."""
        lp = self.lps[ev.dst]
        # Under lazy cancellation, offer the previous execution's messages
        # for reuse, keyed by their (identically regenerated) event keys.
        pool: dict | None = None
        if ev.lazy_sent:
            pool = {c.key: c for c in ev.lazy_sent}
            ev.lazy_sent = None
        ev.reset_journal()
        ev.prev_send_seq = lp.send_seq
        self.strategy.before(lp, ev)
        rng_before = lp.rng.count
        lp._now = ev.key.ts
        prev_current = self._current_event
        prev_pool = self._lazy_pool
        self._current_event = ev
        self._lazy_pool = pool
        try:
            lp.forward(ev)
        finally:
            self._current_event = prev_current
            self._lazy_pool = prev_pool
        if pool:
            # Messages the re-execution did not regenerate are now orphans.
            for child in pool.values():
                self._cancel(child)
            self._drain_cancels()
        ev.rng_draws = lp.rng.count - rng_before
        ev.processed = True
        lp.kp.append_processed(ev)
        pe.stats.processed += 1
        self._charge(pe, pe.event_cost)
        if self.tracer is not None:
            self.tracer.on_exec(ev)

    def undo_event(self, ev: Event) -> None:
        """Undo one processed event (called by KP rollback, tail-first).

        Under aggressive cancellation the messages it sent are cancelled
        now (processed ones are deferred to the cancel worklist to avoid
        unbounded recursion through cascades).  Under lazy cancellation
        they are parked on the event for possible reuse at re-execution.
        Either way the rollback strategy restores LP state and the event
        is requeued.
        """
        lp = self.lps[ev.dst]
        if self.lazy:
            if ev.sent:
                ev.lazy_sent = ev.sent[:]
                ev.sent.clear()
        else:
            for child in reversed(ev.sent):
                self._cancel(child)
            ev.sent.clear()
        self.strategy.undo(lp, ev)
        ev.processed = False
        self.pes[self.pe_of_lp[ev.dst]].pending.push(ev)
        if self.tracer is not None:
            self.tracer.on_undo(ev)

    def _cancel(self, child: Event) -> None:
        """Cancel one message: flag it if unprocessed, defer a secondary

        rollback to the worklist if it has already executed.
        """
        if child.processed:
            self._cancel_worklist.append(child)
        elif not child.cancelled:
            self._flag_cancelled(child)
            self.cancelled_direct += 1

    def _flag_cancelled(self, ev: Event) -> None:
        """Mark an unprocessed event dead and reap its parked children."""
        ev.cancelled = True
        if ev.in_pending:
            self.pes[self.pe_of_lp[ev.dst]].pending.note_cancelled()
        if ev.lazy_sent:
            # The event will never re-execute, so its kept messages from
            # the undone execution can no longer be claimed: cancel them.
            for child in ev.lazy_sent:
                self._cancel(child)
            ev.lazy_sent = None

    def _drain_cancels(self) -> None:
        """Resolve deferred cancellations of already-processed events.

        Each entry needs a *secondary rollback* of its KP back to just
        before the event ran; the rollback requeues the event, which is
        then flagged cancelled.  Rollbacks triggered here may push more
        work onto the list; the loop runs until quiescence (processed-event
        count strictly decreases, so it terminates).
        """
        worklist = self._cancel_worklist
        while worklist:
            ev = worklist.pop()
            if ev.cancelled:
                continue
            if ev.processed:
                kp = self.lps[ev.dst].kp
                pe = self.pes[kp.pe_id]
                self._charge(pe, self.cost.rollback_fixed)
                undone = kp.rollback_until(ev.key, self, ev.dst)
                self._charge(pe, undone * self.undo_cost)
            if not ev.cancelled:
                self._flag_cancelled(ev)
                self.cancelled_via_rollback += 1

    def _charge(self, pe: ProcessingElement, units: float) -> None:
        pe.stats.busy += units
        pe.stats.round_busy += units

    # ------------------------------------------------------------------
    # GVT and fossil collection.
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> "TimeWarpKernel":
        """Attach a :class:`repro.core.trace.Tracer`; returns self."""
        self.tracer = tracer
        return self

    def fossil_collect(self, gvt_ts: float) -> int:
        """Commit and free everything below ``gvt_ts`` across all KPs."""
        pending_now = sum(len(pe.pending) for pe in self.pes)
        processed_now = sum(len(kp.processed) for kp in self.kps)
        if pending_now > self.peak_pending:
            self.peak_pending = pending_now
        if processed_now > self.peak_processed:
            self.peak_processed = processed_now
        collected = 0
        for kp in self.kps:
            collected += kp.fossil_collect(gvt_ts, self)
        self.fossil_collected += collected
        return collected

    # ------------------------------------------------------------------
    # The executive.
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the model to ``cfg.end_time`` and collect statistics."""
        cfg = self.cfg
        end = cfg.end_time
        # Bootstrap: LPs schedule their initial events "at startup".
        self._current_event = None
        for lp in self.lps:
            lp._now = -1.0
            lp.on_init()

        pes = self.pes
        rounds = 0
        gvt_overhead = max(
            self.cost.gvt_overhead(pe.lp_count, len(pe.kp_ids)) for pe in pes
        )
        throttle = self.throttle
        eff_batch = cfg.batch_size
        eff_window = cfg.window
        last_processed = 0
        last_rolled = 0
        while True:
            # Optimism limit: the end barrier, tightened to GVT + window in
            # virtual-time-window mode.
            if eff_window is not None:
                limit = min(end, self.gvt + eff_window)
            else:
                limit = end
            any_work = False
            for pe in pes:
                pe.stats.round_busy = 0.0
            for pe in pes:
                if pe.process_batch(self, eff_batch, limit):
                    any_work = True
            rounds += 1
            self.makespan_units += (
                max(pe.stats.round_busy for pe in pes) + self.cost.sched_per_round
            )
            if rounds % cfg.gvt_interval == 0 or not any_work:
                # Estimate is taken *before* the flush so the GVT manager
                # really has to account for in-flight messages.
                self.gvt = self.gvt_manager.estimate(self)
                self.gvt_rounds += 1
                collected = self.fossil_collect(self.gvt)
                self.makespan_units += gvt_overhead + (
                    self.cost.fossil_per_event * collected / len(pes)
                )
                if throttle is not None:
                    processed_now = sum(pe.stats.processed for pe in pes)
                    rolled_now = sum(
                        kp.stats.events_rolled_back for kp in self.kps
                    )
                    throttle.update(
                        processed_now - last_processed, rolled_now - last_rolled
                    )
                    last_processed, last_rolled = processed_now, rolled_now
                    eff_batch = throttle.scaled(cfg.batch_size, 1)
                    if cfg.window is not None:
                        eff_window = throttle.scaled(
                            cfg.window, cfg.window / 64.0
                        )
                if self.gvt >= end:
                    break
            self.transport.flush()

        # Everything below the end barrier is final: commit it all.
        self.fossil_collect(TIME_HORIZON)
        return self._build_result(rounds)

    # ------------------------------------------------------------------
    def _build_result(self, rounds: int) -> RunResult:
        stats = RunStats(engine="optimistic")
        cfg = self.cfg
        stats.n_pes = cfg.n_pes
        stats.n_kps = cfg.n_kps
        stats.processed = sum(pe.stats.processed for pe in self.pes)
        stats.events_rolled_back = sum(kp.stats.events_rolled_back for kp in self.kps)
        stats.rollbacks = sum(kp.stats.rollbacks for kp in self.kps)
        stats.false_rollback_events = sum(
            kp.stats.false_rollback_events for kp in self.kps
        )
        stats.stragglers = sum(pe.stats.stragglers for pe in self.pes)
        stats.cancelled_direct = self.cancelled_direct
        stats.cancelled_via_rollback = self.cancelled_via_rollback
        stats.lazy_reused = self.lazy_reused
        if self.throttle is not None:
            stats.throttle_adjustments = self.throttle.adjustments
            stats.throttle_final_factor = self.throttle.factor
        stats.local_sends = sum(pe.stats.local_sends for pe in self.pes)
        stats.remote_sends = sum(pe.stats.remote_sends for pe in self.pes)
        stats.gvt_rounds = self.gvt_rounds
        stats.fossil_collected = self.fossil_collected
        stats.peak_pending = self.peak_pending
        stats.peak_processed = self.peak_processed
        stats.committed = self.fossil_collected
        stats.makespan_seconds = self.cost.seconds(self.makespan_units)
        stats.total_busy_seconds = self.cost.seconds(
            sum(pe.stats.busy for pe in self.pes)
        )
        stats.per_pe_busy_seconds = [
            self.cost.seconds(pe.stats.busy) for pe in self.pes
        ]
        stats.event_rate = (
            stats.committed / stats.makespan_seconds if stats.makespan_seconds else 0.0
        )
        model_stats = self.model.collect_stats(self.lps)
        return RunResult(model_stats=model_stats, run=stats, lps=self.lps)


def run_optimistic(model: Model, config: EngineConfig) -> RunResult:
    """Convenience wrapper: build a kernel and run it."""
    return TimeWarpKernel(model, config).run()
