"""Message transports between PEs.

On ROSS's shared-memory target, a send "merely involves assigning ownership
of the message's memory location from the source LP to the destination LP"
(§3.1.2) — i.e. delivery is immediate.  :class:`ImmediateTransport` models
that.  :class:`MailboxTransport` instead buffers cross-PE messages until
the end of the scheduling round, modelling a machine where inter-processor
delivery has latency; it exists so the Mattern-style asynchronous GVT
algorithm (which must account for messages in flight) has something real to
synchronise over, and as an ablation of delivery latency on rollback
behaviour.

Both transports deliver *locally* (same PE) immediately: an LP's self-sends
and neighbor sends within a PE never sit in a mailbox.
"""

from __future__ import annotations

from typing import Callable

from repro.core.event import Event
from repro.vt.time import TIME_HORIZON

__all__ = ["ImmediateTransport", "MailboxTransport", "make_transport"]


class ImmediateTransport:
    """Deliver every message instantly (shared-memory pointer handoff)."""

    name = "immediate"

    def __init__(self, receive: Callable[[Event], None], n_pes: int) -> None:
        self._receive = receive
        #: Called for messages annihilated while still in transit; the
        #: immediate transport never holds messages, so never calls it.
        self.on_drop: Callable[[Event], None] | None = None

    def deliver(self, event: Event, src_pe: int, dst_pe: int) -> None:
        """Hand the event to the destination PE right away."""
        self._receive(event)

    def flush(self) -> int:
        """No-op; immediate transport never holds messages."""
        return 0

    def min_in_flight_ts(self) -> float:
        """No in-flight messages ever exist."""
        return TIME_HORIZON

    def in_flight_count(self) -> int:
        """Messages currently in transit (always 0 here)."""
        return 0


class MailboxTransport:
    """Buffer cross-PE messages until the next round-boundary flush.

    Ordering contract (multi-producer): each destination PE has one
    mailbox that every source PE appends to, so a flush delivers a
    destination's messages in global *arrival* order — the order the
    ``deliver`` calls interleaved, which in particular preserves each
    (source, destination) pair's FIFO order.  No order is promised
    *across* destinations (flush walks the boxes in PE order, not in
    arrival order), and none is needed: Time Warp's correctness comes
    from timestamp order enforced downstream by the PEs' pending queues,
    while the per-pair FIFO is what the cancellation path leans on (an
    anti-message enqueued after its positive can never be flushed ahead
    of it).  ``tests/test_property_transport.py`` pins both properties.
    """

    name = "mailbox"

    def __init__(self, receive: Callable[[Event], None], n_pes: int) -> None:
        self._receive = receive
        self._boxes: list[list[Event]] = [[] for _ in range(n_pes)]
        self._count = 0
        #: Called for messages annihilated in the mailbox, so GVT message
        #: accounting still sees them "arrive" (otherwise a Mattern-style
        #: estimator would wait forever for the epoch to balance).
        self.on_drop: Callable[[Event], None] | None = None
        #: Messages annihilated while buffered (both by :meth:`flush`'s
        #: lazy drop and by :meth:`annihilate`'s batched sweep).
        self.annihilated = 0

    def deliver(self, event: Event, src_pe: int, dst_pe: int) -> None:
        """Queue cross-PE messages; local messages skip the mailbox."""
        if src_pe == dst_pe:
            self._receive(event)
        else:
            self._boxes[dst_pe].append(event)
            self._count += 1

    def flush(self) -> int:
        """Deliver all buffered messages (called at round boundaries).

        Per destination, delivery follows arrival order (see the class
        docstring's ordering contract); destinations are visited in PE
        order.  Messages cancelled while in the mailbox (direct
        cancellation caught the event before it was ever seen) are
        silently dropped — the cheapest possible annihilation.
        """
        delivered = 0
        for box in self._boxes:
            if not box:
                continue
            batch, box[:] = box[:], []
            for ev in batch:
                self._count -= 1
                if not ev.cancelled:
                    self._receive(ev)
                    delivered += 1
                else:
                    self.annihilated += 1
                    if self.on_drop is not None:
                        self.on_drop(ev)
        return delivered

    def annihilate(self) -> int:
        """Batched in-transit annihilation: drop every cancelled message.

        Called by the optimistic kernel after an anti-message batch flush,
        when a group of messages has just been flagged dead — one sweep
        reclaims them all instead of waiting for the next round's
        :meth:`flush` to skip them one by one.  Observationally identical
        to the lazy drop (cancelled messages are never delivered either
        way); this only tightens the mailbox's memory footprint and
        ``in_flight_count`` between rounds.
        """
        dropped = 0
        for box in self._boxes:
            if not box:
                continue
            kept = [ev for ev in box if not ev.cancelled]
            if len(kept) == len(box):
                continue
            for ev in box:
                if ev.cancelled:
                    dropped += 1
                    if self.on_drop is not None:
                        self.on_drop(ev)
            box[:] = kept
        if dropped:
            self._count -= dropped
            self.annihilated += dropped
        return dropped

    def min_in_flight_ts(self) -> float:
        """Minimum timestamp still sitting in a mailbox (for GVT)."""
        best = TIME_HORIZON
        for box in self._boxes:
            for ev in box:
                if not ev.cancelled and ev.key.ts < best:
                    best = ev.key.ts
        return best

    def in_flight_count(self) -> int:
        """Messages currently buffered in mailboxes."""
        return self._count


_TRANSPORTS = {
    ImmediateTransport.name: ImmediateTransport,
    MailboxTransport.name: MailboxTransport,
}


def make_transport(name: str, receive: Callable[[Event], None], n_pes: int):
    """Instantiate a transport by config name."""
    try:
        cls = _TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; choose from {sorted(_TRANSPORTS)}"
        ) from None
    return cls(receive, n_pes)
