"""LP → KP → PE mapping strategies.

"It is beneficial to assign adjacent LPs to the same KP and adjacent KPs to
the same PE in order to minimize [inter-PE and inter-KP communication].
Therefore, the hot-potato simulation uses an LP/KP/PE mapping which divides
up the network into rectangular areas of LPs and rectangular areas of KPs"
(§3.2.3).  Three strategies are provided:

* ``block``  — rectangular tiles of the grid per KP, KP tiles grouped into
  rectangular PE regions (the report's mapping; minimises boundary length),
* ``striped`` — contiguous row-major ranges (locality in one dimension),
* ``random`` — the §3.2.3 strawman: adjacent LPs land on arbitrary KPs/PEs,
  maximising inter-PE traffic.  Used by the ABL-MAP ablation.

A mapping is valid for *any* LP population, but ``block`` needs the grid
dimensions; non-grid models fall back to ``striped``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng.lcg import splitmix64

__all__ = ["Mapping", "build_mapping", "balanced_tile_counts"]


@dataclass(frozen=True)
class Mapping:
    """Assignment of every LP to a KP and every KP to a PE."""

    lp_to_kp: tuple[int, ...]
    kp_to_pe: tuple[int, ...]

    @property
    def n_lps(self) -> int:
        return len(self.lp_to_kp)

    @property
    def n_kps(self) -> int:
        return len(self.kp_to_pe)

    @property
    def n_pes(self) -> int:
        return max(self.kp_to_pe) + 1 if self.kp_to_pe else 1

    def lp_to_pe(self, lp: int) -> int:
        """PE hosting a given LP."""
        return self.kp_to_pe[self.lp_to_kp[lp]]

    def validate(self) -> None:
        """Check that every KP and PE id is in range and non-empty enough.

        Empty KPs are legal (ROSS allows them); empty PEs are not, since
        the executive schedules every PE.
        """
        n_kps = self.n_kps
        for lp, kp in enumerate(self.lp_to_kp):
            if not 0 <= kp < n_kps:
                raise ConfigurationError(f"LP {lp} mapped to invalid KP {kp}")
        used_pes = set(self.kp_to_pe)
        if used_pes != set(range(self.n_pes)):
            raise ConfigurationError(
                f"PE ids must be contiguous 0..{self.n_pes - 1}, got {sorted(used_pes)}"
            )


def balanced_tile_counts(n: int) -> tuple[int, int]:
    """Factor ``n`` into (rows, cols) as close to square as possible."""
    r = int(math.isqrt(n))
    while n % r:
        r -= 1
    return r, n // r


def _block_mapping(rows: int, cols: int, n_kps: int, n_pes: int) -> Mapping:
    """Rectangular KP tiles grouped into rectangular PE regions."""
    kp_r, kp_c = balanced_tile_counts(n_kps)
    if rows % kp_r or cols % kp_c:
        raise ConfigurationError(
            f"block mapping needs the {rows}x{cols} grid divisible into "
            f"{kp_r}x{kp_c} KP tiles; pick a KP count whose balanced "
            f"factorisation divides the grid (the report requires N to be a "
            f"multiple of 8 for its 64 KPs for the same reason, §3.3.1)"
        )
    tile_h, tile_w = rows // kp_r, cols // kp_c
    lp_to_kp = []
    for r in range(rows):
        for c in range(cols):
            lp_to_kp.append((r // tile_h) * kp_c + (c // tile_w))
    # Group the kp_r x kp_c grid of KPs into rectangular PE regions.
    pe_r, pe_c = balanced_tile_counts(n_pes)
    if kp_r % pe_r or kp_c % pe_c:
        raise ConfigurationError(
            f"cannot tile {kp_r}x{kp_c} KPs into {pe_r}x{pe_c} PE regions; "
            f"choose n_kps divisible by n_pes with compatible shapes"
        )
    reg_h, reg_w = kp_r // pe_r, kp_c // pe_c
    kp_to_pe = []
    for kr in range(kp_r):
        for kc in range(kp_c):
            kp_to_pe.append((kr // reg_h) * pe_c + (kc // reg_w))
    return Mapping(tuple(lp_to_kp), tuple(kp_to_pe))


def _striped_mapping(n_lps: int, n_kps: int, n_pes: int) -> Mapping:
    """Contiguous row-major ranges of LPs per KP, of KPs per PE."""
    lp_to_kp = tuple(min(lp * n_kps // n_lps, n_kps - 1) for lp in range(n_lps))
    kp_to_pe = tuple(min(kp * n_pes // n_kps, n_pes - 1) for kp in range(n_kps))
    return Mapping(lp_to_kp, kp_to_pe)


def _random_mapping(n_lps: int, n_kps: int, n_pes: int, seed: int) -> Mapping:
    """Deterministic pseudo-random scatter (the locality strawman)."""
    lp_to_kp = tuple(splitmix64(seed ^ (lp + 1)) % n_kps for lp in range(n_lps))
    # KPs stay grouped on PEs round-robin so each PE gets KPs.
    kp_to_pe = tuple(kp % n_pes for kp in range(n_kps))
    return Mapping(lp_to_kp, kp_to_pe)


def build_mapping(
    n_lps: int,
    n_kps: int,
    n_pes: int,
    strategy: str = "block",
    *,
    grid: tuple[int, int] | None = None,
    seed: int = 0,
) -> Mapping:
    """Build and validate an LP→KP→PE mapping.

    Parameters
    ----------
    n_lps, n_kps, n_pes:
        Population sizes.  ``n_kps`` must be a multiple of ``n_pes`` (each
        PE owns a whole number of KPs, as in ROSS).
    strategy:
        ``"block"`` (needs ``grid``), ``"striped"``, or ``"random"``.
    grid:
        (rows, cols) of the LP grid for the block strategy.
    seed:
        Seed for the random strategy.
    """
    if n_lps <= 0:
        raise ConfigurationError("model has no LPs")
    if n_kps <= 0 or n_pes <= 0:
        raise ConfigurationError("n_kps and n_pes must be positive")
    if n_kps < n_pes:
        raise ConfigurationError(
            f"need at least one KP per PE: n_kps={n_kps} < n_pes={n_pes}"
        )
    if n_kps % n_pes:
        raise ConfigurationError(
            f"n_kps ({n_kps}) must be a multiple of n_pes ({n_pes})"
        )
    if n_kps > n_lps:
        raise ConfigurationError(
            f"more KPs ({n_kps}) than LPs ({n_lps}) is pointless"
        )

    if strategy == "block":
        if grid is None:
            mapping = _striped_mapping(n_lps, n_kps, n_pes)
        else:
            rows, cols = grid
            if rows * cols != n_lps:
                raise ConfigurationError(
                    f"grid {rows}x{cols} does not match n_lps={n_lps}"
                )
            mapping = _block_mapping(rows, cols, n_kps, n_pes)
    elif strategy == "striped":
        mapping = _striped_mapping(n_lps, n_kps, n_pes)
    elif strategy == "random":
        mapping = _random_mapping(n_lps, n_kps, n_pes, seed)
    else:
        raise ConfigurationError(
            f"unknown mapping strategy {strategy!r}; "
            "choose 'block', 'striped' or 'random'"
        )
    mapping.validate()
    return mapping
