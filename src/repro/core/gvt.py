"""Global Virtual Time computation.

GVT is the floor of virtual time: no event below it can ever be rolled
back, so storage below it can be fossil-collected and statistics committed.
ROSS "uses Fujimoto's Global Virtual Time (GVT) algorithm for process
synchronization ... rather than a less efficient distributed GVT algorithm
such as Mattern's" (§3.1.2), which it can do because shared-memory delivery
is instantaneous.  We implement both:

* :class:`SynchronousGVT` — Fujimoto-style: at a round barrier, GVT is the
  minimum over all PEs' earliest unprocessed event and anything the
  transport still holds.  Exact, but requires the barrier.
* :class:`MatternGVT` — a Mattern-style epoch/coloring algorithm that never
  needs a barrier: sends are stamped with the current epoch, per-PE
  send/receive counts per epoch detect in-flight messages, and unbalanced
  epochs contribute the (conservative) minimum timestamp they ever sent.
  Produces a valid *lower bound* that converges to the exact GVT once
  mailboxes drain.  Meaningful with the mailbox transport, where messages
  really are in flight when the estimate is taken.
* :class:`IncrementalGVT` — the synchronous algorithm's *result* at
  amortised bookkeeping cost: per-PE pending-queue minima are maintained
  incrementally (lowered at message delivery and rollback-requeue time,
  invalidated when the PE executes or cancels), so each estimate re-peeks
  only the queues whose cached floor may have risen instead of scanning
  every queue every Fujimoto round.

All satisfy the safety property tested in the suite: the returned value
never exceeds the true minimum unprocessed timestamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.event import Event
from repro.vt.time import TIME_HORIZON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimistic import TimeWarpKernel

__all__ = ["SynchronousGVT", "MatternGVT", "IncrementalGVT", "make_gvt_manager"]


class SynchronousGVT:
    """Barrier GVT: exact minimum over pending queues and the transport."""

    name = "synchronous"
    #: This manager's send/receive hooks are no-ops; the kernel skips the
    #: two per-event calls entirely when this is False.
    tracks_messages = False

    def __init__(self, n_pes: int) -> None:
        self.last = 0.0

    def on_send(self, src_pe: int, event: Event) -> None:
        """Message hook (unused by the synchronous algorithm)."""
        return None

    def on_receive(self, dst_pe: int, event: Event) -> None:
        """Message hook (unused by the synchronous algorithm)."""
        return None

    def estimate(self, kernel: "TimeWarpKernel") -> float:
        """Exact GVT; call only at a round barrier (post-flush)."""
        m = kernel.transport.min_in_flight_ts()
        for pe in kernel.pes:
            key = pe.pending.peek_key()
            if key is not None and key.ts < m:
                m = key.ts
        self.last = m
        return m


class MatternGVT:
    """Epoch-coloring GVT estimator (Mattern-style, barrier-free bound).

    Every send is stamped with the sender's current epoch; the estimator
    closes the epoch and checks, per closed epoch, whether every sent
    message has been received.  Unbalanced epochs may still have messages
    in flight, so they contribute the minimum timestamp sent during that
    epoch — a conservative but safe bound.
    """

    name = "mattern"
    tracks_messages = True

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self.epoch = 0
        # Aggregate counters per epoch (a real distributed implementation
        # keeps these per PE and sums them on the token; the sum is all the
        # algorithm ever uses, so we fold eagerly).
        self._sent: dict[int, int] = {}
        self._recv: dict[int, int] = {}
        self._min_sent_ts: dict[int, float] = {}
        self.last = 0.0

    def on_send(self, src_pe: int, event: Event) -> None:
        """Stamp the message with the current epoch and count it."""
        e = self.epoch
        event.color = e
        self._sent[e] = self._sent.get(e, 0) + 1
        prev = self._min_sent_ts.get(e, TIME_HORIZON)
        if event.key.ts < prev:
            self._min_sent_ts[e] = event.key.ts

    def on_receive(self, dst_pe: int, event: Event) -> None:
        """Balance the message's epoch counter on arrival."""
        e = event.color
        self._recv[e] = self._recv.get(e, 0) + 1

    def estimate(self, kernel: "TimeWarpKernel") -> float:
        """One token pass: close the epoch and return a GVT lower bound."""
        closed = self.epoch
        self.epoch = closed + 1
        m = TIME_HORIZON
        for pe in kernel.pes:
            key = pe.pending.peek_key()
            if key is not None and key.ts < m:
                m = key.ts
        # Unbalanced closed epochs may still have messages in flight.
        for e in list(self._sent):
            if e > closed:
                continue
            if self._sent.get(e, 0) == self._recv.get(e, 0):
                # Fully delivered: this epoch can never lower GVT again.
                self._sent.pop(e, None)
                self._recv.pop(e, None)
                self._min_sent_ts.pop(e, None)
            else:
                ts = self._min_sent_ts.get(e, TIME_HORIZON)
                if ts < m:
                    m = ts
        # GVT is monotone; a lagging estimate never goes backwards.
        if m < self.last:
            m = self.last
        self.last = m
        return m


class IncrementalGVT:
    """Per-PE minimum trackers maintained at send/commit time.

    The synchronous estimator recomputes every PE's pending minimum at
    every Fujimoto round — O(PEs) queue peeks whether or not anything
    changed.  This manager keeps a cached *floor* per PE — a value
    guaranteed not to exceed that PE's true pending minimum — and only
    re-peeks queues whose floor may have risen since the last round:

    * **deliveries lower the floor in O(1)** (``on_receive`` on the send
      path, ``on_requeue`` when a rollback returns events to pending), so
      a PE that only *received* work since the last round is never
      scanned;
    * **executions and cancellations raise the true minimum**, so they
      mark the PE dirty (``note_executed`` once per active PE per round,
      ``note_cancelled`` from the cancellation path) and the next
      estimate re-peeks exactly those queues.

    Safety: a clean PE's floor only ever moved *down* since it was last
    exact, so it is always ≤ the true pending minimum; dirty PEs are
    re-peeked exactly; in-flight mailbox messages are accounted via
    ``min_in_flight_ts`` like the synchronous algorithm; and the estimate
    is clamped monotone (true GVT never moves backwards, so the clamp
    cannot overshoot it).  The paranoid invariant suite checks all of
    this against a full scan.
    """

    name = "incremental"
    #: The kernel must call on_receive per delivery (to lower floors) …
    tracks_messages = True
    #: … but on_send is a no-op, and the fused send path skips it.
    needs_send_hook = False
    #: Rollback requeues must call :meth:`on_requeue` (they bypass the
    #: delivery path, yet can push below a re-peeked floor).
    needs_requeue_hook = True

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        #: Per-PE cached lower bound on the pending minimum.
        self._floor = [TIME_HORIZON] * n_pes
        #: Per-PE "floor may have risen" flag; set by executions and
        #: cancellations, cleared by an exact re-peek.
        self._dirty = [True] * n_pes
        self.last = 0.0
        #: Estimates this manager served (rides RunStats/metrics as
        #: ``gvt_incremental_rounds``).
        self.incremental_rounds = 0
        #: Per-PE exact re-peeks performed, across all estimates; the
        #: saved work versus the synchronous scan is
        #: ``incremental_rounds * n_pes - repeeks``.
        self.repeeks = 0

    def on_send(self, src_pe: int, event: Event) -> None:
        """Message hook (unused; deliveries do the accounting)."""
        return None

    def on_receive(self, dst_pe: int, event: Event) -> None:
        """Delivery lowers the destination PE's floor in O(1)."""
        ts = event.entry[0]
        if ts < self._floor[dst_pe]:
            self._floor[dst_pe] = ts

    def on_requeue(self, dst_pe: int, ts: float) -> None:
        """A rollback returned an event to pending: lower the floor."""
        if ts < self._floor[dst_pe]:
            self._floor[dst_pe] = ts

    def note_executed(self, pe_id: int) -> None:
        """The PE popped events this round: its floor may have risen."""
        self._dirty[pe_id] = True

    def note_cancelled(self, pe_id: int) -> None:
        """A pending event died: the floor may have risen (and, if the PE
        then goes idle forever, a stale-low floor would stall GVT — the
        dirty mark guarantees one exact re-peek)."""
        self._dirty[pe_id] = True

    def estimate(self, kernel: "TimeWarpKernel") -> float:
        """Re-peek dirty PEs only; clean floors stand in for the rest."""
        self.incremental_rounds += 1
        floor = self._floor
        dirty = self._dirty
        repeeks = 0
        m = kernel.transport.min_in_flight_ts()
        for pe in kernel.pes:
            i = pe.id
            if dirty[i]:
                key = pe.pending.peek_key()
                floor[i] = key.ts if key is not None else TIME_HORIZON
                dirty[i] = False
                repeeks += 1
            f = floor[i]
            if f < m:
                m = f
        self.repeeks += repeeks
        # GVT is monotone; a floor lowered by a since-cancelled event (and
        # not yet re-peeked) must not drag the estimate backwards.
        if m < self.last:
            m = self.last
        self.last = m
        return m


_MANAGERS = {
    SynchronousGVT.name: SynchronousGVT,
    MatternGVT.name: MatternGVT,
    IncrementalGVT.name: IncrementalGVT,
}


def make_gvt_manager(name: str, n_pes: int):
    """Instantiate a GVT manager by config name."""
    try:
        return _MANAGERS[name](n_pes)
    except KeyError:
        raise ValueError(
            f"unknown GVT algorithm {name!r}; choose from {sorted(_MANAGERS)}"
        ) from None
