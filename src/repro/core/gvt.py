"""Global Virtual Time computation.

GVT is the floor of virtual time: no event below it can ever be rolled
back, so storage below it can be fossil-collected and statistics committed.
ROSS "uses Fujimoto's Global Virtual Time (GVT) algorithm for process
synchronization ... rather than a less efficient distributed GVT algorithm
such as Mattern's" (§3.1.2), which it can do because shared-memory delivery
is instantaneous.  We implement both:

* :class:`SynchronousGVT` — Fujimoto-style: at a round barrier, GVT is the
  minimum over all PEs' earliest unprocessed event and anything the
  transport still holds.  Exact, but requires the barrier.
* :class:`MatternGVT` — a Mattern-style epoch/coloring algorithm that never
  needs a barrier: sends are stamped with the current epoch, per-PE
  send/receive counts per epoch detect in-flight messages, and unbalanced
  epochs contribute the (conservative) minimum timestamp they ever sent.
  Produces a valid *lower bound* that converges to the exact GVT once
  mailboxes drain.  Meaningful with the mailbox transport, where messages
  really are in flight when the estimate is taken.

Both satisfy the safety property tested in the suite: the returned value
never exceeds the true minimum unprocessed timestamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.event import Event
from repro.vt.time import TIME_HORIZON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimistic import TimeWarpKernel

__all__ = ["SynchronousGVT", "MatternGVT", "make_gvt_manager"]


class SynchronousGVT:
    """Barrier GVT: exact minimum over pending queues and the transport."""

    name = "synchronous"
    #: This manager's send/receive hooks are no-ops; the kernel skips the
    #: two per-event calls entirely when this is False.
    tracks_messages = False

    def __init__(self, n_pes: int) -> None:
        self.last = 0.0

    def on_send(self, src_pe: int, event: Event) -> None:
        """Message hook (unused by the synchronous algorithm)."""
        return None

    def on_receive(self, dst_pe: int, event: Event) -> None:
        """Message hook (unused by the synchronous algorithm)."""
        return None

    def estimate(self, kernel: "TimeWarpKernel") -> float:
        """Exact GVT; call only at a round barrier (post-flush)."""
        m = kernel.transport.min_in_flight_ts()
        for pe in kernel.pes:
            key = pe.pending.peek_key()
            if key is not None and key.ts < m:
                m = key.ts
        self.last = m
        return m


class MatternGVT:
    """Epoch-coloring GVT estimator (Mattern-style, barrier-free bound).

    Every send is stamped with the sender's current epoch; the estimator
    closes the epoch and checks, per closed epoch, whether every sent
    message has been received.  Unbalanced epochs may still have messages
    in flight, so they contribute the minimum timestamp sent during that
    epoch — a conservative but safe bound.
    """

    name = "mattern"
    tracks_messages = True

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self.epoch = 0
        # Aggregate counters per epoch (a real distributed implementation
        # keeps these per PE and sums them on the token; the sum is all the
        # algorithm ever uses, so we fold eagerly).
        self._sent: dict[int, int] = {}
        self._recv: dict[int, int] = {}
        self._min_sent_ts: dict[int, float] = {}
        self.last = 0.0

    def on_send(self, src_pe: int, event: Event) -> None:
        """Stamp the message with the current epoch and count it."""
        e = self.epoch
        event.color = e
        self._sent[e] = self._sent.get(e, 0) + 1
        prev = self._min_sent_ts.get(e, TIME_HORIZON)
        if event.key.ts < prev:
            self._min_sent_ts[e] = event.key.ts

    def on_receive(self, dst_pe: int, event: Event) -> None:
        """Balance the message's epoch counter on arrival."""
        e = event.color
        self._recv[e] = self._recv.get(e, 0) + 1

    def estimate(self, kernel: "TimeWarpKernel") -> float:
        """One token pass: close the epoch and return a GVT lower bound."""
        closed = self.epoch
        self.epoch = closed + 1
        m = TIME_HORIZON
        for pe in kernel.pes:
            key = pe.pending.peek_key()
            if key is not None and key.ts < m:
                m = key.ts
        # Unbalanced closed epochs may still have messages in flight.
        for e in list(self._sent):
            if e > closed:
                continue
            if self._sent.get(e, 0) == self._recv.get(e, 0):
                # Fully delivered: this epoch can never lower GVT again.
                self._sent.pop(e, None)
                self._recv.pop(e, None)
                self._min_sent_ts.pop(e, None)
            else:
                ts = self._min_sent_ts.get(e, TIME_HORIZON)
                if ts < m:
                    m = ts
        # GVT is monotone; a lagging estimate never goes backwards.
        if m < self.last:
            m = self.last
        self.last = m
        return m


_MANAGERS = {
    SynchronousGVT.name: SynchronousGVT,
    MatternGVT.name: MatternGVT,
}


def make_gvt_manager(name: str, n_pes: int):
    """Instantiate a GVT manager by config name."""
    try:
        return _MANAGERS[name](n_pes)
    except KeyError:
        raise ValueError(
            f"unknown GVT algorithm {name!r}; choose from {sorted(_MANAGERS)}"
        ) from None
