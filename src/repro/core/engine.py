"""The sequential discrete-event engine — the correctness oracle.

"It is important to validate the results of the parallel simulation with
the results of the sequential simulation.  Consequently, the only way for
the results of the parallel simulation to match the sequential model is for
the parallel model to be deterministic." (§4.2.1)

This engine shares the model API (:class:`~repro.core.lp.LogicalProcess`,
:class:`~repro.core.lp.Model`) but none of the Time Warp machinery: one
heap, events executed strictly in key order, no rollback paths at all.
Its committed results define what every optimistic configuration must
reproduce bit-for-bit.

Cost accounting mirrors Fig 5's "1 Processor" line: events are charged the
cost-model's per-event cost (with the full LP population's cache factor)
plus local send costs — no GVT, fossil or rollback overhead, because a
sequential simulator has none.
"""

from __future__ import annotations

from repro.core.costmodel import CostModel
from repro.core.event import Event
from repro.core.executor import Executor
from repro.core.lp import LogicalProcess, Model
from repro.core.queue import PendingQueue
from repro.core.result import RunResult
from repro.core.stats import RunStats
from repro.errors import ConfigurationError

__all__ = ["SequentialEngine", "run_sequential"]


class SequentialEngine(Executor):
    """Classic single-heap discrete-event simulator."""

    kind = "sequential"

    def __init__(
        self,
        model: Model,
        end_time: float,
        *,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        pool: bool = True,
        paranoid: bool = False,
        executor: str = "scalar",
    ) -> None:
        if end_time <= 0:
            raise ConfigurationError(f"end_time must be positive, got {end_time}")
        self.end_time = end_time
        self.seed = seed
        self.paranoid = paranoid
        self.cost = cost if cost is not None else CostModel()
        # The population (scalar or SoA — the sequential engine runs both
        # through the same strict-key-order loop, so an SoA build changes
        # nothing observable here).
        self._init_population(model, executor)
        self.pending = PendingQueue()
        self.sends = 0
        #: Optional event tracer (see repro.core.trace); in a sequential
        #: run every executed event commits immediately.
        self.tracer = None
        #: Optional metrics recorder (see repro.obs.metrics).  A
        #: sequential run has no GVT rounds, so the recorder's
        #: ``interval`` (in events) paces the samples; when detached the
        #: run loop is the exact allocation-free loop from before.
        self.metrics = None
        #: Optional span tracer (see repro.obs.spans).  No rounds here
        #: either, so one ``exec`` span covers every ``spans.interval``
        #: events; detached, the run loop is the exact fast loop.
        self.spans = None
        #: Optional checkpointer (see repro.ckpt); consulted every
        #: ``ckpt.seq_events`` commits, never per event.
        self.ckpt = None
        #: Optional liveness watchdog (see repro.health); consulted at
        #: the same event-interval boundaries as the checkpointer.
        self.health = None
        #: Run-loop state grafted by a checkpoint restore; consumed (and
        #: cleared) at the top of :meth:`run`.
        self._resume = None
        #: Event recycling: a committed event is dead the moment its
        #: ``commit`` hook returns (sequential execution never rolls back),
        #: so it goes straight back to the free list.
        self._bind_lps(seed, self._init_pool(pool))

    def _sample_metrics(self, recorder, now: float, processed: int) -> None:
        """Feed the recorder one sample (sequential: commit == execute)."""
        recorder.sample(
            gvt=now,
            committed=processed,
            processed=processed,
            fossil_collected=processed,
            pending=len(self.pending),
            pool_hit_rate=self._pool_hit_rate(),
        )

    def _emit(self, src_lp: LogicalProcess, ev: Event) -> None:
        self.sends += 1
        self.pending.push(ev)

    def schedule(self, ev: Event) -> None:
        """Executor ABI: bare enqueue into the single pending heap."""
        self.pending.push(ev)

    def run(self) -> RunResult:
        """Execute to the end barrier and collect statistics."""
        resume = self._resume
        if resume is None:
            for lp in self.lps:
                lp._now = -1.0
                lp.on_init()

        lps = self.lps
        pop_below = self.pending.pop_below
        end = self.end_time
        tracer = self.tracer
        release = self.pool.release if self.pool is not None else None
        metrics = self.metrics
        spans = self.spans
        ckpt = self.ckpt
        health = self.health
        processed = 0
        if resume is not None:
            processed = resume["processed"]
            self._resume = None
        if (
            metrics is None
            and spans is None
            and ckpt is None
            and health is None
            and not self.paranoid
        ):
            while True:
                ev = pop_below(end)
                if ev is None:
                    break
                lp = lps[ev.dst]
                lp._now = ev.key.ts
                lp.forward(ev)
                lp.commit(ev)
                processed += 1
                if tracer is not None:
                    tracer.on_exec(ev)
                    tracer.on_commit(ev)
                if release is not None:
                    release(ev)
        elif spans is None and ckpt is None and health is None and not self.paranoid:
            # Identical event-by-event behaviour, plus a metric sample
            # every ``metrics.interval`` events and one at the barrier.
            interval = metrics.interval
            next_sample = (processed // interval + 1) * interval
            while True:
                ev = pop_below(end)
                if ev is None:
                    break
                lp = lps[ev.dst]
                now = ev.key.ts
                lp._now = now
                lp.forward(ev)
                lp.commit(ev)
                processed += 1
                if tracer is not None:
                    tracer.on_exec(ev)
                    tracer.on_commit(ev)
                if release is not None:
                    release(ev)
                if processed >= next_sample:
                    next_sample += interval
                    self._sample_metrics(metrics, now, processed)
            self._sample_metrics(metrics, end, processed)
        else:
            # Spans, checkpointing and/or paranoid checks: the metric
            # loop plus an ``exec`` span every ``spans.interval`` events
            # and a boundary every ``seq_events`` commits.  Pacing is
            # anchored to absolute commit counts so a resumed run hits
            # the same boundaries as the uninterrupted one.
            from repro.core.invariants import check_sequential

            interval = metrics.interval if metrics is not None else 0
            next_sample = (
                (processed // interval + 1) * interval
                if metrics is not None
                else -1
            )
            sinterval = spans.interval if spans is not None else 0
            next_span = (
                (processed // sinterval + 1) * sinterval
                if spans is not None
                else -1
            )
            span_t0 = spans.clock() if spans is not None else 0.0
            span_base = processed
            bstep = ckpt.seq_events if ckpt is not None else 1024
            next_boundary = (processed // bstep + 1) * bstep
            paranoid = self.paranoid
            while True:
                ev = pop_below(end)
                if ev is None:
                    break
                lp = lps[ev.dst]
                now = ev.key.ts
                lp._now = now
                lp.forward(ev)
                lp.commit(ev)
                processed += 1
                if tracer is not None:
                    tracer.on_exec(ev)
                    tracer.on_commit(ev)
                if release is not None:
                    release(ev)
                if metrics is not None and processed >= next_sample:
                    next_sample += interval
                    self._sample_metrics(metrics, now, processed)
                if spans is not None and processed >= next_span:
                    next_span += sinterval
                    t1 = spans.clock()
                    spans.record(
                        "exec", span_t0, t1, pe=0, n=processed - span_base
                    )
                    span_t0 = t1
                    span_base = processed
                if processed >= next_boundary:
                    next_boundary += bstep
                    if paranoid:
                        check_sequential(self, now)
                    if health is not None:
                        health.boundary_sequential(self, now)
                    if ckpt is not None:
                        written_before = ckpt.written
                        t0 = spans.clock() if spans is not None else 0.0
                        ckpt.boundary(self, {"processed": processed})
                        if spans is not None and ckpt.written > written_before:
                            spans.record("snapshot", t0, spans.clock())
            if metrics is not None:
                self._sample_metrics(metrics, end, processed)
            if spans is not None and processed > span_base:
                spans.record(
                    "exec",
                    span_t0,
                    spans.clock(),
                    pe=0,
                    n=processed - span_base,
                )

        stats = RunStats(engine="sequential", n_pes=1, n_kps=1)
        stats.soa_decline_reason = self.soa_decline
        stats.processed = processed
        stats.committed = processed
        stats.local_sends = self.sends
        if self.pool is not None:
            stats.pool_hits = self.pool.hits
            stats.pool_allocs = self.pool.allocs
        n_lps = len(lps)
        busy_units = processed * self.cost.event_cost(n_lps) + (
            self.sends * self.cost.local_send
        )
        stats.makespan_seconds = self.cost.seconds(busy_units)
        stats.total_busy_seconds = stats.makespan_seconds
        stats.per_pe_busy_seconds = [stats.makespan_seconds]
        stats.event_rate = (
            stats.committed / stats.makespan_seconds if stats.makespan_seconds else 0.0
        )
        model_stats = self.model.collect_stats(lps)
        return RunResult(model_stats=model_stats, run=stats, lps=lps)


def run_sequential(
    model: Model,
    end_time: float,
    *,
    seed: int = 0x5EED,
    cost: CostModel | None = None,
    pool: bool = True,
    paranoid: bool = False,
    executor: str = "scalar",
    tracer=None,
    metrics=None,
    spans=None,
    checkpointer=None,
    health=None,
) -> RunResult:
    """Convenience wrapper: build a sequential engine, attach telemetry, run."""
    engine = SequentialEngine(
        model,
        end_time,
        seed=seed,
        cost=cost,
        pool=pool,
        paranoid=paranoid,
        executor=executor,
    )
    if tracer is not None:
        engine.attach_tracer(tracer)
    if metrics is not None:
        engine.attach_metrics(metrics)
    if spans is not None:
        engine.attach_spans(spans)
    if health is not None:
        engine.attach_health(health)
    if checkpointer is not None:
        engine.attach_checkpointer(checkpointer)
    return engine.run()
