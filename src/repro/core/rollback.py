"""Rollback strategies: reverse computation vs state saving.

ROSS's defining feature is rollback via *reverse computation*: instead of
checkpointing state before every event (the Georgia Tech Time Warp
approach), it "rolls back the simulation by computing the events in
reverse" (§3.2.1), which costs almost nothing on the forward path.

Both strategies are implemented behind one small interface so the ablation
benchmark (ABL-RC in DESIGN.md) can compare them on identical workloads:

* :class:`ReverseComputation` — forward path stores nothing beyond what the
  model stashes in ``event.saved``; undo calls the model's ``reverse``
  handler and rewinds the RNG by the journaled draw count.
* :class:`StateSaving` — forward path snapshots LP state (plus the RNG
  checkpoint) before every event; undo restores the snapshot.  The RNG is
  restored from its O(1) checkpoint rather than stepped backward.

Both restore the LP's send-sequence counter from the event journal, so
re-executed events regenerate identical event keys — the property the
engine-equivalence (determinism) guarantee rests on.
"""

from __future__ import annotations

from repro.core.event import Event
from repro.core.lp import LogicalProcess

__all__ = ["RollbackStrategy", "ReverseComputation", "StateSaving", "make_strategy"]


class RollbackStrategy:
    """Interface: called by the kernel around every event execution."""

    #: Name used in configs and reports.
    name = "abstract"

    def before(self, lp: LogicalProcess, event: Event) -> None:
        """Forward-path hook, called just before ``lp.forward(event)``."""
        raise NotImplementedError

    def undo(self, lp: LogicalProcess, event: Event) -> None:
        """Restore ``lp`` to its exact state from before ``event`` ran.

        The kernel has already cancelled the event's sent messages; this
        hook is responsible for model state, RNG position, and the send
        sequence counter.
        """
        raise NotImplementedError


class ReverseComputation(RollbackStrategy):
    """Undo events by running the model's reverse handler (ROSS default)."""

    name = "reverse"

    def before(self, lp: LogicalProcess, event: Event) -> None:
        # Reverse computation needs no forward-path work: the handler's
        # own ``event.saved`` writes are the entire checkpoint.
        return None

    def undo(self, lp: LogicalProcess, event: Event) -> None:
        # Reverse handlers may read lp.now (e.g. to recompute a quantity
        # the forward handler derived from it); guarantee it matches the
        # event being undone, not whatever ran last.
        lp._now = event.key.ts
        lp.reverse(event)
        lp.rng.reverse(event.rng_draws)
        lp.send_seq = event.prev_send_seq


class StateSaving(RollbackStrategy):
    """Undo events by restoring a per-event state snapshot (GTW style)."""

    name = "copy"

    def before(self, lp: LogicalProcess, event: Event) -> None:
        event.snapshot = (lp.snapshot_state(), lp.rng.checkpoint())

    def undo(self, lp: LogicalProcess, event: Event) -> None:
        state, rng_ckpt = event.snapshot
        lp.restore_state(state)
        lp.rng.restore(rng_ckpt)
        lp.send_seq = event.prev_send_seq
        event.snapshot = None


_STRATEGIES = {
    ReverseComputation.name: ReverseComputation,
    StateSaving.name: StateSaving,
}


def make_strategy(name: str) -> RollbackStrategy:
    """Instantiate a rollback strategy by config name ('reverse' | 'copy')."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown rollback strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
