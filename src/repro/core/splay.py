"""Splay-tree pending-event queue — ROSS's event-list data structure.

ROSS schedules events from a splay tree rather than a binary heap: the
access pattern of a discrete-event simulator is heavily skewed toward the
near future, and splay trees' amortised self-adjustment exploits that
(Sleator & Tarjan's classic result; ROSS inherits the choice from GTW).

This implementation provides the same interface as
:class:`repro.core.queue.PendingQueue` — push / peek / pop / pop_below /
lazy cancellation — and orders nodes by the same prebuilt ``Event.entry``
tuples ``(ts, origin, seq, serial, event)``, so the two structures yield
*identical* pop sequences (a property test asserts this).  The unique
``serial`` stamp breaks ordering ties between a dead (cancelled) entry
and a live re-send reusing its key, and guarantees comparisons never
reach the Event object itself.

The tree uses iterative *top-down splaying* (no recursion, no parent
pointers), splaying on every insert and on min-extraction.
"""

from __future__ import annotations

from repro.core.event import Event
from repro.vt.time import EventKey

__all__ = ["SplayPendingQueue"]


class _Node:
    __slots__ = ("key", "event", "left", "right")

    def __init__(self, key: tuple, event: Event) -> None:
        self.key = key
        self.event = event
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


class SplayPendingQueue:
    """Min-ordered event set backed by a top-down splay tree."""

    __slots__ = ("_root", "_live", "_size")

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._live = 0
        self._size = 0

    # ------------------------------------------------------------------
    # Core splay operation (iterative top-down).
    # ------------------------------------------------------------------
    @staticmethod
    def _splay(root: _Node | None, key: tuple) -> _Node | None:
        """Splay the node with ``key`` (or its neighbor) to the root."""
        if root is None:
            return None
        # Header node whose left/right collect the split-off subtrees.
        header = _Node((), None)  # type: ignore[arg-type]
        left_tail = right_tail = header
        t = root
        while True:
            if key < t.key:
                child = t.left
                if child is None:
                    break
                if key < child.key:
                    # Zig-zig: rotate right.
                    t.left = child.right
                    child.right = t
                    t = child
                    if t.left is None:
                        break
                # Link right.
                right_tail.left = t
                right_tail = t
                t = t.left
            elif key > t.key:
                child = t.right
                if child is None:
                    break
                if key > child.key:
                    # Zag-zag: rotate left.
                    t.right = child.left
                    child.left = t
                    t = child
                    if t.right is None:
                        break
                # Link left.
                left_tail.right = t
                left_tail = t
                t = t.right
            else:
                break
        # Assemble.
        left_tail.right = t.left
        right_tail.left = t.right
        t.left = header.right
        t.right = header.left
        return t

    # ------------------------------------------------------------------
    # Queue interface.
    # ------------------------------------------------------------------
    def push(self, event: Event) -> None:
        """Insert an event (must not already be queued)."""
        key = event.entry
        node = _Node(key, event)
        root = self._splay(self._root, key)
        if root is not None:
            # Keys are unique (the entry serial is), so the splayed root
            # is strictly smaller or larger.
            if key < root.key:
                node.right = root
                node.left = root.left
                root.left = None
            else:
                node.left = root
                node.right = root.right
                root.right = None
        self._root = node
        event.in_pending = True
        self._live += 1
        self._size += 1

    def _min_node(self) -> _Node | None:
        """Splay the live minimum to the root, discarding dead entries."""
        while True:
            root = self._root
            if root is None:
                return None
            # Walk the left spine with zig-zig rotations (top-down splay
            # toward -infinity).
            while root.left is not None:
                child = root.left
                root.left = child.right
                child.right = root
                root = child
            self._root = root
            if root.event.cancelled:
                # Drop the dead minimum: its right subtree replaces it.
                root.event.in_pending = False
                self._root = root.right
                self._size -= 1
                continue
            return root

    def peek(self) -> Event | None:
        """The minimum live event, or ``None`` when empty."""
        node = self._min_node()
        return node.event if node is not None else None

    def peek_key(self) -> EventKey | None:
        """Key of the minimum live event, or ``None`` when empty."""
        ev = self.peek()
        return ev.key if ev is not None else None

    def pop(self) -> Event:
        """Remove and return the minimum live event."""
        node = self._min_node()
        if node is None:
            raise IndexError("pop from empty SplayPendingQueue")
        self._root = node.right  # the min has no left child after splay
        node.event.in_pending = False
        self._live -= 1
        self._size -= 1
        return node.event

    def pop_below(self, limit_ts: float) -> Event | None:
        """Pop the minimum live event iff its ts is below ``limit_ts``."""
        node = self._min_node()
        if node is None or node.key[0] >= limit_ts:
            return None
        self._root = node.right
        node.event.in_pending = False
        self._live -= 1
        self._size -= 1
        return node.event

    def note_cancelled(self) -> None:
        """Record an external cancellation (lazy deletion)."""
        self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self):
        """Yield live events in arbitrary order (iterative traversal)."""
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if not node.event.cancelled:
                yield node.event
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
