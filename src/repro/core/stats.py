"""Kernel statistics: per-PE, per-KP and run-level counters.

The report's simulation analysis (§4.2) is entirely in terms of these
numbers — event rate, total events rolled back, rollback containment by
KPs — so the kernel measures them precisely rather than approximately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PEStats", "KPStats", "RunStats"]


@dataclass(slots=True)
class PEStats:
    """Counters for one processing element (slotted: several of these

    fields are updated on every event execution and send).
    """

    #: Forward event executions, including re-executions after rollback.
    processed: int = 0
    #: Events sent to an LP on the same PE.
    local_sends: int = 0
    #: Events sent to an LP on a different PE (the expensive kind; the
    #: block LP/KP/PE mapping exists to minimise these, §3.2.3).
    remote_sends: int = 0
    #: Straggler messages received (each triggers a primary rollback).
    stragglers: int = 0
    #: Virtual busy time accumulated under the cost model, in cost units.
    busy: float = 0.0
    #: Busy time within the current scheduling round (reset each round).
    round_busy: float = 0.0


@dataclass(slots=True)
class KPStats:
    """Counters for one kernel process."""

    #: Rollback episodes that started at this KP.
    rollbacks: int = 0
    #: Processed events undone at this KP (the report's "Total Events
    #: Rolled Back" is the sum over KPs).
    events_rolled_back: int = 0
    #: Undone events whose LP differs from the LP the trigger targeted —
    #: the "false rollbacks" KPs exist to contain (§4.2.3).
    false_rollback_events: int = 0


@dataclass
class RunStats:
    """Aggregated statistics for one engine run."""

    engine: str = "sequential"
    n_pes: int = 1
    n_kps: int = 1
    #: Committed (never rolled back, below final GVT) event executions.
    committed: int = 0
    #: Total forward executions including work later undone.
    processed: int = 0
    events_rolled_back: int = 0
    rollbacks: int = 0
    false_rollback_events: int = 0
    stragglers: int = 0
    cancelled_direct: int = 0
    cancelled_via_rollback: int = 0
    #: Messages reused in place by lazy cancellation (never cancelled).
    lazy_reused: int = 0
    #: Batched anti-message flushes under lazy cancellation: one per
    #: forward execution that discovered at least one divergent or
    #: orphaned message (each flush does one secondary rollback per
    #: affected KP instead of one cascade per message).
    antimsg_batches: int = 0
    #: GVT estimates served by the incremental manager (0 under the
    #: synchronous or Mattern algorithms).
    gvt_incremental_rounds: int = 0
    #: Vectorized-executor activity: same-timestamp-band runs dispatched
    #: through the fused struct-of-arrays steppers, and the events those
    #: runs advanced (both 0 under the scalar executor or when the model
    #: has no SoA build).
    soa_batches: int = 0
    soa_lps_stepped: int = 0
    #: Why a requested vectorized executor fell back to scalar stepping
    #: ("" when vectorization was not requested, or ran).
    soa_decline_reason: str = ""
    #: Optimism-throttle activity (0 when the throttle is off or idle).
    throttle_adjustments: int = 0
    #: Final optimism factor (1.0 = full batch/window).
    throttle_final_factor: float = 1.0
    local_sends: int = 0
    remote_sends: int = 0
    gvt_rounds: int = 0
    fossil_collected: int = 0
    #: Event-pool accounting: acquires served from the free list vs fresh
    #: Event constructions (both zero when pooling is disabled).
    pool_hits: int = 0
    pool_allocs: int = 0
    #: Peak live events in pending queues / processed lists, sampled at
    #: GVT boundaries (memory-footprint proxies; fossil collection bounds
    #: the processed peak).
    peak_pending: int = 0
    peak_processed: int = 0
    #: Virtual wall-clock makespan in cost-model seconds.
    makespan_seconds: float = 0.0
    #: committed / makespan_seconds (the report's "Event Rate", §4.2).
    event_rate: float = 0.0
    #: Sum of per-PE busy time (for utilisation analysis).
    total_busy_seconds: float = 0.0
    #: Fault-injection activity (all zero when no plan is attached; see
    #: repro.faults).  Transport counters come from the FaultyTransport
    #: wrapper, stall rounds from the EngineFaults driver.
    transport_dropped: int = 0
    transport_duplicated: int = 0
    transport_delayed: int = 0
    pe_stall_rounds: int = 0
    #: Multiprocess-mode activity (all zero under inline parallelism; see
    #: repro.mp).  ``procs`` is the worker-process count, the ring
    #: counters aggregate the shared-memory data rings across workers,
    #: and ``gvt_token_rounds`` counts token passes of the cross-process
    #: GVT waves.
    procs: int = 1
    ring_messages: int = 0
    ring_bytes: int = 0
    ring_full_stalls: int = 0
    gvt_token_rounds: int = 0
    per_pe_busy_seconds: list[float] = field(default_factory=list)

    @property
    def efficiency_ratio(self) -> float:
        """Committed / processed — the fraction of work not wasted."""
        return self.committed / self.processed if self.processed else 1.0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of event allocations served by recycling (0 when off)."""
        total = self.pool_hits + self.pool_allocs
        return self.pool_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Flat dict for table output."""
        d = {
            "engine": self.engine,
            "n_pes": self.n_pes,
            "n_kps": self.n_kps,
            "committed": self.committed,
            "processed": self.processed,
            "events_rolled_back": self.events_rolled_back,
            "rollbacks": self.rollbacks,
            "false_rollback_events": self.false_rollback_events,
            "stragglers": self.stragglers,
            "cancelled_direct": self.cancelled_direct,
            "cancelled_via_rollback": self.cancelled_via_rollback,
            "lazy_reused": self.lazy_reused,
            "antimsg_batches": self.antimsg_batches,
            "gvt_incremental_rounds": self.gvt_incremental_rounds,
            "soa_batches": self.soa_batches,
            "soa_lps_stepped": self.soa_lps_stepped,
            "soa_decline_reason": self.soa_decline_reason,
            "throttle_adjustments": self.throttle_adjustments,
            "throttle_final_factor": self.throttle_final_factor,
            "local_sends": self.local_sends,
            "remote_sends": self.remote_sends,
            "gvt_rounds": self.gvt_rounds,
            "fossil_collected": self.fossil_collected,
            "pool_hits": self.pool_hits,
            "pool_allocs": self.pool_allocs,
            "pool_hit_rate": self.pool_hit_rate,
            "peak_pending": self.peak_pending,
            "peak_processed": self.peak_processed,
            "makespan_seconds": self.makespan_seconds,
            "event_rate": self.event_rate,
            "total_busy_seconds": self.total_busy_seconds,
            "transport_dropped": self.transport_dropped,
            "transport_duplicated": self.transport_duplicated,
            "transport_delayed": self.transport_delayed,
            "pe_stall_rounds": self.pe_stall_rounds,
            "procs": self.procs,
            "ring_messages": self.ring_messages,
            "ring_bytes": self.ring_bytes,
            "ring_full_stalls": self.ring_full_stalls,
            "gvt_token_rounds": self.gvt_token_rounds,
        }
        return d
