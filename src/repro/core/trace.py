"""Event tracing: observe what the kernel executes, undoes and commits.

A :class:`Tracer` attached to an engine records one
:class:`TraceRecord` per lifecycle transition:

* ``EXEC``     — an event was forward-executed,
* ``UNDO``     — a processed event was rolled back,
* ``COMMIT``   — an event fell below GVT (optimistic) or executed
  (sequential) and became irreversible.

Uses:

* debugging models ("why did my counter go negative?"),
* the strongest determinism check we have: the *committed sequence* of an
  optimistic run — in key order — must equal the sequential engine's
  execution sequence, event for event (not just the final statistics),
* rollback forensics: which LPs thrash, what the straggler chains look
  like.

Tracing costs one callback per transition, so it is off by default; both
engines accept ``tracer=`` at run time via their kernels' ``attach_tracer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.event import Event

__all__ = ["TraceRecord", "Tracer", "EXEC", "UNDO", "COMMIT", "TRIMMED_COMMITS_MSG"]

EXEC = "EXEC"
UNDO = "UNDO"
COMMIT = "COMMIT"

#: Shared error text for a committed-sequence request that cannot be
#: answered exactly because COMMIT records were dropped (a bounded
#: in-memory tracer overflowed, or a recording is incomplete).
TRIMMED_COMMITS_MSG = (
    "committed_sequence() would be incomplete: COMMIT records were "
    "trimmed; run with an unbounded Tracer or stream the full trace to "
    "a file (repro.obs.StreamingTracer)"
)


@dataclass(frozen=True)
class TraceRecord:
    """One lifecycle transition of one event."""

    action: str
    ts: float
    origin: int
    seq: int
    dst: int
    kind: str

    @classmethod
    def of(cls, action: str, event: Event) -> "TraceRecord":
        key = event.key
        return cls(action, key.ts, key.origin, key.seq, event.dst, event.kind)

    def __str__(self) -> str:
        return (
            f"{self.action:<6} @{self.ts:.6f} {self.kind} "
            f"lp{self.origin}:{self.seq} -> lp{self.dst}"
        )


class Tracer:
    """Collects trace records; optionally bounded to the most recent N.

    Bounded-window semantics (``limit=N``): :attr:`counts` stays exact
    for the whole run, but :attr:`records` keeps only the most recent
    ``N`` entries, so every query that walks the records —
    :meth:`select`, :meth:`thrash_by_lp`, :meth:`format` — sees *only
    that window*, not the full history.  :meth:`committed_sequence` is
    the one query where a silently truncated answer would be actively
    dangerous (a partial sequence can compare equal to a partial
    sequence of a genuinely different run), so it raises
    :class:`ValueError` if any COMMIT record was trimmed
    (:attr:`trimmed_commits` > 0).  For full-fidelity traces of long
    runs in bounded memory, stream to a file instead with
    :class:`repro.obs.StreamingTracer`.
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"trace limit must be positive, got {limit}")
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.counts = {EXEC: 0, UNDO: 0, COMMIT: 0}
        #: Records dropped from the window so far, total and COMMIT-only.
        self.trimmed = 0
        self.trimmed_commits = 0

    # ------------------------------------------------------------------
    # Kernel-facing hooks.
    # ------------------------------------------------------------------
    def on_exec(self, event: Event) -> None:
        """Record a forward execution."""
        self._add(EXEC, event)

    def on_undo(self, event: Event) -> None:
        """Record a rollback of a processed event."""
        self._add(UNDO, event)

    def on_commit(self, event: Event) -> None:
        """Record an event becoming irreversible (below GVT)."""
        self._add(COMMIT, event)

    def _add(self, action: str, event: Event) -> None:
        self.counts[action] += 1
        self.records.append(TraceRecord.of(action, event))
        if self.limit is not None and len(self.records) > self.limit:
            excess = len(self.records) - self.limit
            for r in self.records[:excess]:
                if r.action == COMMIT:
                    self.trimmed_commits += 1
            self.trimmed += excess
            del self.records[:excess]

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def select(self, action: str) -> list[TraceRecord]:
        """All records of one action, in recording order."""
        return [r for r in self.records if r.action == action]

    def committed_sequence(self) -> list[tuple]:
        """Committed events as comparable tuples, sorted by event key.

        Two runs of the same model are equivalent iff these sequences are
        equal — this is the event-level form of the report's
        repeatability check.  Raises :class:`ValueError` when a bounded
        tracer has trimmed COMMIT records (the sequence would be silently
        partial, which defeats the check); see the class docstring.
        """
        if self.trimmed_commits:
            raise ValueError(
                f"{TRIMMED_COMMITS_MSG} — this tracer's window "
                f"(limit={self.limit}) dropped {self.trimmed_commits:,} "
                f"COMMIT record(s) of {self.counts[COMMIT]:,}; use "
                "Tracer(limit=None) for unbounded memory, or record with "
                "--trace-out and check the file instead (streaming keeps "
                "the full sequence in O(1) memory)"
            )
        commits = self.select(COMMIT)
        return sorted((r.ts, r.origin, r.seq, r.dst, r.kind) for r in commits)

    def thrash_by_lp(self) -> dict[int, int]:
        """UNDO count per destination LP — who rolls back the most."""
        out: dict[int, int] = {}
        for r in self.records:
            if r.action == UNDO:
                out[r.dst] = out.get(r.dst, 0) + 1
        return out

    def format(self, last: int | None = None) -> str:
        """Human-readable dump of the (last ``last``) records."""
        rows: Iterable[TraceRecord] = self.records
        if last is not None:
            rows = self.records[-last:]
        return "\n".join(str(r) for r in rows)

    def __len__(self) -> int:
        return len(self.records)
