"""Event tracing: observe what the kernel executes, undoes and commits.

A :class:`Tracer` attached to an engine records one
:class:`TraceRecord` per lifecycle transition:

* ``EXEC``     — an event was forward-executed,
* ``UNDO``     — a processed event was rolled back,
* ``COMMIT``   — an event fell below GVT (optimistic) or executed
  (sequential) and became irreversible.

Uses:

* debugging models ("why did my counter go negative?"),
* the strongest determinism check we have: the *committed sequence* of an
  optimistic run — in key order — must equal the sequential engine's
  execution sequence, event for event (not just the final statistics),
* rollback forensics: which LPs thrash, what the straggler chains look
  like.

Tracing costs one callback per transition, so it is off by default; both
engines accept ``tracer=`` at run time via their kernels' ``attach_tracer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.event import Event

__all__ = ["TraceRecord", "Tracer", "EXEC", "UNDO", "COMMIT"]

EXEC = "EXEC"
UNDO = "UNDO"
COMMIT = "COMMIT"


@dataclass(frozen=True)
class TraceRecord:
    """One lifecycle transition of one event."""

    action: str
    ts: float
    origin: int
    seq: int
    dst: int
    kind: str

    @classmethod
    def of(cls, action: str, event: Event) -> "TraceRecord":
        key = event.key
        return cls(action, key.ts, key.origin, key.seq, event.dst, event.kind)

    def __str__(self) -> str:
        return (
            f"{self.action:<6} @{self.ts:.6f} {self.kind} "
            f"lp{self.origin}:{self.seq} -> lp{self.dst}"
        )


class Tracer:
    """Collects trace records; optionally bounded to the most recent N."""

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"trace limit must be positive, got {limit}")
        self.limit = limit
        self.records: list[TraceRecord] = []
        self.counts = {EXEC: 0, UNDO: 0, COMMIT: 0}

    # ------------------------------------------------------------------
    # Kernel-facing hooks.
    # ------------------------------------------------------------------
    def on_exec(self, event: Event) -> None:
        """Record a forward execution."""
        self._add(EXEC, event)

    def on_undo(self, event: Event) -> None:
        """Record a rollback of a processed event."""
        self._add(UNDO, event)

    def on_commit(self, event: Event) -> None:
        """Record an event becoming irreversible (below GVT)."""
        self._add(COMMIT, event)

    def _add(self, action: str, event: Event) -> None:
        self.counts[action] += 1
        self.records.append(TraceRecord.of(action, event))
        if self.limit is not None and len(self.records) > self.limit:
            del self.records[: len(self.records) - self.limit]

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def select(self, action: str) -> list[TraceRecord]:
        """All records of one action, in recording order."""
        return [r for r in self.records if r.action == action]

    def committed_sequence(self) -> list[tuple]:
        """Committed events as comparable tuples, sorted by event key.

        Two runs of the same model are equivalent iff these sequences are
        equal — this is the event-level form of the report's
        repeatability check.
        """
        commits = self.select(COMMIT)
        return sorted((r.ts, r.origin, r.seq, r.dst, r.kind) for r in commits)

    def thrash_by_lp(self) -> dict[int, int]:
        """UNDO count per destination LP — who rolls back the most."""
        out: dict[int, int] = {}
        for r in self.records:
            if r.action == UNDO:
                out[r.dst] = out.get(r.dst, 0) + 1
        return out

    def format(self, last: int | None = None) -> str:
        """Human-readable dump of the (last ``last``) records."""
        rows: Iterable[TraceRecord] = self.records
        if last is not None:
            rows = self.records[-last:]
        return "\n".join(str(r) for r in rows)

    def __len__(self) -> int:
        return len(self.records)
