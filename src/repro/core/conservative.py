"""Conservative parallel simulation — the other half of PDES.

Time Warp lets PEs race ahead and repairs mistakes; *conservative*
synchronization never makes them: a PE only executes an event once no
earlier message can possibly arrive.  The price is **lookahead** — a model
guarantee that an event at time ``t`` never schedules anything before
``t + L`` — and synchronization traffic.  Both classic flavours are
implemented, sharing the same model API as the other engines:

* **YAWNS** (``sync="yawns"``): barrier rounds.  All PEs agree on the
  lower bound on time stamp LBTS = min(next unprocessed event) + L and
  execute everything below it.  This is what ROSS's conservative mode
  does.
* **Null messages** (``sync="null"``, Chandy–Misra–Bryant): no global
  barrier.  Every directed PE pair is a FIFO channel carrying a clock
  guarantee; a blocked PE unblocks its peers by sending *null messages*
  promising "nothing from me before ``t``".  The famous overhead — null
  message count and ratio — is measured and reported.

Because execution is conservative, nothing ever rolls back, so the model's
``reverse`` handlers are never called (models without reverse handlers can
run conservatively).  Committed results are — of course — identical to the
sequential oracle's; the test suite checks that against both flavours.

Lookahead is declared by the model (``Model.lookahead``) or passed
explicitly, and *enforced*: a send that violates it raises
:class:`~repro.errors.SchedulingError`, because a lookahead lie silently
corrupts a conservative simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import CostModel
from repro.core.event import Event
from repro.core.executor import Executor
from repro.core.invariants import check_conservative
from repro.core.lp import LogicalProcess, Model
from repro.core.mapping import build_mapping
from repro.core.queue import make_pending_queue
from repro.core.result import RunResult
from repro.core.stats import RunStats
from repro.errors import ConfigurationError, SchedulingError
from repro.vt.time import TIME_HORIZON

__all__ = ["ConservativeConfig", "ConservativeKernel", "run_conservative"]


@dataclass(frozen=True)
class ConservativeConfig:
    """Configuration for a conservative run.

    Attributes
    ----------
    end_time:
        Virtual-time barrier (exclusive), as in the other engines.
    n_pes:
        Simulated processors.
    lookahead:
        Minimum send offset the model guarantees; ``None`` reads
        ``model.lookahead``.
    sync:
        ``"yawns"`` (barrier LBTS windows) or ``"null"`` (CMB null
        messages).
    mapping:
        LP→PE mapping strategy (``"block"``/``"striped"``/``"random"``).
    null_ratio_limit:
        Safety valve for the null-message flavour: abort if null messages
        exceed this multiple of real events (a symptom of vanishing
        lookahead).
    paranoid:
        Run the opt-in invariant checks (:mod:`repro.core.invariants`)
        each scheduler round; off by default.
    """

    end_time: float
    n_pes: int = 4
    lookahead: float | None = None
    sync: str = "yawns"
    mapping: str = "block"
    queue: str = "heap"
    executor: str = "scalar"
    pool: bool = True
    seed: int = 0x5EED
    null_ratio_limit: float = 100.0
    paranoid: bool = False
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.end_time <= 0:
            raise ConfigurationError(f"end_time must be positive, got {self.end_time}")
        if self.n_pes < 1:
            raise ConfigurationError(f"n_pes must be >= 1, got {self.n_pes}")
        if self.lookahead is not None and self.lookahead <= 0:
            raise ConfigurationError(
                f"lookahead must be positive, got {self.lookahead}"
            )
        if self.sync not in ("yawns", "null"):
            raise ConfigurationError(
                f"sync must be 'yawns' or 'null', got {self.sync!r}"
            )
        if self.queue not in ("heap", "ladder", "splay"):
            raise ConfigurationError(
                f"queue must be 'heap', 'ladder' or 'splay', got {self.queue!r}"
            )
        if self.executor not in ("scalar", "vectorized"):
            raise ConfigurationError(
                f"executor must be 'scalar' or 'vectorized', "
                f"got {self.executor!r}"
            )


class _ConsPE:
    """Conservative processing element: a pending queue plus channel clocks."""

    __slots__ = ("id", "pending", "in_clock", "out_clock", "processed", "lp_count", "busy")

    def __init__(self, pe_id: int, n_pes: int, queue: str) -> None:
        self.id = pe_id
        self.pending = make_pending_queue(queue)
        #: Guarantee received from each peer: no message below this ts.
        self.in_clock = [0.0] * n_pes
        #: Guarantee last sent to each peer (to avoid redundant nulls).
        self.out_clock = [0.0] * n_pes
        self.processed = 0
        self.lp_count = 0
        self.busy = 0.0

    def next_ts(self) -> float:
        key = self.pending.peek_key()
        return key.ts if key is not None else TIME_HORIZON

    def safe_horizon(self, n_pes: int) -> float:
        """Earliest time an unseen message could still arrive (CMB)."""
        if n_pes == 1:
            return TIME_HORIZON
        return min(
            clock for pe, clock in enumerate(self.in_clock) if pe != self.id
        )


class ConservativeKernel(Executor):
    """Conservative engine over the shared model API."""

    kind = "conservative"

    def __init__(self, model: Model, config: ConservativeConfig) -> None:
        self.cfg = config
        self.cost = config.cost
        lookahead = (
            config.lookahead
            if config.lookahead is not None
            else getattr(model, "lookahead", None)
        )
        if lookahead is None or lookahead <= 0:
            raise ConfigurationError(
                "conservative execution needs positive lookahead: pass "
                "ConservativeConfig(lookahead=...) or define model.lookahead"
            )
        self.lookahead = float(lookahead)

        # The population (SoA LPs execute through the same conservative
        # loop as scalar ones — there are no fused batches here, so the
        # executor choice can't change what this engine observes).
        self._init_population(model, config.executor)
        n_lps = len(self.lps)
        mapping = build_mapping(
            n_lps,
            config.n_pes,
            config.n_pes,
            config.mapping,
            grid=getattr(model, "grid", None),
            seed=config.seed,
        )
        self.pes = [
            _ConsPE(p, config.n_pes, config.queue) for p in range(config.n_pes)
        ]
        self.pe_of_lp = [mapping.lp_to_pe(lp.id) for lp in self.lps]
        for lp in self.lps:
            self.pes[self.pe_of_lp[lp.id]].lp_count += 1
        #: Conservative execution commits every event as it runs, so the
        #: same commit-time recycling as the sequential engine applies.
        self._bind_lps(config.seed, self._init_pool(config.pool))
        # Counters.
        self.null_messages = 0
        self.real_messages = 0
        self.local_sends = 0
        self.rounds = 0
        self.makespan_units = 0.0
        #: Optional event tracer (see repro.core.trace); conservative
        #: execution commits as it runs, so on_exec/on_commit fire as a
        #: pair for every event.
        self.tracer = None
        #: Optional metrics recorder (see repro.obs.metrics), sampled
        #: once per scheduler round — the conservative analog of a GVT
        #: round.  Costs nothing when detached.
        self.metrics = None
        #: Optional span tracer (see repro.obs.spans): one ``exec`` span
        #: per PE per scheduler round (plus ``snapshot`` spans when a
        #: checkpointer writes).  Costs nothing when detached.
        self.spans = None
        #: Optional repro.faults.EngineFaults driver.  Conservative
        #: execution has no transport layer to wrap, so only PE stalls
        #: apply here: a stalled PE simply sits out scheduler rounds.
        #: Deferral is harmless — events execute at the same virtual
        #: times in the same per-PE order, so committed results are
        #: unchanged (the stall only costs wall-clock rounds).
        self.faults = None
        #: Optional checkpointer (see repro.ckpt); consulted once per
        #: scheduler round (the conservative boundary: every executed
        #: event is already committed).
        self.ckpt = None
        #: Optional liveness watchdog (see repro.health); consulted once
        #: per scheduler round, like metrics and the checkpointer.
        self.health = None
        #: Run-loop state grafted by a checkpoint restore; consumed (and
        #: cleared) at the top of :meth:`run`.
        self._resume = None
        self._bootstrapping = True
        # Hard cap on scheduler rounds: clock creep advances at least one
        # lookahead per full round, so this bound is generous.
        self._round_cap = int(config.end_time / self.lookahead) * 4 + 1000
        self._event_costs = [
            self.cost.event_cost(n_lps)
            * self.cost.bus_factor(config.n_pes, n_lps)
            for _ in self.pes
        ]

    # ------------------------------------------------------------------
    def _emit(self, src_lp: LogicalProcess, ev) -> None:
        src_pe = self.pe_of_lp[src_lp.id]
        dst_pe = self.pe_of_lp[ev.dst]
        if not self._bootstrapping and src_pe != dst_pe:
            # Lookahead applies to the messages channels carry — cross-PE
            # sends.  Local work (e.g. a server's own completion events)
            # may be arbitrarily close in time; the PE's own queue orders
            # it.  Small epsilon for float noise.
            if ev.key.ts < src_lp._now + self.lookahead - 1e-12:
                raise SchedulingError(
                    f"LP {src_lp.id} violated its lookahead: sent ts="
                    f"{ev.key.ts} to another PE from now={src_lp._now} "
                    f"with lookahead {self.lookahead}"
                )
        pe = self.pes[src_pe]
        if src_pe == dst_pe:
            self.local_sends += 1
            pe.busy += self.cost.local_send
        else:
            self.real_messages += 1
            pe.busy += self.cost.remote_send
            # Note: unlike textbook CMB (whose per-link channels carry
            # monotone timestamps), a general model's successive sends on a
            # PE-pair channel are NOT nondecreasing — an event at t1 may
            # send t1+5 and a later event at t2>t1 may send t2+L < t1+5.
            # So a real message's timestamp is *not* a guarantee and must
            # not advance the receiver's channel clock; only explicit
            # clock+lookahead guarantees (null messages) may.
        self.pes[dst_pe].pending.push(ev)

    def schedule(self, ev: Event) -> None:
        """Executor ABI: bare enqueue at the destination LP's PE."""
        self.pes[self.pe_of_lp[ev.dst]].pending.push(ev)

    # ------------------------------------------------------------------
    def attach_faults(self, driver) -> "ConservativeKernel":
        """Attach a :class:`repro.faults.EngineFaults` driver; returns self."""
        self.faults = driver
        driver.install(self)
        return self

    def _sample_metrics(self, recorder) -> None:
        """Feed the recorder one per-round sample (commit == execute)."""
        pes = self.pes
        processed = sum(pe.processed for pe in pes)
        horizon = min(min(pe.next_ts() for pe in pes), self.cfg.end_time)
        hit_rate = self._pool_hit_rate()
        recorder.sample(
            gvt=horizon,
            committed=processed,
            processed=processed,
            fossil_collected=processed,
            pending=sum(len(pe.pending) for pe in pes),
            pool_hit_rate=hit_rate,
        )

    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        for lp in self.lps:
            lp._now = -1.0
            lp.on_init()
        self._bootstrapping = False

    def _execute_below(self, pe: _ConsPE, horizon: float) -> int:
        """Run every pending event strictly below ``horizon``."""
        done = 0
        cost = self._event_costs[pe.id]
        pop_below = pe.pending.pop_below
        lps = self.lps
        release = self.pool.release if self.pool is not None else None
        tracer = self.tracer
        while True:
            ev = pop_below(horizon)
            if ev is None:
                break
            lp = lps[ev.dst]
            lp._now = ev.key.ts
            lp.forward(ev)
            lp.commit(ev)
            done += 1
            if tracer is not None:
                tracer.on_exec(ev)
                tracer.on_commit(ev)
            if release is not None:
                release(ev)
        pe.busy += done * cost
        pe.processed += done
        return done

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the model to the end barrier and collect statistics."""
        if self._resume is None:
            self._bootstrap()
        else:
            self._resume = None
        if self.cfg.sync == "yawns":
            self._run_yawns()
        else:
            self._run_null_messages()
        return self._build_result()

    def _run_yawns(self) -> None:
        end = self.cfg.end_time
        pes = self.pes
        faults = self.faults
        spans = self.spans
        ckpt = self.ckpt
        paranoid = self.cfg.paranoid
        overhead = self.cost.gvt_per_pe  # one barrier reduction per round
        while True:
            lbts = min(pe.next_ts() for pe in pes) + self.lookahead
            horizon = min(lbts, end)
            if min(pe.next_ts() for pe in pes) >= end:
                break
            round_busy = 0.0
            for pe in pes:
                if faults is not None and faults.stalled(pe.id, self.rounds):
                    # A stalled PE sits the round out; its pending events
                    # keep LBTS honest, so peers never outrun it and the
                    # deferred work runs (identically) once the stall ends.
                    continue
                pe.busy, before = 0.0, pe.busy
                if spans is None:
                    self._execute_below(pe, horizon)
                else:
                    t0 = spans.clock()
                    done = self._execute_below(pe, horizon)
                    if done:
                        spans.record("exec", t0, spans.clock(), pe=pe.id, n=done)
                round_cost = pe.busy
                pe.busy += before
                round_busy = max(round_busy, round_cost)
            self.rounds += 1
            self.makespan_units += round_busy + overhead
            if self.metrics is not None:
                self._sample_metrics(self.metrics)
            if paranoid:
                check_conservative(self)
            if self.health is not None:
                self.health.boundary_conservative(self)
            if ckpt is not None:
                self._ckpt_boundary(ckpt, spans)

    def _ckpt_boundary(self, ckpt, spans) -> None:
        """One checkpoint boundary, timed as a ``snapshot`` span if taken."""
        if spans is None:
            ckpt.boundary(self)
            return
        written_before = ckpt.written
        t0 = spans.clock()
        ckpt.boundary(self)
        if ckpt.written > written_before:
            spans.record("snapshot", t0, spans.clock())

    def _run_null_messages(self) -> None:
        end = self.cfg.end_time
        pes = self.pes
        n_pes = self.cfg.n_pes
        faults = self.faults
        spans = self.spans
        ckpt = self.ckpt
        paranoid = self.cfg.paranoid
        limit = self.cfg.null_ratio_limit
        while True:
            progressed = False
            round_busy = 0.0
            for pe in pes:
                if faults is not None and faults.stalled(pe.id, self.rounds):
                    # Stalled PEs neither execute nor promise: a paused
                    # processor sends nothing, including null messages.
                    # Peers block on its (frozen) channel clock and catch
                    # up when the window ends; windows are finite so the
                    # round-cap guard below is never at risk in practice.
                    continue
                pe.busy, before = 0.0, pe.busy
                horizon = min(pe.safe_horizon(n_pes), end)
                if spans is None:
                    done = self._execute_below(pe, horizon)
                else:
                    t0 = spans.clock()
                    done = self._execute_below(pe, horizon)
                    if done:
                        spans.record("exec", t0, spans.clock(), pe=pe.id, n=done)
                if done:
                    progressed = True
                # Promise the future to every peer: nothing before
                # (my next event or my safe horizon, whichever is sooner)
                # plus lookahead.
                guarantee = min(pe.next_ts(), pe.safe_horizon(n_pes)) + self.lookahead
                for other in pes:
                    if other.id == pe.id:
                        continue
                    if guarantee > pe.out_clock[other.id]:
                        pe.out_clock[other.id] = guarantee
                        if guarantee > other.in_clock[pe.id]:
                            other.in_clock[pe.id] = guarantee
                        self.null_messages += 1
                        pe.busy += self.cost.remote_send
                round_busy = max(round_busy, pe.busy)
                pe.busy += before
            # No global barrier in CMB, but blocked PEs wait on the slowest
            # peer they depend on; with all-pairs channels that is the max.
            self.makespan_units += round_busy + self.cost.sched_per_round
            self.rounds += 1
            if self.metrics is not None:
                self._sample_metrics(self.metrics)
            if paranoid:
                check_conservative(self)
            if self.health is not None:
                self.health.boundary_conservative(self)
            if ckpt is not None:
                self._ckpt_boundary(ckpt, spans)
            if all(pe.next_ts() >= end for pe in pes):
                break
            processed = sum(pe.processed for pe in pes)
            if processed and self.null_messages > limit * processed:
                raise ConfigurationError(
                    "null-message explosion: lookahead too small for this "
                    f"model (ratio limit {limit} exceeded)"
                )
            if not progressed and self.rounds > self._round_cap:
                raise ConfigurationError(
                    "conservative deadlock/creep guard tripped: no progress "
                    f"after {self.rounds} rounds (lookahead {self.lookahead})"
                )

    # ------------------------------------------------------------------
    def _build_result(self) -> RunResult:
        stats = RunStats(engine="conservative")
        stats.soa_decline_reason = self.soa_decline
        stats.n_pes = self.cfg.n_pes
        stats.n_kps = self.cfg.n_pes
        stats.processed = sum(pe.processed for pe in self.pes)
        stats.committed = stats.processed  # nothing ever rolls back
        stats.local_sends = self.local_sends
        stats.remote_sends = self.real_messages + self.null_messages
        stats.gvt_rounds = self.rounds
        if self.pool is not None:
            stats.pool_hits = self.pool.hits
            stats.pool_allocs = self.pool.allocs
        stats.makespan_seconds = self.cost.seconds(self.makespan_units)
        stats.total_busy_seconds = self.cost.seconds(
            sum(pe.busy for pe in self.pes)
        )
        stats.per_pe_busy_seconds = [
            self.cost.seconds(pe.busy) for pe in self.pes
        ]
        stats.event_rate = (
            stats.committed / stats.makespan_seconds
            if stats.makespan_seconds
            else 0.0
        )
        if self.faults is not None:
            stats.pe_stall_rounds = self.faults.stall_rounds
        result = RunResult(
            model_stats=self.model.collect_stats(self.lps),
            run=stats,
            lps=self.lps,
        )
        # Conservative-specific extras travel in model-agnostic fields:
        result.model_stats = dict(result.model_stats)
        return result

    @property
    def null_ratio(self) -> float:
        """Null messages per committed event (the CMB overhead metric)."""
        processed = sum(pe.processed for pe in self.pes)
        return self.null_messages / processed if processed else 0.0


def run_conservative(
    model: Model,
    config: ConservativeConfig,
    *,
    tracer=None,
    metrics=None,
    spans=None,
    faults=None,
    checkpointer=None,
    health=None,
) -> RunResult:
    """Convenience wrapper: build a conservative kernel, attach telemetry, run."""
    kernel = ConservativeKernel(model, config)
    if tracer is not None:
        kernel.attach_tracer(tracer)
    if metrics is not None:
        kernel.attach_metrics(metrics)
    if spans is not None:
        kernel.attach_spans(spans)
    if faults is not None:
        kernel.attach_faults(faults)
    if health is not None:
        kernel.attach_health(health)
    if checkpointer is not None:
        kernel.attach_checkpointer(checkpointer)
    return kernel.run()
