"""Kernel processes: rollback containment groups.

"ROSS uses KPs which are groupings of LPs within a PE ... One purpose of a
KP is to contain rollbacks to a smaller sub-set of LPs within a PE.  This
is an improvement over rolling back all of the LPs simulated on a given PE.
Rolling back an LP that was unaffected by the past message is called a
false rollback." (§3.2.3 / §4.2.3)

Each KP keeps the processed-event list for *all* its LPs in execution
order.  A straggler or anti-message targeting any LP in the KP rolls the
whole KP back — events for sibling LPs included; those are counted as
*false rollback events*, the quantity that shrinks as the KP count grows
(Figs 7a–c).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.event import Event
from repro.core.stats import KPStats
from repro.vt.time import EventKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimistic import TimeWarpKernel

__all__ = ["KernelProcess"]


class KernelProcess:
    """One rollback-containment group of LPs on a PE."""

    __slots__ = ("id", "pe_id", "lp_ids", "processed", "stats")

    def __init__(self, kp_id: int, pe_id: int) -> None:
        self.id = kp_id
        self.pe_id = pe_id
        self.lp_ids: list[int] = []
        #: Processed events in execution order.  Invariant: sorted by key —
        #: the PE executes in key order between rollbacks, and a rollback
        #: removes a suffix, so re-execution resumes above the remaining tail.
        self.processed: list[Event] = []
        self.stats = KPStats()

    @property
    def last_key(self) -> EventKey | None:
        """Key of the most recent processed event, or None if pristine."""
        return self.processed[-1].key if self.processed else None

    def append_processed(self, event: Event) -> None:
        """Record a forward execution (called by the PE)."""
        self.processed.append(event)

    def needs_rollback(self, key: EventKey) -> bool:
        """True when an arriving event with ``key`` is a straggler here."""
        return bool(self.processed) and self.processed[-1].key > key

    def rollback_until(self, bound: EventKey, kernel: "TimeWarpKernel", trigger_lp: int) -> int:
        """Undo every processed event with key >= ``bound``.

        Undone events go back to the pending queue for re-execution (the
        one being annihilated by an anti-message is flagged cancelled by
        the caller afterwards).  Returns the number of events undone.
        """
        spans = kernel.spans
        t0 = spans.clock() if spans is not None else 0.0
        undone = 0
        processed = self.processed
        while processed and processed[-1].key >= bound:
            ev = processed.pop()
            kernel.undo_event(ev)
            if ev.dst != trigger_lp:
                self.stats.false_rollback_events += 1
            undone += 1
        if undone:
            self.stats.rollbacks += 1
            self.stats.events_rolled_back += undone
            if spans is not None:
                # One span per rollback episode, attributed to the KP
                # that unwound and the LP whose arrival triggered it.
                spans.record(
                    "rollback",
                    t0,
                    spans.clock(),
                    pe=self.pe_id,
                    kp=self.id,
                    lp=trigger_lp,
                    n=undone,
                )
        return undone

    def fossil_collect(self, gvt_ts: float, kernel: "TimeWarpKernel") -> int:
        """Commit and drop all processed events with ts < ``gvt_ts``.

        Events below GVT can never be rolled back; their journals are
        released and the model's ``commit`` hook fires exactly once per
        event, in execution order.
        """
        processed = self.processed
        # The list is key-sorted; find the first entry at or above GVT.
        lo, hi = 0, len(processed)
        while lo < hi:
            mid = (lo + hi) // 2
            if processed[mid].key.ts < gvt_ts:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return 0
        tracer = kernel.tracer
        pool = kernel.pool
        # Per-LP commit table: None for LPs inheriting the base no-op
        # commit (and None outright when no LP overrides it), so the
        # common case (e.g. PHOLD) skips the call entirely.
        commits = kernel._commit_of_lp
        if pool is None or tracer is not None:
            release = pool.release if pool is not None else None
            for ev in processed[:lo]:
                if commits is not None:
                    cb = commits[ev.dst]
                    if cb is not None:
                        cb(ev)
                if tracer is not None:
                    tracer.on_commit(ev)
                if release is not None:
                    release(ev)
                else:
                    ev.sent.clear()
                    ev.snapshot = None
        else:
            # Recycle committed events.  Safe because a child's timestamp
            # strictly exceeds its parent's: any parent whose ``sent`` list
            # still references one of these events is itself below GVT and
            # commits (clearing that list) in this same pass; cancelled
            # events are never released.  The tracer copies fields on
            # commit, so recycling composes with tracing too.
            # ``EventPool.release`` is inlined: this loop runs once per
            # committed event — the single hottest non-model loop in a
            # low-rollback run.
            free = pool._free
            max_free = pool.max_free
            if commits is None:
                # No model code runs in this loop, so nothing can touch
                # the free list mid-pass: the capacity check collapses to
                # a countdown.
                room = max_free - len(free)
                append = free.append
                for ev in processed[:lo]:
                    if room > 0:
                        room -= 1
                        ev.data = None
                        ev.snapshot = None
                        ev.lazy_sent = None
                        ev.saved.clear()
                        ev.sent.clear()
                        append(ev)
            else:
                for ev in processed[:lo]:
                    cb = commits[ev.dst]
                    if cb is not None:
                        cb(ev)
                    if len(free) < max_free:
                        ev.data = None
                        ev.snapshot = None
                        ev.lazy_sent = None
                        ev.saved.clear()
                        ev.sent.clear()
                        free.append(ev)
        del processed[:lo]
        return lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelProcess(id={self.id}, pe={self.pe_id}, lps={len(self.lp_ids)})"
