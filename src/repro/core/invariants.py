"""Opt-in (--paranoid) kernel invariant checks, run at GVT epochs.

Each check either passes silently or raises
:class:`~repro.errors.InvariantViolation` with a diagnostic naming the
PE/KP/LP involved — the point is an *actionable* failure at the first
inconsistent epoch instead of a silently wrong figure three sweeps
later.  The checks are O(live events) per epoch, which is why they are
opt-in: enable them with ``EngineConfig(paranoid=True)`` /
``ConservativeConfig(paranoid=True)`` / ``SequentialEngine(...,
paranoid=True)`` or the CLIs' ``--paranoid`` flag.

What is checked, per engine:

* **queue order** — every pending queue's lazy-deletion live count
  matches a recount, and (heap queues) the heap property holds.
* **GVT monotonicity** — the optimistic kernel's GVT estimate never
  moves backwards, and after fossil collection nothing pending or
  processed sits below it.
* **processed order** — each KP's processed list is key-sorted (the
  binary searches in rollback and fossil collection depend on it).
* **packet conservation** — delegated to the model when it offers a
  ``check_conservation(lps)`` hook (the hot-potato model does: packets
  delivered never exceed packets injected plus initially seeded).
"""

from __future__ import annotations

from repro.errors import InvariantViolation

__all__ = [
    "check_sequential",
    "check_optimistic",
    "check_conservative",
]


def _check_queue(label: str, queue) -> None:
    """Live-count and (for heaps) heap-order consistency of one queue."""
    live = sum(1 for _ in iter(queue))
    tracked = len(queue)
    if live != tracked:
        raise InvariantViolation(
            f"{label}: pending-queue accounting drift: recounted {live} "
            f"live events but the queue tracks {tracked}"
        )
    heap = getattr(queue, "_heap", None)
    if heap is None:
        return
    for i in range(1, len(heap)):
        parent = (i - 1) >> 1
        if heap[i][:4] < heap[parent][:4]:
            ev = heap[i][4]
            raise InvariantViolation(
                f"{label}: heap order violated at index {i} "
                f"(event {ev.kind!r} ts={ev.key.ts} for LP {ev.dst})"
            )


def _check_conservation(model, lps, label: str) -> None:
    check = getattr(model, "check_conservation", None)
    if check is None:
        return
    problem = check(lps)
    if problem:
        raise InvariantViolation(f"{label}: packet conservation violated: {problem}")


def check_sequential(engine, now: float) -> None:
    """Sequential-engine epoch check (every ``seq_events`` commits)."""
    _check_queue("sequential pending queue", engine.pending)
    _check_conservation(engine.model, engine.lps, f"at t={now}")


def check_optimistic(kernel, prev_gvt: float) -> None:
    """Time Warp epoch check, called right after fossil collection."""
    gvt = kernel.gvt
    if gvt < prev_gvt:
        raise InvariantViolation(
            f"GVT moved backwards: {prev_gvt} -> {gvt} "
            f"(algorithm {kernel.gvt_manager.name!r})"
        )
    if kernel._cancel_worklist:
        raise InvariantViolation(
            f"cancel worklist not drained at GVT epoch (={gvt}): "
            f"{len(kernel._cancel_worklist)} deferred cancellations pending"
        )
    for pe in kernel.pes:
        _check_queue(f"PE {pe.id}", pe.pending)
        for ev in pe.pending:
            if ev.key.ts < gvt:
                raise InvariantViolation(
                    f"PE {pe.id}: pending event {ev.kind!r} for LP {ev.dst} "
                    f"at ts={ev.key.ts} sits below GVT {gvt} — fossil "
                    "collection or the GVT estimate is wrong"
                )
    for kp in kernel.kps:
        processed = kp.processed
        for a, b in zip(processed, processed[1:]):
            if a.key > b.key:
                raise InvariantViolation(
                    f"KP {kp.id} (PE {kp.pe_id}): processed list out of key "
                    f"order — {a.key} before {b.key} (LPs {a.dst}, {b.dst}); "
                    "rollback bookkeeping is corrupt"
                )
        if processed and processed[0].key.ts < gvt:
            raise InvariantViolation(
                f"KP {kp.id} (PE {kp.pe_id}): uncommitted event for LP "
                f"{processed[0].dst} at ts={processed[0].key.ts} below GVT "
                f"{gvt} survived fossil collection"
            )
    _check_conservation(kernel.model, kernel.lps, f"at GVT {gvt}")


def check_conservative(kernel) -> None:
    """Conservative-engine per-round check."""
    for pe in kernel.pes:
        _check_queue(f"PE {pe.id}", pe.pending)
    if kernel.cfg.sync == "null":
        pes = kernel.pes
        for pe in pes:
            for other in pes:
                if other.id == pe.id:
                    continue
                if other.in_clock[pe.id] > pe.out_clock[other.id]:
                    raise InvariantViolation(
                        f"PE {other.id} holds a channel guarantee "
                        f"{other.in_clock[pe.id]} from PE {pe.id} that PE "
                        f"{pe.id} never promised (out_clock "
                        f"{pe.out_clock[other.id]})"
                    )
    _check_conservation(kernel.model, kernel.lps, f"round {kernel.rounds}")
