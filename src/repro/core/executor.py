"""The executor ABI: the chassis shared by all three engines.

The sequential oracle, the conservative kernel and the Time Warp kernel
share a model API but historically each re-implemented the same plumbing:
LP-population build and validation, RNG binding, event-pool wiring, the
``attach_*`` telemetry surface, and snapshot capture/restore.  This module
collapses that duplication into one base class — :class:`Executor` — with
a small uniform interface every engine implements:

``schedule(ev)`` / ``deliver(ev)``
    Enqueue an event at its destination.  ``schedule`` is the bare
    enqueue; ``deliver`` carries the engine's full arrival semantics
    (for the optimistic engine, the straggler check and rollback).
``fossil(horizon)``
    Commit-and-free everything below ``horizon``.  Engines that commit
    as they execute (sequential, conservative) have nothing to collect
    and return 0; the Time Warp kernel overrides this with real fossil
    collection.
``snapshot()`` / ``restore(payload)``
    Whole-engine state capture for checkpointing, delegating to
    :mod:`repro.ckpt.state` (imported lazily — the ckpt layer imports
    the engines).
``run()``
    Execute to the end barrier and return a
    :class:`~repro.core.result.RunResult`.

The base class also owns the **executor mode** resolution: with
``executor="vectorized"`` the population is built through the model's
:meth:`~repro.core.lp.Model.build_vectorized` hook, which returns the LPs
plus a *vector plan* — an object describing how same-timestamp-band event
runs may be stepped through fused struct-of-arrays loops (see
:mod:`repro.hotpotato.soa` for the hot-potato plan).  Models without an
SoA build fall back to the scalar :meth:`~repro.core.lp.Model.build`
silently; either way the populations are observably identical, so the
executor choice can never change results (the conformance suite in
``tests/test_executor_abi.py`` asserts this).
"""

from __future__ import annotations

from typing import Any

from repro.core.event import Event, EventPool
from repro.core.lp import LogicalProcess, Model
from repro.errors import ConfigurationError
from repro.rng.streams import ReversibleStream, derive_seed

__all__ = ["Executor", "resolve_build"]


def resolve_build(model: Model, executor: str):
    """Build the LP population for the requested executor mode.

    Returns ``(lps, plan)``; ``plan`` is ``None`` for the scalar build or
    when the model declines to vectorize.
    """
    if executor == "vectorized":
        built = model.build_vectorized()
        if built is not None:
            return built
    return model.build(), None


class Executor:
    """Common chassis for the three engines (see module docstring).

    Subclasses call :meth:`_init_population`, :meth:`_init_pool` and
    :meth:`_bind_lps` from their constructors, then override the pieces
    of the ABI whose defaults don't apply (``deliver`` for rollback
    semantics, ``fossil`` for Time Warp, ``attach_faults`` where a fault
    driver has something to act on).
    """

    #: Engine kind tag ("sequential" / "conservative" / "optimistic").
    kind = "abstract"

    #: Liveness watchdog (:class:`repro.health.Watchdog`), or None.
    health = None

    model: Model
    lps: list[LogicalProcess]
    pool: EventPool | None
    #: Vector plan from ``model.build_vectorized()`` (None on the scalar
    #: path); engines that support fused stepping consult it.
    vec_plan: Any

    # ------------------------------------------------------------------
    # Shared construction helpers.
    # ------------------------------------------------------------------
    def _init_population(self, model: Model, executor: str = "scalar") -> list:
        """Build and validate the LP population for ``executor`` mode."""
        self.model = model
        lps, plan = resolve_build(model, executor)
        if not lps:
            raise ConfigurationError("model.build() returned no LPs")
        for i, lp in enumerate(lps):
            if lp.id != i:
                raise ConfigurationError(
                    f"LP ids must be dense 0..n-1 in build() order; "
                    f"position {i} has id {lp.id}"
                )
        self.lps = lps
        self.vec_plan = plan
        #: The *effective* executor mode: "vectorized" only when the model
        #: actually supplied an SoA population (snapshots record this —
        #: the two populations' event payloads are not interchangeable,
        #: so a checkpoint can only be resumed under the same mode).
        self.executor = "vectorized" if plan is not None else "scalar"
        #: Why a requested vectorized build fell back to scalar ("" when
        #: it succeeded or was never requested).  Models set
        #: ``soa_decline_reason`` as they refuse; engines copy this into
        #: RunStats so ``repro.obs summary`` can explain a silent
        #: fallback.  Engines with further preconditions (the Time Warp
        #: fused fast paths) may append their own reason later.
        if executor == "vectorized" and plan is None:
            self.soa_decline = (
                getattr(model, "soa_decline_reason", "")
                or "model has no vectorized build"
            )
        else:
            self.soa_decline = ""
        return lps

    def _init_pool(self, pool_on: bool):
        """Create the event pool (or not) and return the allocator."""
        self.pool = EventPool() if pool_on else None
        return self.pool.acquire if self.pool is not None else Event

    def _bind_lps(self, seed: int, alloc) -> None:
        """Give every LP its derived RNG stream, emit callback and allocator."""
        emit = self._emit
        for lp in self.lps:
            lp.bind(ReversibleStream(derive_seed(seed, lp.id), lp.id), emit)
            lp._alloc = alloc

    def _pool_hit_rate(self) -> float:
        """Cumulative event-pool hit rate (0.0 when pooling is off)."""
        pool = self.pool
        if pool is None:
            return 0.0
        total = pool.hits + pool.allocs
        return pool.hits / total if total else 0.0

    def _emit(self, src_lp: LogicalProcess, ev: Event) -> None:
        """Kernel side of ``LogicalProcess.send`` (engine-specific)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Telemetry attachment surface (identical across engines).
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer):
        """Attach a :class:`repro.core.trace.Tracer`; returns self."""
        self.tracer = tracer
        return self

    def attach_metrics(self, recorder):
        """Attach a :class:`repro.obs.metrics.MetricsRecorder`; returns self."""
        self.metrics = recorder
        return self

    def attach_spans(self, tracer):
        """Attach a :class:`repro.obs.spans.SpanTracer`; returns self.

        Engines consult it at phase boundaries only (per PE batch, per
        rollback episode, per GVT round ...), never per event, so — like
        metrics and unlike a Tracer — attaching one keeps the optimistic
        kernel's fused fast paths installed and costs nothing detached.
        """
        self.spans = tracer
        return self

    def attach_faults(self, driver):
        """Accept a :class:`repro.faults.EngineFaults` driver; returns self.

        The default is a documented no-op for engines the driver has
        nothing to act on (the sequential engine: one heap, no transport,
        no PEs — model faults reach it through the model itself).  The
        parallel engines override this to install the driver.
        """
        return self

    def attach_checkpointer(self, ckpt):
        """Attach a :class:`repro.ckpt.Checkpointer`; returns self.

        If the checkpointer holds a loaded snapshot (``load_latest``),
        attaching grafts the captured state onto this engine — attach it
        last, after tracer/metrics/faults, so the graft sees the final
        object graph.
        """
        self.ckpt = ckpt
        ckpt.bind(self)
        return self

    def attach_health(self, monitor):
        """Attach a :class:`repro.health.Watchdog`; returns self.

        Engines consult it at the same quiescent boundaries as the
        checkpointer (GVT rounds / scheduler rounds / sequential event
        intervals), never per event, so a detached watchdog costs
        nothing and an attached one keeps the fused fast paths
        installed.  Detectors that escalate past in-run remediation
        raise :class:`~repro.errors.HealthIntervention` out of
        :meth:`run` — see :func:`repro.health.run_with_recovery`.
        """
        self.health = monitor
        monitor.bind(self)
        return self

    # ------------------------------------------------------------------
    # The ABI proper.
    # ------------------------------------------------------------------
    def schedule(self, ev: Event) -> None:
        """Bare enqueue of ``ev`` at its destination's pending structure."""
        raise NotImplementedError

    def deliver(self, ev: Event) -> None:
        """Full arrival semantics for ``ev`` (default: same as schedule).

        The optimistic engine overrides this with the straggler check and
        rollback path; for conservative/sequential execution an arrival
        is just an enqueue.
        """
        self.schedule(ev)

    def fossil(self, horizon: float) -> int:
        """Commit-and-free everything below ``horizon``; returns the count.

        Engines that commit events as they execute retire them on the
        spot, so there is never anything to collect.
        """
        return 0

    def snapshot(self) -> dict:
        """Capture a checkpoint payload of this engine's full state."""
        from repro.ckpt.state import capture_state

        return capture_state(self, None)

    def restore(self, payload: dict) -> None:
        """Graft a payload produced by :meth:`snapshot` onto this engine."""
        from repro.ckpt.state import restore_state

        restore_state(self, payload)

    def run(self):
        """Execute to the end barrier and return a RunResult."""
        raise NotImplementedError
