"""The discrete-event simulation kernels.

Two engines share one model API:

* :class:`~repro.core.engine.SequentialEngine` — the classic single-heap
  simulator, used as the correctness oracle;
* :class:`~repro.core.optimistic.TimeWarpKernel` — the ROSS-style
  optimistic parallel engine with reverse computation, kernel processes,
  GVT and fossil collection.

Models are written once against :class:`~repro.core.lp.LogicalProcess` /
:class:`~repro.core.lp.Model` and run unchanged on either engine; the
determinism tests assert the results are identical.
"""

from repro.core.config import EngineConfig
from repro.core.conservative import (
    ConservativeConfig,
    ConservativeKernel,
    run_conservative,
)
from repro.core.costmodel import CostModel
from repro.core.engine import SequentialEngine, run_sequential
from repro.core.event import Event
from repro.core.gvt import MatternGVT, SynchronousGVT
from repro.core.kp import KernelProcess
from repro.core.lp import LogicalProcess, Model
from repro.core.mapping import Mapping, build_mapping
from repro.core.optimistic import TimeWarpKernel, run_optimistic
from repro.core.pe import ProcessingElement
from repro.core.queue import PendingQueue
from repro.core.result import RunResult
from repro.core.rollback import ReverseComputation, StateSaving, make_strategy
from repro.core.stats import KPStats, PEStats, RunStats
from repro.core.throttle import Throttle, ThrottleConfig
from repro.core.trace import TraceRecord, Tracer
from repro.core.transport import ImmediateTransport, MailboxTransport

__all__ = [
    "ConservativeConfig",
    "ConservativeKernel",
    "CostModel",
    "EngineConfig",
    "Event",
    "ImmediateTransport",
    "KPStats",
    "KernelProcess",
    "LogicalProcess",
    "MailboxTransport",
    "Mapping",
    "MatternGVT",
    "Model",
    "PEStats",
    "PendingQueue",
    "ProcessingElement",
    "ReverseComputation",
    "RunResult",
    "RunStats",
    "SequentialEngine",
    "StateSaving",
    "SynchronousGVT",
    "Throttle",
    "ThrottleConfig",
    "TimeWarpKernel",
    "TraceRecord",
    "Tracer",
    "build_mapping",
    "make_strategy",
    "run_conservative",
    "run_optimistic",
    "run_sequential",
]
