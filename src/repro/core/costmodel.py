"""Virtual wall-clock cost model for event-rate and speedup accounting.

The report measures simulator *speed* — "the average number of events that
it simulates in a time period ... unitized into events per second" (§4.2) —
on a quad-processor shared-memory server.  This environment has one core,
so wall-clock speedup is substituted by a calibrated cost model (see
DESIGN.md, "Hardware substitutions"): every PE accumulates virtual busy
time from *measured* event counts, and the executive charges per-round
synchronisation overhead.  The makespan of a parallel run is

    sum over rounds of ( max over PEs of round busy time  +  round overhead )

which captures the two first-order effects the report observes:

* near-linear speedup while per-PE work dominates (Fig 5, small N), and
* efficiency decaying toward ~0.5 as per-round GVT/fossil overhead — which
  grows with LPs per PE — and rollback work eat the budget (Fig 6, large N).

Event *counts* (processed, rolled back, remote sends, rounds) always come
from the real Time Warp execution; only the per-unit costs are synthetic.

The default coefficients are loosely calibrated to the report's absolute
scale (hundreds of thousands of events per second on 2002-era hardware) so
regenerated figures are comparable, but all claims checked by the test
suite are about *shape*, not absolute numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Cost coefficients, in abstract units of ``unit_seconds`` each.

    With the defaults one unit is a microsecond, and processing an event
    costs ~2 µs — a deliberately 2002-flavoured machine.
    """

    #: Seconds per cost unit.
    unit_seconds: float = 1e-6

    #: Base cost of one forward event execution (handler + queue ops).
    event: float = 2.0
    #: Cost of undoing one event via reverse computation.
    reverse: float = 1.0
    #: Extra cost of undoing one event via state restore (copy strategy).
    restore: float = 0.6
    #: Forward-path cost of taking a state snapshot (copy strategy only).
    snapshot: float = 3.0
    #: Fixed cost per rollback episode (queue surgery, bookkeeping).
    rollback_fixed: float = 8.0
    #: Per-PE scheduling cost charged every round (loop bookkeeping).
    sched_per_round: float = 1.0
    #: Cost of enqueueing a local (same-PE) message.
    local_send: float = 0.4
    #: Cost of a remote (cross-PE) message: allocation handoff plus the
    #: cache-line traffic the block mapping tries to avoid (§3.2.3).
    remote_send: float = 2.5
    #: Per-PE fixed cost of one GVT round (Fujimoto's algorithm barrier).
    gvt_per_pe: float = 25.0
    #: Per-KP management cost per GVT round (more KPs = more lists to scan;
    #: the trade-off behind Fig 8).
    kp_per_round: float = 0.5
    #: Per-LP fossil-collection cost per GVT round: "the fossil collection
    #: for large networks is significant ... due to the linear relationship
    #: between fossil collection overhead and the number of LPs" (§4.2.3).
    fossil_per_lp: float = 0.02
    #: Cost per event actually fossil-collected.
    fossil_per_event: float = 0.05

    #: Cache-pressure knee: LP count per PE beyond which the working set
    #: falls out of cache and per-event cost starts growing (the reason the
    #: sequential event rate *drops* with N in Fig 5).
    cache_lps: int = 256
    #: Per-event cost multiplier slope past the knee (per doubling).
    cache_penalty: float = 0.35
    #: Shared front-side-bus contention on the 2002-era SMP: when the
    #: working set spills out of cache, the miss traffic of all PEs shares
    #: one bus, so the *parallel* per-event cost grows with both the PE
    #: count and the total LP population.  This (not rollback) is the
    #: first-order reason Fig 6's efficiency decays toward ~0.5 at large N
    #: while the sequential rate also falls.
    bus_penalty: float = 0.05

    # ------------------------------------------------------------------
    def cache_factor(self, lps_per_pe: int) -> float:
        """Per-event cost multiplier for a PE hosting ``lps_per_pe`` LPs."""
        if lps_per_pe <= self.cache_lps:
            return 1.0
        return 1.0 + self.cache_penalty * math.log2(lps_per_pe / self.cache_lps)

    def event_cost(self, lps_per_pe: int) -> float:
        """Cost of one forward event execution on a PE of that size."""
        return self.event * self.cache_factor(lps_per_pe)

    def bus_factor(self, n_pes: int, total_lps: int) -> float:
        """Shared-bus contention multiplier for parallel event execution."""
        if n_pes <= 1 or total_lps <= self.cache_lps:
            return 1.0
        return 1.0 + self.bus_penalty * (n_pes - 1) * math.log2(
            total_lps / self.cache_lps
        )

    def gvt_overhead(self, lps_per_pe: int, kps_per_pe: int) -> float:
        """Per-PE cost of one GVT computation + fossil-collection sweep."""
        return (
            self.gvt_per_pe
            + self.kp_per_round * kps_per_pe
            + self.fossil_per_lp * lps_per_pe
        )

    def seconds(self, units: float) -> float:
        """Convert cost units to virtual wall-clock seconds."""
        return units * self.unit_seconds
