"""Logical processes — the simulated components.

"The primary component in a ROSS simulation application is the Logical
Process (LP).  A simulation is comprised of a collection of LPs, each
simulating a separate component of the system." (§3.1.1)

A model subclasses :class:`LogicalProcess` and implements:

``on_init``
    Schedule the bootstrap events (ROSS models do this in their startup
    function).  Called once before the run; bootstrap sends are never
    rolled back.
``forward(event)``
    The event handler — the analog of ``Router_EventHandler`` switching on
    the event kind.  It mutates ``self.state``, may call :meth:`send`, may
    draw from ``self.rng``, and stashes whatever its reverse needs in
    ``event.saved``.
``reverse(event)``
    The reverse-computation handler: restore ``self.state`` from
    ``event.saved``.  The kernel automatically un-sends the handler's
    messages, reverses its RNG draws, and restores the send-sequence
    counter — models only undo their *own* state writes (an improvement
    over ROSS, where forgetting a ``tw_rand_reverse_unif`` corrupts runs).
``commit(event)`` (optional)
    Called when the event falls below GVT and can never roll back.
``snapshot_state`` / ``restore_state`` (optional)
    Override for a cheap copy when running under the state-saving rollback
    strategy; the default deep-copies ``self.state``.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from repro.core.event import Event
from repro.errors import SchedulingError
from repro.vt.time import EventKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rng.streams import ReversibleStream

__all__ = ["LogicalProcess", "Model"]

#: ``EventKey(...)`` via ``tuple.__new__`` directly — what the generated
#: namedtuple ``__new__`` does, minus one Python-level call per send.
_tuple_new = tuple.__new__

#: Exact types that cannot alias mutable state: a container holding only
#: these is fully copied by a shallow copy (see ``snapshot_state``).
#: ``bool`` is covered by ``int`` only via subclassing, and the checks
#: below use exact types, so it is listed explicitly.
_SCALAR_TYPES = frozenset(
    {int, float, complex, bool, str, bytes, type(None)}
)


class LogicalProcess:
    """Base class for all simulated components.

    The kernel (sequential or optimistic) *binds* the LP before the run,
    giving it its RNG stream and a send callback.  Model code must go
    through :meth:`send` so the kernel can journal the event for
    cancellation on rollback.
    """

    __slots__ = (
        "id",
        "rng",
        "send_seq",
        "state",
        "kp",
        "send",
        "_emit",
        "_alloc",
        "_now",
    )

    def __init__(self, lp_id: int) -> None:
        self.id = lp_id
        self.rng: "ReversibleStream" = None  # type: ignore[assignment]
        #: Monotone send counter; part of rolled-back state.
        self.send_seq = 0
        #: Model state (models may also use plain attributes, but only
        #: ``state`` participates in default snapshots).
        self.state: Any = None
        #: Kernel process this LP belongs to (optimistic engine only).
        self.kp: Any = None
        #: The send entry point model code calls (``self.send(...)``).  It
        #: is instance data, not a method, so an engine can swap in a fused
        #: fast path per LP; the default is the generic kernel-agnostic
        #: implementation below.
        self.send: Any = self._kernel_send
        # Kernel wiring (set by bind): emit callback and current-time getter.
        self._emit: Any = None
        #: Event allocator; kernels with an event pool rebind this to the
        #: pool's ``acquire`` (same signature as the Event constructor).
        self._alloc: Any = Event
        self._now: float = 0.0

    # ------------------------------------------------------------------
    # Kernel-facing wiring.
    # ------------------------------------------------------------------
    def bind(self, rng: "ReversibleStream", emit: Any) -> None:
        """Attach the RNG stream and the kernel's send callback."""
        self.rng = rng
        self._emit = emit

    # ------------------------------------------------------------------
    # Model-facing API.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Receive timestamp of the event currently being processed."""
        return self._now

    def _kernel_send(
        self,
        ts: float,
        dst: int,
        kind: str,
        data: dict[str, Any] | None = None,
    ) -> Event:
        """Schedule an event for LP ``dst`` at virtual time ``ts``.

        This is the default implementation behind ``self.send``.  Engines
        may replace ``lp.send`` with a fused equivalent (the Time Warp
        kernel compiles one per LP); any replacement must preserve this
        exact observable behaviour, including the error below.

        During event processing ``ts`` must be strictly greater than
        :attr:`now`; zero-delay sends would break the total event order
        that makes parallel runs repeatable, so they are rejected at send
        time (a :class:`~repro.errors.SchedulingError` no rollback could
        repair).
        """
        if ts <= self._now:
            raise SchedulingError(
                f"LP {self.id} tried to send {kind!r} at ts={ts} while "
                f"processing ts={self._now}; sends must move strictly forward"
            )
        seq = self.send_seq
        self.send_seq = seq + 1
        ev = self._alloc(_tuple_new(EventKey, (ts, self.id, seq)), dst, kind, data)
        self._emit(self, ev)
        return ev

    # ------------------------------------------------------------------
    # Model interface (override in subclasses).
    # ------------------------------------------------------------------
    def on_init(self) -> None:
        """Schedule bootstrap events.  Default: none."""

    def forward(self, event: Event) -> None:
        """Process an event (required)."""
        raise NotImplementedError

    def reverse(self, event: Event) -> None:
        """Undo a processed event's state writes (required for optimistic

        runs under the reverse-computation strategy).
        """
        raise NotImplementedError

    def commit(self, event: Event) -> None:
        """Hook called when ``event`` becomes irreversible.  Default: none."""

    # ------------------------------------------------------------------
    # State-saving strategy hooks.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Any:
        """Return a full copy of the model state (state-saving rollback).

        Flat containers of scalars — the shape of most model state (PHOLD's
        counter list, per-LP tallies) — are snapshotted with a shallow
        copy: a scalar cannot alias mutable state, so copying the
        container alone is a *full* copy.  Anything nested or of a
        non-exact container type falls back to :func:`copy.deepcopy`,
        preserving the documented contract.  The shapes are checked per
        call because handlers may rebind ``self.state`` to a different
        shape mid-run.
        """
        state = self.state
        tstate = type(state)
        if tstate in _SCALAR_TYPES:
            # Immutable: no copy needed at all.
            return state
        if tstate is list:
            for v in state:
                if type(v) not in _SCALAR_TYPES:
                    return copy.deepcopy(state)
            return state.copy()
        if tstate is dict:
            for v in state.values():
                if type(v) not in _SCALAR_TYPES:
                    return copy.deepcopy(state)
            return state.copy()
        if tstate is tuple:
            for v in state:
                if type(v) not in _SCALAR_TYPES:
                    return copy.deepcopy(state)
            # A tuple of scalars is deeply immutable — share it.
            return state
        return copy.deepcopy(state)

    def restore_state(self, snapshot: Any) -> None:
        """Restore a copy produced by :meth:`snapshot_state`."""
        self.state = snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.id})"


class Model:
    """A complete simulation model: an LP population plus stats collection.

    Subclasses implement :meth:`build` to create the LPs (the ROSS startup
    function) and :meth:`collect_stats` as the "statistics collection
    function ... executed once for each LP when the simulation finishes"
    (§3.1.5) — here expressed as one pass over the LP list returning a flat
    dict, which the determinism tests compare across engines.
    """

    def build(self) -> list[LogicalProcess]:
        """Create and return the LP population (ids must be 0..n-1)."""
        raise NotImplementedError

    def build_vectorized(self):
        """Optional struct-of-arrays build for ``executor="vectorized"``.

        Return ``(lps, plan)`` — an LP population whose state lives in
        shared flat arrays plus a *vector plan* describing how an engine
        may batch same-timestamp-band events (see
        :class:`repro.core.executor.Executor`) — or ``None`` to decline,
        in which case the engine silently falls back to :meth:`build`.
        The SoA population must be observably identical to the scalar
        one: same RNG draw sequences, same sends, same statistics.
        """
        return None

    def collect_stats(self, lps: list[LogicalProcess]) -> dict[str, Any]:
        """Aggregate model statistics over the final LP states."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint hooks (see repro.ckpt).
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> Any:
        """Return picklable *model-level* mutable state, or ``None``.

        Per-LP state travels through ``LogicalProcess.snapshot_state``;
        this hook covers anything the model object itself accumulates
        during a run (e.g. the hot-potato model's commit-time delivery
        log).  The default — no such state — returns ``None``.
        """
        return None

    def restore_checkpoint(self, state: Any) -> None:
        """Restore what :meth:`checkpoint_state` returned (in place)."""
        if state is not None:
            raise NotImplementedError(
                f"{type(self).__name__} captured model state but does not "
                "implement restore_checkpoint"
            )

    # ------------------------------------------------------------------
    # Multiprocess hooks (see repro.mp).  Process-mode execution forks
    # one worker per PE group; events that cross workers travel
    # pickle-free over shared-memory rings, and final results come back
    # through these hooks.
    # ------------------------------------------------------------------
    def mp_event_schema(self) -> dict | None:
        """Declare the wire layout of every event kind, or ``None``.

        A mapping ``{kind: ((field, struct_char), ...)}`` over the
        event's ``data`` dict, used by :class:`repro.mp.codec.EventCodec`
        to struct-encode events crossing a process boundary.  ``None``
        (the default) means the model cannot run in process mode — the
        runtime refuses up front rather than silently pickling.
        """
        return None

    def mp_export_lp(self, lp: LogicalProcess) -> Any:
        """Picklable end-of-run state of one *owned* LP (worker side)."""
        raise NotImplementedError(
            f"{type(self).__name__} declares an mp event schema but no "
            "mp_export_lp"
        )

    def mp_import_lp(self, lp: LogicalProcess, blob: Any) -> None:
        """Install a worker's exported LP state into the parent's LP."""
        raise NotImplementedError(
            f"{type(self).__name__} declares an mp event schema but no "
            "mp_import_lp"
        )

    def mp_export_shard(self) -> Any:
        """Picklable model-level state of one worker, or ``None``.

        The per-worker analogue of :meth:`checkpoint_state` (e.g. the
        hot-potato delivery-log slice this worker committed).
        """
        return None

    def mp_merge_shards(self, shards: list) -> None:
        """Fold every worker's :meth:`mp_export_shard` into the parent."""
        for shard in shards:
            if shard is not None:
                raise NotImplementedError(
                    f"{type(self).__name__} exported a model shard but "
                    "does not implement mp_merge_shards"
                )
