"""Run results returned by both engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.lp import LogicalProcess
from repro.core.stats import RunStats

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything a run produced.

    Attributes
    ----------
    model_stats:
        The model's aggregated statistics (the "statistics collection
        function" output, §3.1.5).  Two runs of the same model and seed
        must produce *identical* model_stats regardless of engine or
        PE/KP/batch configuration — that is the repeatability property the
        report validates in its Attachment 3.
    run:
        Kernel-level counters and cost-model timing.
    lps:
        The final LP population, for custom post-processing.
    """

    model_stats: dict[str, Any]
    run: RunStats
    lps: list[LogicalProcess] = field(repr=False, default_factory=list)
