"""Pending-event priority queue with lazy cancellation.

Each processing element owns one :class:`PendingQueue`.  Cancellation (the
shared-memory analog of anti-message annihilation) marks the event's
``cancelled`` flag; the heap discards flagged entries when they surface.
This is O(1) per cancellation at the cost of dead entries in the heap —
the classic lazy-deletion trade, appropriate here because cancelled events
are a small fraction of traffic.

Allocation-free layout: the heap stores each event's prebuilt
``Event.entry`` tuple ``(ts, origin, seq, serial, event)`` directly, so a
push allocates nothing and entry comparisons stay entirely in C (the
unique ``serial`` stamp means two entries always differ before the Event
slot is reached).  The serial breaks ties between a dead (cancelled)
entry and a live event that legitimately reuses the same key after a
rollback re-send — exactly the job the old per-push insertion counter
did, without the per-push tuple.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush

from repro.core.event import Event
from repro.vt.time import EventKey

__all__ = ["PendingQueue", "LadderQueue"]


class PendingQueue:
    """Min-heap of events ordered by :class:`~repro.vt.time.EventKey`."""

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        # Entries are Event.entry tuples; see module docstring.
        self._heap: list[tuple] = []
        # Count of non-cancelled entries, so __len__ is O(1) and exact.
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert an event (must not already be queued)."""
        heappush(self._heap, event.entry)
        event.in_pending = True
        self._live += 1

    def note_cancelled(self) -> None:
        """Record that a queued event was flagged cancelled externally.

        The caller flips ``event.cancelled``; the queue only adjusts its
        live count and lets the heap entry die lazily.
        """
        self._live -= 1

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][4].cancelled:
            heappop(heap)[4].in_pending = False

    def peek(self) -> Event | None:
        """The minimum live event, or ``None`` when empty."""
        self._drop_dead()
        return self._heap[0][4] if self._heap else None

    def peek_key(self) -> EventKey | None:
        """Key of the minimum live event, or ``None`` when empty."""
        ev = self.peek()
        return ev.key if ev is not None else None

    def pop(self) -> Event:
        """Remove and return the minimum live event."""
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty PendingQueue")
        ev = heappop(self._heap)[4]
        ev.in_pending = False
        self._live -= 1
        return ev

    def pop_below(self, limit_ts: float) -> Event | None:
        """Pop the minimum live event iff its ts is below ``limit_ts``.

        The engines' inner loops use this fused peek+pop: one dead-entry
        sweep and one heap access per executed event instead of two.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[4]
            if ev.cancelled:
                heappop(heap)
                ev.in_pending = False
                continue
            if entry[0] >= limit_ts:
                return None
            heappop(heap)
            ev.in_pending = False
            self._live -= 1
            return ev
        return None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self):
        """Yield live events in arbitrary (heap) order — for inspection

        and invariant checks, not for scheduling.
        """
        return (e[4] for e in self._heap if not e[4].cancelled)


class LadderQueue:
    """Ladder queue (Tang & Goh): O(1)-amortised pending-event structure.

    Three tiers, finest first:

    * ``bottom`` — a sorted list served through a cursor (``_pos``); its
      live suffix holds the smallest entries in the queue.
    * ``rungs`` — a stack of bucket arrays.  Each rung partitions a
      timestamp range into equal-width buckets; consuming a rung's next
      bucket either *sorts it directly* into ``bottom`` (small bucket) or
      *spawns a finer rung* from it (large bucket).  Spawning distributes
      N entries over N buckets, which is where the O(1) amortised bound
      comes from.
    * ``top`` — an unsorted pile of far-future entries.  Everything with
      ``ts`` strictly above ``_top_floor`` (the maximum timestamp ever
      moved down into the ladder) is appended here in O(1).

    Ordering is *exactly* the heap's: entries are the same prebuilt
    ``Event.entry`` tuples ``(ts, origin, seq, serial, event)``, buckets
    are split on ``ts`` alone (ties always land in the same bucket) and
    each bucket/pile is sorted by the full tuple before it is served, so
    the pop sequence — and therefore every committed sequence — is
    bit-identical to :class:`PendingQueue`'s.  Cancelled entries die
    lazily, also exactly like the heap: flagged via ``note_cancelled`` and
    dropped when a transfer or the bottom cursor reaches them.

    Invariant used by ``push`` routing: live timestamps are contiguous per
    tier — everything in ``bottom``'s live suffix < everything in any
    rung bucket at or past its cursor < everything in ``top`` — so an
    insert below an already-consumed region falls through to a sorted
    insert into ``bottom`` (rollback requeues and stragglers take this
    path; forward-progress sends land in ``top``).
    """

    __slots__ = (
        "_top",
        "_top_min",
        "_top_max",
        "_top_floor",
        "_rungs",
        "_bottom",
        "_pos",
        "_live",
    )

    #: Buckets/piles at or below this size are sorted directly instead of
    #: spawning a finer rung (the classic ladder-queue threshold).
    THRESH = 50
    #: Rung-stack depth cap: beyond this, buckets sort directly regardless
    #: of size (guards against pathological timestamp clustering).
    MAX_RUNGS = 8

    def __init__(self) -> None:
        self._top: list[tuple] = []
        self._top_min = 0.0
        self._top_max = 0.0
        #: Timestamps strictly above this route to ``top``; -inf until the
        #: first transfer out of ``top`` fixes the boundary.
        self._top_floor = float("-inf")
        #: Stack of rungs, coarsest first.  Each rung is a mutable list
        #: ``[start_ts, bucket_width, cur_index, buckets]``.
        self._rungs: list[list] = []
        self._bottom: list[tuple] = []
        self._pos = 0
        self._live = 0

    # -- insertion -----------------------------------------------------
    def push(self, event: Event) -> None:
        """Insert an event (must not already be queued)."""
        entry = event.entry
        event.in_pending = True
        self._live += 1
        ts = entry[0]
        top = self._top
        if ts > self._top_floor:
            if not top:
                self._top_min = self._top_max = ts
            elif ts < self._top_min:
                self._top_min = ts
            elif ts > self._top_max:
                self._top_max = ts
            top.append(entry)
            return
        for rung in self._rungs:
            start, width, cur, buckets = rung
            k = int((ts - start) / width)
            if k >= len(buckets):
                k = len(buckets) - 1
            if k >= cur:
                buckets[k].append(entry)
                return
        # Below every active region: keep the bottom's live suffix sorted.
        insort(self._bottom, entry, self._pos)

    def note_cancelled(self) -> None:
        """Record that a queued event was flagged cancelled externally."""
        self._live -= 1

    # -- transfer machinery --------------------------------------------
    def _spawn_rung(self, entries: list[tuple], lo: float, hi: float) -> None:
        """Partition ``entries`` (timestamps in [lo, hi]) into a new rung."""
        n = len(entries)
        width = (hi - lo) / n
        buckets: list[list[tuple]] = [[] for _ in range(n)]
        last = n - 1
        for entry in entries:
            k = int((entry[0] - lo) / width)
            buckets[k if k < last else last].append(entry)
        self._rungs.append([lo, width, 0, buckets])

    def _fill_bottom(self) -> bool:
        """Refill the exhausted ``bottom`` from the rungs or ``top``.

        Returns False when the whole queue is empty of entries.  Dead
        (cancelled) entries are dropped during the transfer, so ``bottom``
        only ever holds entries that were live at fill time (they may
        still be cancelled afterwards; the cursor skips those).
        """
        self._bottom = []
        self._pos = 0
        rungs = self._rungs
        while True:
            while rungs:
                rung = rungs[-1]
                start, width, cur, buckets = rung
                n = len(buckets)
                while cur < n and not buckets[cur]:
                    cur += 1
                rung[2] = cur
                if cur >= n:
                    rungs.pop()
                    continue
                batch = buckets[cur]
                buckets[cur] = []
                rung[2] = cur + 1
                live = []
                for entry in batch:
                    ev = entry[4]
                    if ev.cancelled:
                        ev.in_pending = False
                    else:
                        live.append(entry)
                if not live:
                    continue
                if len(live) > self.THRESH and len(rungs) < self.MAX_RUNGS:
                    lo = min(e[0] for e in live)
                    hi = max(e[0] for e in live)
                    if hi > lo:
                        self._spawn_rung(live, lo, hi)
                        continue
                live.sort()
                self._bottom = live
                return True
            top = self._top
            if not top:
                return False
            live = []
            for entry in top:
                ev = entry[4]
                if ev.cancelled:
                    ev.in_pending = False
                else:
                    live.append(entry)
            del top[:]
            # The boundary moves up even if every entry was dead: anything
            # that was *in* top is at most _top_max, and future pushes at
            # or below it must route into the ladder to stay ordered.
            self._top_floor = self._top_max
            if not live:
                return False
            if len(live) > self.THRESH:
                lo = min(e[0] for e in live)
                hi = max(e[0] for e in live)
                if hi > lo:
                    self._spawn_rung(live, lo, hi)
                    continue
            live.sort()
            self._bottom = live
            return True

    def _advance(self) -> tuple | None:
        """Cursor of the first live entry in ``bottom``, filling as needed."""
        bottom = self._bottom
        pos = self._pos
        while True:
            n = len(bottom)
            while pos < n:
                entry = bottom[pos]
                if entry[4].cancelled:
                    entry[4].in_pending = False
                    pos += 1
                    continue
                self._pos = pos
                return entry
            if not self._fill_bottom():
                self._pos = len(self._bottom)
                return None
            bottom = self._bottom
            pos = self._pos

    # -- the PendingQueue interface ------------------------------------
    def peek(self) -> Event | None:
        """The minimum live event, or ``None`` when empty."""
        entry = self._advance()
        return entry[4] if entry is not None else None

    def peek_key(self) -> EventKey | None:
        """Key of the minimum live event, or ``None`` when empty."""
        ev = self.peek()
        return ev.key if ev is not None else None

    def pop(self) -> Event:
        """Remove and return the minimum live event."""
        entry = self._advance()
        if entry is None:
            raise IndexError("pop from empty LadderQueue")
        self._pos += 1
        self._live -= 1
        ev = entry[4]
        ev.in_pending = False
        return ev

    def pop_below(self, limit_ts: float) -> Event | None:
        """Pop the minimum live event iff its ts is below ``limit_ts``."""
        entry = self._advance()
        if entry is None or entry[0] >= limit_ts:
            return None
        self._pos += 1
        self._live -= 1
        ev = entry[4]
        ev.in_pending = False
        return ev

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self):
        """Yield live events in arbitrary order — for inspection and
        invariant checks, not for scheduling.
        """
        for entry in self._bottom[self._pos:]:
            if not entry[4].cancelled:
                yield entry[4]
        for rung in self._rungs:
            for bucket in rung[3][rung[2]:]:
                for entry in bucket:
                    if not entry[4].cancelled:
                        yield entry[4]
        for entry in self._top:
            if not entry[4].cancelled:
                yield entry[4]


def make_pending_queue(name: str):
    """Instantiate a pending-queue structure by config name.

    ``"heap"`` is the binary-heap default; ``"ladder"`` is the
    O(1)-amortised ladder queue (:class:`LadderQueue`); ``"splay"`` is the
    ROSS-style splay tree (:class:`repro.core.splay.SplayPendingQueue`).
    All order by the same flat entry tuples, so results never depend on
    the choice.
    """
    if name == "heap":
        return PendingQueue()
    if name == "ladder":
        return LadderQueue()
    if name == "splay":
        from repro.core.splay import SplayPendingQueue

        return SplayPendingQueue()
    raise ValueError(
        f"unknown queue structure {name!r}; choose 'heap', 'ladder' or 'splay'"
    )
