"""Pending-event priority queue with lazy cancellation.

Each processing element owns one :class:`PendingQueue`.  Cancellation (the
shared-memory analog of anti-message annihilation) marks the event's
``cancelled`` flag; the heap discards flagged entries when they surface.
This is O(1) per cancellation at the cost of dead entries in the heap —
the classic lazy-deletion trade, appropriate here because cancelled events
are a small fraction of traffic.

Allocation-free layout: the heap stores each event's prebuilt
``Event.entry`` tuple ``(ts, origin, seq, serial, event)`` directly, so a
push allocates nothing and entry comparisons stay entirely in C (the
unique ``serial`` stamp means two entries always differ before the Event
slot is reached).  The serial breaks ties between a dead (cancelled)
entry and a live event that legitimately reuses the same key after a
rollback re-send — exactly the job the old per-push insertion counter
did, without the per-push tuple.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.event import Event
from repro.vt.time import EventKey

__all__ = ["PendingQueue"]


class PendingQueue:
    """Min-heap of events ordered by :class:`~repro.vt.time.EventKey`."""

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        # Entries are Event.entry tuples; see module docstring.
        self._heap: list[tuple] = []
        # Count of non-cancelled entries, so __len__ is O(1) and exact.
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert an event (must not already be queued)."""
        heappush(self._heap, event.entry)
        event.in_pending = True
        self._live += 1

    def note_cancelled(self) -> None:
        """Record that a queued event was flagged cancelled externally.

        The caller flips ``event.cancelled``; the queue only adjusts its
        live count and lets the heap entry die lazily.
        """
        self._live -= 1

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][4].cancelled:
            heappop(heap)[4].in_pending = False

    def peek(self) -> Event | None:
        """The minimum live event, or ``None`` when empty."""
        self._drop_dead()
        return self._heap[0][4] if self._heap else None

    def peek_key(self) -> EventKey | None:
        """Key of the minimum live event, or ``None`` when empty."""
        ev = self.peek()
        return ev.key if ev is not None else None

    def pop(self) -> Event:
        """Remove and return the minimum live event."""
        self._drop_dead()
        if not self._heap:
            raise IndexError("pop from empty PendingQueue")
        ev = heappop(self._heap)[4]
        ev.in_pending = False
        self._live -= 1
        return ev

    def pop_below(self, limit_ts: float) -> Event | None:
        """Pop the minimum live event iff its ts is below ``limit_ts``.

        The engines' inner loops use this fused peek+pop: one dead-entry
        sweep and one heap access per executed event instead of two.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[4]
            if ev.cancelled:
                heappop(heap)
                ev.in_pending = False
                continue
            if entry[0] >= limit_ts:
                return None
            heappop(heap)
            ev.in_pending = False
            self._live -= 1
            return ev
        return None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self):
        """Yield live events in arbitrary (heap) order — for inspection

        and invariant checks, not for scheduling.
        """
        return (e[4] for e in self._heap if not e[4].cancelled)


def make_pending_queue(name: str):
    """Instantiate a pending-queue structure by config name.

    ``"heap"`` is the binary-heap default; ``"splay"`` is the ROSS-style
    splay tree (:class:`repro.core.splay.SplayPendingQueue`).  Both order
    by the same flat entry tuples, so results never depend on the choice.
    """
    if name == "heap":
        return PendingQueue()
    if name == "splay":
        from repro.core.splay import SplayPendingQueue

        return SplayPendingQueue()
    raise ValueError(f"unknown queue structure {name!r}; choose 'heap' or 'splay'")
