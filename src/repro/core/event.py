"""Events — the messages that drive the simulation.

"The LPs communicate with each other within the simulation via messages.
Each message represents an event in the system." (§3.1.2).  On ROSS's
shared-memory architecture, sending a message "merely involves assigning
ownership of the message's memory location from the source LP to the
destination LP"; our in-process kernel does the same thing with object
references, so anti-messages are realised by *direct cancellation*: the
sender keeps a reference to every event it created and, on rollback, flips
the event's ``cancelled`` flag (if unprocessed) or triggers a secondary
rollback (if processed).

An event carries:

* its total-order key ``(recv_ts, origin_lp, origin_seq)``,
* model payload (``kind`` tag + ``data`` mapping — the ROSS message struct),
* a ``saved`` mapping where the forward handler stashes whatever its reverse
  handler needs (ROSS models write ``M->Saved_*`` fields the same way), and
* kernel journaling used by rollback: the events it sent, the RNG draws it
  made, and the sender sequence number to restore.

Hot-path layout: every event owns one prebuilt *heap entry*
``(ts, origin, seq, serial, event)`` used verbatim by the pending queues,
so pushing an event allocates nothing.  ``serial`` is a process-wide
monotone stamp that breaks ties between distinct events sharing a key (a
cancelled original and its rollback re-send) without ever comparing Event
objects; re-pushing the *same* event reuses the same entry.

Events are recycled: :class:`EventPool` keeps a free list refilled by
fossil collection (see ``TimeWarpKernel.fossil_collect``), so steady-state
execution constructs no new Event objects at all.  ``Event.__slots__``
makes the reset cheap; pooling is observationally invisible because
:meth:`Event.renew` restores every field to its freshly-constructed state
(the determinism suite asserts this).
"""

from __future__ import annotations

from itertools import count
from typing import Any

from repro.vt.time import EventKey

__all__ = ["Event", "EventPool"]

#: Process-wide entry serial; only its *relative order* matters, and only
#: between two live entries with identical EventKeys, so sharing one
#: counter across kernels cannot affect results.
_next_serial = count().__next__


class Event:
    """A scheduled (or processed) simulation event.

    Model code treats events as read-only inputs except for the ``saved``
    dict.  Kernel code owns the bookkeeping fields.
    """

    __slots__ = (
        "key",
        "dst",
        "kind",
        "data",
        "saved",
        "sent",
        "lazy_sent",
        "rng_draws",
        "prev_send_seq",
        "snapshot",
        "processed",
        "cancelled",
        "in_pending",
        "color",
        "entry",
    )

    def __init__(
        self,
        key: EventKey,
        dst: int,
        kind: str,
        data: dict[str, Any] | None = None,
    ) -> None:
        self.key = key
        self.dst = dst
        self.kind = kind
        self.data: dict[str, Any] = data if data is not None else {}
        #: Forward handlers stash reverse-computation state here.
        self.saved: dict[str, Any] = {}
        #: Events created while processing this one (for cancellation).
        self.sent: list[Event] = []
        #: Under lazy cancellation: children from a rolled-back execution,
        #: kept alive for potential reuse when this event re-executes.
        self.lazy_sent: list[Event] | None = None
        #: RNG draws the destination LP made while processing this event.
        self.rng_draws: int = 0
        #: Destination LP's send-sequence counter before processing.
        self.prev_send_seq: int = 0
        #: Optional LP-state snapshot (state-saving rollback strategy).
        self.snapshot: Any = None
        self.processed: bool = False
        self.cancelled: bool = False
        #: True while the event sits in a PE's pending queue; lets the
        #: kernel keep the queue's live count exact on cancellation.
        self.in_pending: bool = False
        #: GVT epoch stamp (Mattern-style coloring; see repro.core.gvt).
        self.color: int = 0
        #: Flat pending-queue entry (see module docstring).
        self.entry = (key[0], key[1], key[2], _next_serial(), self)

    # Convenience accessors -------------------------------------------------
    @property
    def ts(self) -> float:
        """Receive timestamp in virtual time."""
        return self.key.ts

    @property
    def origin(self) -> int:
        """Id of the LP that created this event."""
        return self.key.origin

    def reset_journal(self) -> None:
        """Clear kernel journaling before (re-)execution."""
        self.sent.clear()
        self.rng_draws = 0
        self.snapshot = None

    def renew(
        self,
        key: EventKey,
        dst: int,
        kind: str,
        data: dict[str, Any] | None,
    ) -> "Event":
        """Reinitialise a recycled event — equivalent to ``__init__``.

        Only called via :meth:`EventPool.acquire`, whose ``release``
        already cleared ``saved``/``sent``/``lazy_sent``/``snapshot`` and
        only ever pools non-cancelled, non-pending events — so those six
        fields are known to be at construction state and are not touched
        here.  Everything else is reset, including a fresh entry serial,
        so a pooled event is indistinguishable from a new one.
        """
        self.key = key
        self.dst = dst
        self.kind = kind
        self.data = data if data is not None else {}
        self.rng_draws = 0
        self.prev_send_seq = 0
        self.processed = False
        self.color = 0
        self.entry = (key[0], key[1], key[2], _next_serial(), self)
        return self

    # Checkpoint support ----------------------------------------------------
    # Explicit pickle protocol: the heap entry holds a reference cycle
    # (entry[4] is the event itself) and its serial is only meaningful
    # relative to other events in the same snapshot, so we persist the
    # serial number alone and rebuild the entry on load.  repro.ckpt
    # re-stamps restored events with fresh process-local serials in old
    # serial order, preserving every tie-break (see ckpt/state.py).
    def __getstate__(self):
        return (
            self.key,
            self.dst,
            self.kind,
            self.data,
            self.saved,
            self.sent,
            self.lazy_sent,
            self.rng_draws,
            self.prev_send_seq,
            self.snapshot,
            self.processed,
            self.cancelled,
            self.color,
            self.entry[3],
        )

    def __setstate__(self, state) -> None:
        (
            self.key,
            self.dst,
            self.kind,
            self.data,
            self.saved,
            self.sent,
            self.lazy_sent,
            self.rng_draws,
            self.prev_send_seq,
            self.snapshot,
            self.processed,
            self.cancelled,
            self.color,
            serial,
        ) = state
        self.in_pending = False
        key = self.key
        self.entry = (key[0], key[1], key[2], serial, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "P" if self.processed else "-"
        flags += "C" if self.cancelled else "-"
        return f"Event({self.kind} {self.key} ->lp{self.dst} [{flags}])"


class EventPool:
    """Per-kernel free list of recycled events.

    ``acquire`` matches the :class:`Event` constructor signature so an
    LP's allocator can be either the class or a bound pool method.  Only
    the kernel may ``release`` events, and only ones nothing can reference
    any more — in practice events being dropped by fossil collection,
    whose parents were fossil-collected no later (a child's timestamp
    strictly exceeds its parent's, so both sit below GVT together).
    """

    __slots__ = ("_free", "max_free", "hits", "allocs")

    def __init__(self, max_free: int = 1 << 20) -> None:
        self._free: list[Event] = []
        #: Cap on retained free events (a backstop against a pathological
        #: burst permanently pinning memory; 2^20 events ≈ a few hundred
        #: MB worst case, far above any steady-state working set).
        self.max_free = max_free
        #: Acquires served from the free list.
        self.hits = 0
        #: Acquires that had to construct a new Event.
        self.allocs = 0

    def acquire(
        self,
        key: EventKey,
        dst: int,
        kind: str,
        data: dict[str, Any] | None = None,
    ) -> Event:
        """Return a ready-to-use event (recycled when possible).

        The recycle branch is :meth:`Event.renew` inlined — this runs once
        per send in steady state, and the extra call frame is measurable.
        """
        free = self._free
        if free:
            self.hits += 1
            ev = free.pop()
            ev.key = key
            ev.dst = dst
            ev.kind = kind
            ev.data = data if data is not None else {}
            ev.rng_draws = 0
            ev.prev_send_seq = 0
            ev.processed = False
            ev.color = 0
            ev.entry = (key[0], key[1], key[2], _next_serial(), ev)
            return ev
        self.allocs += 1
        return Event(key, dst, kind, data)

    def release(self, event: Event) -> None:
        """Return a dead event to the free list.

        The caller guarantees no live reference to it remains, and that it
        is neither cancelled nor sitting in a pending queue (commit-time
        recycling satisfies both).  Payload, journal and snapshot
        references are dropped eagerly so parked events never keep model
        data alive; :meth:`Event.renew` relies on exactly this reset.
        """
        if len(self._free) < self.max_free:
            event.data = None  # type: ignore[assignment]
            event.snapshot = None
            event.lazy_sent = None
            event.saved.clear()
            event.sent.clear()
            self._free.append(event)

    def __len__(self) -> int:
        return len(self._free)

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served without allocation."""
        total = self.hits + self.allocs
        return self.hits / total if total else 0.0
