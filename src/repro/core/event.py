"""Events — the messages that drive the simulation.

"The LPs communicate with each other within the simulation via messages.
Each message represents an event in the system." (§3.1.2).  On ROSS's
shared-memory architecture, sending a message "merely involves assigning
ownership of the message's memory location from the source LP to the
destination LP"; our in-process kernel does the same thing with object
references, so anti-messages are realised by *direct cancellation*: the
sender keeps a reference to every event it created and, on rollback, flips
the event's ``cancelled`` flag (if unprocessed) or triggers a secondary
rollback (if processed).

An event carries:

* its total-order key ``(recv_ts, origin_lp, origin_seq)``,
* model payload (``kind`` tag + ``data`` mapping — the ROSS message struct),
* a ``saved`` mapping where the forward handler stashes whatever its reverse
  handler needs (ROSS models write ``M->Saved_*`` fields the same way), and
* kernel journaling used by rollback: the events it sent, the RNG draws it
  made, and the sender sequence number to restore.
"""

from __future__ import annotations

from typing import Any

from repro.vt.time import EventKey

__all__ = ["Event"]


class Event:
    """A scheduled (or processed) simulation event.

    Model code treats events as read-only inputs except for the ``saved``
    dict.  Kernel code owns the bookkeeping fields.
    """

    __slots__ = (
        "key",
        "dst",
        "kind",
        "data",
        "saved",
        "sent",
        "lazy_sent",
        "rng_draws",
        "prev_send_seq",
        "snapshot",
        "processed",
        "cancelled",
        "in_pending",
        "color",
    )

    def __init__(
        self,
        key: EventKey,
        dst: int,
        kind: str,
        data: dict[str, Any] | None = None,
    ) -> None:
        self.key = key
        self.dst = dst
        self.kind = kind
        self.data: dict[str, Any] = data if data is not None else {}
        #: Forward handlers stash reverse-computation state here.
        self.saved: dict[str, Any] = {}
        #: Events created while processing this one (for cancellation).
        self.sent: list[Event] = []
        #: Under lazy cancellation: children from a rolled-back execution,
        #: kept alive for potential reuse when this event re-executes.
        self.lazy_sent: list[Event] | None = None
        #: RNG draws the destination LP made while processing this event.
        self.rng_draws: int = 0
        #: Destination LP's send-sequence counter before processing.
        self.prev_send_seq: int = 0
        #: Optional LP-state snapshot (state-saving rollback strategy).
        self.snapshot: Any = None
        self.processed: bool = False
        self.cancelled: bool = False
        #: True while the event sits in a PE's pending queue; lets the
        #: kernel keep the queue's live count exact on cancellation.
        self.in_pending: bool = False
        #: GVT epoch stamp (Mattern-style coloring; see repro.core.gvt).
        self.color: int = 0

    # Convenience accessors -------------------------------------------------
    @property
    def ts(self) -> float:
        """Receive timestamp in virtual time."""
        return self.key.ts

    @property
    def origin(self) -> int:
        """Id of the LP that created this event."""
        return self.key.origin

    def reset_journal(self) -> None:
        """Clear kernel journaling before (re-)execution."""
        self.sent.clear()
        self.rng_draws = 0
        self.snapshot = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "P" if self.processed else "-"
        flags += "C" if self.cancelled else "-"
        return f"Event({self.kind} {self.key} ->lp{self.dst} [{flags}])"
