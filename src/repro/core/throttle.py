"""Adaptive optimism control.

Fixed optimism (a constant batch size or virtual-time window) is a blunt
instrument: too little starves the PEs between GVT barriers, too much turns
stragglers into avalanche rollbacks.  The throttle adjusts an *optimism
factor* in ``(0, 1]`` after every GVT round using the measured rollback
fraction — classic multiplicative-decrease / multiplicative-increase:

* rollback fraction above ``high`` → halve the factor (optimism is being
  wasted on work that gets undone),
* below ``low`` → grow the factor by 1.5× toward 1.0 (the machine is
  undercommitted).

Everything the controller reads is a deterministic function of the
simulation, so adaptive runs remain exactly repeatable — the determinism
tests cover them like any other configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThrottleConfig", "Throttle"]


@dataclass(frozen=True)
class ThrottleConfig:
    """Thresholds and bounds for the optimism controller."""

    #: Rollback fraction above which optimism is cut.
    high: float = 0.20
    #: Rollback fraction below which optimism is restored.
    low: float = 0.05
    #: Smallest allowed optimism factor.
    floor: float = 1.0 / 64.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.low < self.high <= 1.0:
            raise ValueError(
                f"need 0 <= low < high <= 1, got low={self.low} high={self.high}"
            )
        if not 0.0 < self.floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {self.floor}")


class Throttle:
    """Multiplicative increase/decrease controller over the optimism factor."""

    def __init__(self, cfg: ThrottleConfig | None = None) -> None:
        self.cfg = cfg if cfg is not None else ThrottleConfig()
        self.factor = 1.0
        self.adjustments = 0
        #: (observation_index, factor) after every update — for analysis.
        self.history: list[tuple[int, float]] = []
        self._observations = 0

    def update(self, processed: int, rolled_back: int) -> float:
        """Feed one GVT period's counts; returns the new factor."""
        self._observations += 1
        if processed > 0:
            fraction = rolled_back / processed
            cfg = self.cfg
            if fraction > cfg.high:
                new = max(cfg.floor, self.factor / 2.0)
            elif fraction < cfg.low:
                new = min(1.0, self.factor * 1.5)
            else:
                new = self.factor
            if new != self.factor:
                self.factor = new
                self.adjustments += 1
                self.history.append((self._observations, new))
        return self.factor

    def scaled(self, value: int | float, minimum: int | float):
        """Apply the factor to an optimism budget, respecting a floor."""
        scaled = value * self.factor
        return max(minimum, type(value)(scaled))
