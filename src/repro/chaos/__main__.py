"""``python -m repro.chaos`` — run a seeded chaos soak campaign.

Examples
--------
A quick 10-episode smoke (the CI configuration)::

    python -m repro.chaos --episodes 10 --out-dir chaos_out

A longer soak, resumable after Ctrl-C or a crash (already-journaled
episodes are skipped; their verdicts still count)::

    python -m repro.chaos --seed 7 --episodes 100 --out-dir soak/
    python -m repro.chaos --seed 7 --episodes 100 --out-dir soak/

Exit code 0 means every episode upheld every invariant; 1 means at
least one violation (see the forensics bundles next to the journal).
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.campaign import DEFAULT_CAMPAIGN_SEED, run_campaign

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Fuzz the engines with faults, adversaries, kills and "
        "forced recoveries; assert the standing invariants every episode.",
    )
    parser.add_argument(
        "--seed",
        type=lambda s: int(s, 0),
        default=DEFAULT_CAMPAIGN_SEED,
        help="campaign seed; every episode derives from (seed, index) "
        f"(default: {DEFAULT_CAMPAIGN_SEED:#x})",
    )
    parser.add_argument(
        "--episodes",
        type=int,
        default=25,
        metavar="N",
        help="episodes to run (default: 25)",
    )
    parser.add_argument(
        "--out-dir",
        default="chaos_out",
        metavar="DIR",
        help="journal, per-episode work dirs and forensics bundles go "
        "here (default: chaos_out)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard an existing episode journal instead of resuming it",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="only print the campaign summary",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    log = (lambda _msg: None) if args.quiet else print
    try:
        totals = run_campaign(
            seed=args.seed,
            episodes=args.episodes,
            out_dir=args.out_dir,
            fresh=args.fresh,
            log=log,
        )
    except KeyboardInterrupt:
        print(
            f"\ninterrupted; rerun with the same seed and --out-dir "
            f"{args.out_dir} to resume the campaign",
            file=sys.stderr,
        )
        return 130
    ran = totals.episodes - totals.skipped
    print(
        f"campaign: {totals.episodes} episode(s) "
        f"({ran} run, {totals.skipped} resumed from journal), "
        f"{totals.violations} violation(s)"
    )
    if totals.by_disturbance:
        mix = ", ".join(
            f"{k} {v}x" for k, v in sorted(totals.by_disturbance.items())
        )
        print(f"disturbances this run: {mix}")
    print(f"journal: {totals.journal}")
    return 0 if totals.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
