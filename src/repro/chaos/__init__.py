"""Chaos soak harness: randomized campaigns against standing invariants.

``python -m repro.chaos`` runs seed-derived episodes — random workloads
× fault plans × adversarial injection × kill/resume × forced watchdog
recoveries — and asserts after every one that the simulator's standing
contracts still hold (sequential == optimistic committed sequence,
packet conservation, bit-identical resume, recovery convergence).  See
:mod:`repro.chaos.campaign` for the episode anatomy and docs/HEALTH.md
for how this fits the liveness watchdog and degradation ladder.
"""

from repro.chaos.campaign import (
    DEFAULT_CAMPAIGN_SEED,
    DISTURBANCES,
    CampaignResult,
    EpisodeRecipe,
    EpisodeResult,
    derive_recipe,
    run_campaign,
    run_episode,
)

__all__ = [
    "DEFAULT_CAMPAIGN_SEED",
    "DISTURBANCES",
    "CampaignResult",
    "EpisodeRecipe",
    "EpisodeResult",
    "derive_recipe",
    "run_campaign",
    "run_episode",
]
