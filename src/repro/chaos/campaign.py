"""Seed-driven chaos campaigns: fuzz the stack, assert the invariants.

One *episode* is a randomly generated workload (size, load, duration,
optional :mod:`repro.faults` plan, optional :mod:`repro.scenarios`
adversary) plus one *disturbance*:

* ``none`` — no disturbance; the episode still checks seq == opt.
* ``kill_resume`` — the optimistic run is interrupted at a seeded
  boundary exactly as a SIGKILL-after-final-snapshot would land (a
  ``hard`` variant additionally deletes the newest snapshot, emulating
  a kill *before* the final snapshot hit disk), then resumed from the
  surviving snapshot.
* ``watchdog_restore`` — the liveness watchdog is forced to trip at a
  seeded boundary with a ``restore`` ladder; the recovery runner grafts
  the last good snapshot and re-runs.
* ``watchdog_fallback`` — the watchdog is forced to trip with a
  ``fallback`` ladder; the recovery runner degrades the engine
  optimistic → conservative and re-runs from scratch.

Every episode asserts the standing invariants:

1. the sequential oracle and the optimistic kernel commit the identical
   event sequence (and identical model statistics);
2. packet conservation holds on every completed engine
   (``model.check_conservation``, the same hook ``--paranoid`` uses);
3. a resumed run's committed sequence is bit-identical to the
   undisturbed run's (compared record by record from the trace);
4. a watchdog-triggered recovery converges to the same committed
   results as the undisturbed run.

Episodes are journaled to ``episodes.jsonl`` in the output directory as
they complete, so an interrupted campaign resumes where it stopped: a
re-run with the same seed skips every journaled episode.  An episode
with violations gets a forensics bundle
(:func:`repro.health.write_forensics_bundle`) next to the journal.

Everything derives from the campaign seed through
:func:`repro.rng.derive_seed`, so a campaign is exactly reproducible
from ``(seed, episodes)`` alone.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.rng import derive_seed

__all__ = [
    "DEFAULT_CAMPAIGN_SEED",
    "DISTURBANCES",
    "EpisodeRecipe",
    "EpisodeResult",
    "CampaignResult",
    "derive_recipe",
    "run_episode",
    "run_campaign",
]

DEFAULT_CAMPAIGN_SEED = 0xC4A05
DISTURBANCES = ("none", "kill_resume", "watchdog_restore", "watchdog_fallback")

_SIZES = (4, 8)
_LOADS = (0.25, 0.5, 0.75, 1.0)
_DURATIONS = (16.0, 24.0, 32.0)
_LINK_RATES = (0.02, 0.05, 0.1)
_ADVERSARY_RATES = (0.5, 1.0)


@dataclass(frozen=True)
class EpisodeRecipe:
    """Everything one episode does, derived from (campaign seed, index)."""

    episode: int
    seed: int
    n: int
    load: float
    duration: float
    #: ``{"link_rate": r, "seed": s}`` or None.
    fault: dict | None
    #: ``{"strategy": s, "rate": r, "seed": s}`` or None.
    adversary: dict | None
    disturbance: str
    #: Boundary at which the disturbance strikes (kill / forced trip).
    strike_boundary: int
    #: kill_resume only: also delete the newest snapshot before resuming.
    hard_kill: bool


@dataclass
class EpisodeResult:
    """Outcome of one episode: what ran, what (if anything) broke."""

    recipe: EpisodeRecipe
    violations: list[str] = field(default_factory=list)
    #: Committed-event count of the undisturbed optimistic run.
    committed: int = 0
    #: Recovery-action journal (watchdog episodes).
    actions: list[dict] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_journal(self) -> dict:
        """JSONL record appended to ``episodes.jsonl`` for this episode."""
        return {
            "t": "episode",
            "episode": self.recipe.episode,
            "seed": self.recipe.seed,
            "recipe": asdict(self.recipe),
            "ok": self.ok,
            "violations": list(self.violations),
            "committed": self.committed,
            "actions": list(self.actions),
            "elapsed": round(self.elapsed, 3),
        }


@dataclass
class CampaignResult:
    """Campaign totals (journaled episodes count as run)."""

    episodes: int = 0
    skipped: int = 0
    violations: int = 0
    by_disturbance: dict = field(default_factory=dict)
    journal: Path | None = None

    @property
    def ok(self) -> bool:
        return self.violations == 0


def derive_recipe(campaign_seed: int, episode: int) -> EpisodeRecipe:
    """Deterministically expand one episode index into a recipe."""
    seed = derive_seed(campaign_seed, episode)
    rng = random.Random(seed)
    from repro.scenarios import STRATEGIES

    fault = None
    if rng.random() < 0.5:
        fault = {
            "link_rate": rng.choice(_LINK_RATES),
            "seed": rng.randrange(1 << 31),
        }
    adversary = None
    if rng.random() < 0.4:
        adversary = {
            "strategy": rng.choice(STRATEGIES),
            "rate": rng.choice(_ADVERSARY_RATES),
            "seed": rng.randrange(1 << 31),
        }
    return EpisodeRecipe(
        episode=episode,
        seed=rng.randrange(1 << 31),
        n=rng.choice(_SIZES),
        load=rng.choice(_LOADS),
        duration=rng.choice(_DURATIONS),
        fault=fault,
        adversary=adversary,
        disturbance=rng.choice(DISTURBANCES),
        strike_boundary=rng.randrange(8, 48),
        hard_kill=rng.random() < 0.5,
    )


# ----------------------------------------------------------------------
# Engine construction.
# ----------------------------------------------------------------------
def _make_model(recipe: EpisodeRecipe, *, delivery_log: bool = False):
    from repro.faults import generate_plan
    from repro.hotpotato.config import HotPotatoConfig
    from repro.hotpotato.model import HotPotatoModel
    from repro.net import TorusTopology

    topo = TorusTopology(recipe.n)
    plan = None
    if recipe.fault is not None:
        plan = generate_plan(
            topo,
            duration=recipe.duration,
            link_fail_rate=recipe.fault["link_rate"],
            seed=recipe.fault["seed"],
        )
    injection = None
    if recipe.adversary is not None:
        from repro.scenarios import generate_injection_plan

        injection = generate_injection_plan(
            topo,
            strategy=recipe.adversary["strategy"],
            duration=recipe.duration,
            rate=recipe.adversary["rate"],
            seed=recipe.adversary["seed"],
        )
    cfg = HotPotatoConfig(
        n=recipe.n,
        duration=recipe.duration,
        injector_fraction=recipe.load,
    )
    return HotPotatoModel(
        cfg,
        fault_plan=plan,
        injection_plan=injection,
    )


def _build_engine(kind: str, recipe: EpisodeRecipe):
    """A fresh, fully configured engine of ``kind`` over the recipe."""
    model = _make_model(recipe)
    if kind == "sequential":
        from repro.core.engine import SequentialEngine

        return SequentialEngine(model, recipe.duration, seed=recipe.seed)
    if kind == "conservative":
        from repro.core.conservative import ConservativeConfig, ConservativeKernel

        return ConservativeKernel(
            model,
            ConservativeConfig(
                end_time=recipe.duration,
                n_pes=2,
                seed=recipe.seed,
                lookahead=model.lookahead,
            ),
        )
    if kind == "optimistic":
        from repro.core.config import EngineConfig
        from repro.core.optimistic import TimeWarpKernel

        return TimeWarpKernel(
            model,
            EngineConfig(
                end_time=recipe.duration,
                n_pes=2,
                n_kps=8,
                batch_size=16,
                seed=recipe.seed,
            ),
        )
    raise ValueError(f"unknown engine kind {kind!r}")


def _conservation(engine) -> str | None:
    """The model's packet-conservation diagnostic for a finished engine."""
    check = getattr(engine.model, "check_conservation", None)
    return check(engine.lps) if check is not None else None


# ----------------------------------------------------------------------
# Disturbances.
# ----------------------------------------------------------------------
class _KillSwitch:
    """Force a deferred interrupt at one boundary (an in-process SIGKILL
    stand-in: the run dies mid-flight exactly where a signal would have
    landed, via the same final-snapshot-then-KeyboardInterrupt path)."""

    def __init__(self, ckpt, kill_at: int) -> None:
        self.ckpt = ckpt
        self.kill_at = kill_at
        self.fired = False

    def arm(self) -> None:
        ckpt, outer = self.ckpt, self
        original = ckpt.boundary

        def boundary(engine, loop=None):
            if not outer.fired and ckpt.boundaries + 1 >= outer.kill_at:
                outer.fired = True
                ckpt.interrupted = True
            return original(engine, loop)

        ckpt.boundary = boundary


def _commit_lines(path: Path) -> list[tuple]:
    """COMMIT records of a trace JSONL, as committed-sequence tuples."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if doc.get("t") == "trace" and doc.get("a") == "COMMIT":
                out.append(
                    (doc["ts"], doc["origin"], doc["seq"], doc["dst"],
                     doc["kind"])
                )
    return sorted(out)


def _episode_kill_resume(
    recipe: EpisodeRecipe, work_dir: Path, baseline_sequence, result: EpisodeResult
) -> None:
    """Interrupt an optimistic run at a seeded boundary, resume, compare."""
    from repro.ckpt import Checkpointer, list_snapshots
    from repro.obs.capture import RunCapture

    ckpt_dir = work_dir / "ckpt"
    trace_path = work_dir / "trace.jsonl"
    marker = {"episode": recipe.episode, "seed": recipe.seed}

    ckpt = Checkpointer(ckpt_dir, every=4, marker=marker)
    _KillSwitch(ckpt, recipe.strike_boundary).arm()
    capture = RunCapture(trace_out=trace_path, meta={"engine": "opt"})
    engine = _build_engine("optimistic", recipe)
    capture.attach(engine)
    engine.attach_checkpointer(ckpt)
    ckpt.capture = capture
    interrupted = False
    try:
        engine.run()
    except KeyboardInterrupt:
        interrupted = True
        capture.finalize(None)
    if not interrupted:
        # The run finished before the strike boundary (tiny episodes):
        # nothing was disturbed, so the trace must still match.
        capture.finalize(None)
        if _commit_lines(trace_path) != baseline_sequence:
            result.violations.append(
                "undisturbed traced run diverged from baseline"
            )
        return

    if recipe.hard_kill and len(list_snapshots(ckpt_dir)) >= 2:
        # Emulate a kill that beat the final snapshot to disk: resume
        # must fall back to the previous one and still converge.
        newest = list_snapshots(ckpt_dir)[-1]
        os.unlink(newest)

    resume = Checkpointer(ckpt_dir, every=4, marker=marker)
    payload = resume.load_latest()
    cap2 = RunCapture.resume(payload.get("obs"))
    engine2 = _build_engine("optimistic", recipe)
    cap2.attach(engine2)
    engine2.attach_checkpointer(resume)
    resume.capture = cap2
    res = engine2.run()
    cap2.finalize(res)

    diag = _conservation(engine2)
    if diag is not None:
        result.violations.append(f"conservation after resume: {diag}")
    got = _commit_lines(trace_path)
    if got != baseline_sequence:
        result.violations.append(
            f"resume diverged: {len(got)} committed record(s) vs "
            f"{len(baseline_sequence)} in the undisturbed run"
        )


def _episode_watchdog(
    recipe: EpisodeRecipe,
    work_dir: Path,
    baseline_sequence,
    baseline_stats,
    result: EpisodeResult,
) -> None:
    """Force a watchdog trip; recovery must converge on baseline results."""
    from repro.core.trace import Tracer
    from repro.ckpt import Checkpointer
    from repro.health import (
        HealthAbort,
        HealthConfig,
        RecoveryPolicy,
        Watchdog,
        run_with_recovery,
    )

    restore = recipe.disturbance == "watchdog_restore"
    ladder = ("restore", "abort") if restore else ("fallback", "abort")
    wd = Watchdog(
        HealthConfig(ladder=ladder, trip_at_boundary=recipe.strike_boundary)
    )
    ckpt = None
    if restore:
        ckpt = Checkpointer(
            work_dir / "ckpt",
            every=4,
            marker={"episode": recipe.episode, "seed": recipe.seed},
        )

    tracers: dict[int, Tracer] = {}

    def build(kind):
        engine = _build_engine(kind, recipe)
        tracer = Tracer()
        engine.attach_tracer(tracer)
        tracers[id(engine)] = tracer
        return engine

    policy = RecoveryPolicy(max_restores=2, max_fallbacks=2, backoff_base=0.0)
    try:
        rec = run_with_recovery(
            build,
            wd,
            kind="optimistic",
            policy=policy,
            ckpt=ckpt,
            sleep=lambda _s: None,
            on_action=result.actions.append,
        )
    except HealthAbort as exc:
        result.violations.append(f"recovery aborted: {exc}")
        return

    diag = _conservation(rec.engine)
    if diag is not None:
        result.violations.append(f"conservation after recovery: {diag}")
    if rec.result.model_stats != baseline_stats:
        result.violations.append(
            f"recovered {rec.kind} run's model stats diverged from the "
            "undisturbed optimistic run"
        )
    if not restore:
        # A fallback reruns from scratch, so its tracer saw the whole
        # run: the committed sequence must equal the baseline's.
        tracer = tracers[id(rec.engine)]
        if tracer.committed_sequence() != baseline_sequence:
            result.violations.append(
                f"recovered {rec.kind} run committed a different event "
                "sequence than the undisturbed optimistic run"
            )


# ----------------------------------------------------------------------
# Episode / campaign drivers.
# ----------------------------------------------------------------------
def run_episode(recipe: EpisodeRecipe, work_dir: str | Path) -> EpisodeResult:
    """Run one episode; ``work_dir`` holds its snapshots and traces."""
    from repro.core.trace import Tracer

    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    result = EpisodeResult(recipe=recipe)
    start = time.perf_counter()

    # Invariant 1: the sequential oracle and the optimistic kernel agree.
    seq_tracer, opt_tracer = Tracer(), Tracer()
    seq_engine = _build_engine("sequential", recipe).attach_tracer(seq_tracer)
    seq_res = seq_engine.run()
    opt_engine = _build_engine("optimistic", recipe).attach_tracer(opt_tracer)
    opt_res = opt_engine.run()
    baseline_sequence = opt_tracer.committed_sequence()
    result.committed = opt_res.run.committed
    if seq_tracer.committed_sequence() != baseline_sequence:
        result.violations.append(
            "seq and opt committed different event sequences"
        )
    if seq_res.model_stats != opt_res.model_stats:
        result.violations.append("seq and opt model stats differ")

    # Invariant 2: packet conservation on both engines.
    for label, engine in (("seq", seq_engine), ("opt", opt_engine)):
        diag = _conservation(engine)
        if diag is not None:
            result.violations.append(f"conservation ({label}): {diag}")

    # Invariants 3/4: the episode's disturbance must be survivable.
    if recipe.disturbance == "kill_resume":
        _episode_kill_resume(recipe, work_dir, baseline_sequence, result)
    elif recipe.disturbance in ("watchdog_restore", "watchdog_fallback"):
        _episode_watchdog(
            recipe, work_dir, baseline_sequence, opt_res.model_stats, result
        )

    result.elapsed = time.perf_counter() - start
    return result


def _load_journal(path: Path) -> dict[int, bool]:
    """episode index -> ok, replayed from an existing campaign journal."""
    done: dict[int, bool] = {}
    if not path.exists():
        return done
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn tail from a crash mid-append
            if doc.get("t") == "episode":
                done[int(doc["episode"])] = bool(doc.get("ok"))
    return done


def run_campaign(
    *,
    seed: int = DEFAULT_CAMPAIGN_SEED,
    episodes: int = 25,
    out_dir: str | Path = "chaos_out",
    fresh: bool = False,
    log=None,
) -> CampaignResult:
    """Run (or resume) a chaos campaign; returns the totals.

    Episodes already journaled in ``out_dir/episodes.jsonl`` are skipped
    (their verdicts still count toward the totals) unless ``fresh``
    truncates the journal first.  Violating episodes get a forensics
    bundle under ``out_dir/forensics_epNNN``.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    journal_path = out_dir / "episodes.jsonl"
    if fresh and journal_path.exists():
        journal_path.unlink()
    done = _load_journal(journal_path)

    totals = CampaignResult(journal=journal_path)
    with journal_path.open("a", encoding="utf-8") as journal:
        for index in range(episodes):
            recipe = derive_recipe(seed, index)
            if index in done:
                totals.episodes += 1
                totals.skipped += 1
                if not done[index]:
                    totals.violations += 1
                continue
            result = run_episode(recipe, out_dir / f"ep{index:03d}")
            journal.write(json.dumps(result.to_journal(), sort_keys=True) + "\n")
            journal.flush()
            os.fsync(journal.fileno())
            totals.episodes += 1
            totals.by_disturbance[recipe.disturbance] = (
                totals.by_disturbance.get(recipe.disturbance, 0) + 1
            )
            if not result.ok:
                totals.violations += 1
                from repro.health import write_forensics_bundle

                bundle = write_forensics_bundle(
                    out_dir / f"forensics_ep{index:03d}",
                    actions=result.actions,
                    extra={
                        "episode": index,
                        "recipe": asdict(recipe),
                        "violations": list(result.violations),
                    },
                )
                if log is not None:
                    log(
                        f"episode {index}: VIOLATION "
                        f"({'; '.join(result.violations)}) — forensics: "
                        f"{bundle}"
                    )
            elif log is not None:
                log(
                    f"episode {index}: ok "
                    f"[{recipe.disturbance}, n={recipe.n}, "
                    f"load={recipe.load}, duration={recipe.duration:g}, "
                    f"committed={result.committed}, "
                    f"{result.elapsed:.2f}s]"
                )
    return totals
