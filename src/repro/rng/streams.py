"""Per-LP reversible random number streams.

Each logical process owns one :class:`ReversibleStream`, seeded from the
global simulation seed and the LP id.  The stream counts how many draws it
has produced; the Time Warp kernel snapshots that count around every event
handler and, on rollback, calls :meth:`ReversibleStream.reverse` to undo
exactly the draws the handler made.  This replaces ROSS's per-handler
``tw_rand_reverse_unif`` calls with automatic, kernel-level accounting —
model authors cannot forget a reverse call.

Every distribution method consumes **exactly one** underlying uniform draw,
which keeps the draw count equal to the call count and makes reverse
accounting trivial.
"""

from __future__ import annotations

import math

from repro.rng.lcg import (
    INCREMENT,
    MASK64,
    MULTIPLIER,
    _INV_2_53,
    lcg_jump,
    lcg_prev,
    splitmix64,
)

__all__ = ["ReversibleStream", "derive_seed"]


def derive_seed(global_seed: int, stream_id: int) -> int:
    """Derive a 64-bit stream seed from a global seed and a stream id.

    Two rounds of SplitMix64 over a combination of the inputs; consecutive
    ``stream_id`` values yield uncorrelated streams.
    """
    return splitmix64(splitmix64(global_seed & ((1 << 64) - 1)) ^ (stream_id + 1))


class ReversibleStream:
    """A reversible, countable random number stream (ROSS ``tw_rand``).

    Parameters
    ----------
    seed:
        64-bit stream seed (use :func:`derive_seed`).
    stream_id:
        Identifier recorded for diagnostics (typically the owning LP id).

    Notes
    -----
    The stream supports three state-manipulation operations used by the
    kernel:

    * :meth:`reverse` — undo the last ``n`` draws (reverse computation),
    * :meth:`checkpoint` / :meth:`restore` — O(1) snapshot for state-saving
      rollback,
    * :meth:`seek` — jump to an absolute draw count in O(log delta).
    """

    __slots__ = ("_state", "_count", "seed", "stream_id")

    def __init__(self, seed: int, stream_id: int = 0) -> None:
        self.seed = seed & ((1 << 64) - 1)
        self.stream_id = stream_id
        self._state = self.seed
        self._count = 0

    # ------------------------------------------------------------------
    # Draws — each consumes exactly one underlying uniform.
    # ------------------------------------------------------------------
    def unif(self) -> float:
        """Uniform float in ``[0, 1)`` (ROSS ``tw_rand_unif``).

        The LCG step and output map are inlined here (and in the other
        draw methods): this is the single hottest call in every model.
        """
        self._state = state = (MULTIPLIER * self._state + INCREMENT) & MASK64
        self._count += 1
        return (state >> 11) * _INV_2_53

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in the **inclusive** range ``[low, high]``

        (ROSS ``tw_rand_integer`` semantics).
        """
        if high < low:
            raise ValueError(f"empty integer range [{low}, {high}]")
        self._state = state = (MULTIPLIER * self._state + INCREMENT) & MASK64
        self._count += 1
        return low + int((state >> 11) * _INV_2_53 * (high - low + 1))

    def integer2(
        self, low1: int, high1: int, low2: int, high2: int
    ) -> tuple[int, int]:
        """Two consecutive :meth:`integer` draws batched into one call.

        Bit-identical to (and counted as) two single draws — the fast path
        for hot model loops that always draw in pairs, e.g. the hot-potato
        injector's destination-then-jitter sequence.
        """
        if high1 < low1 or high2 < low2:
            raise ValueError(
                f"empty integer range [{low1}, {high1}] or [{low2}, {high2}]"
            )
        s1 = (MULTIPLIER * self._state + INCREMENT) & MASK64
        self._state = s2 = (MULTIPLIER * s1 + INCREMENT) & MASK64
        self._count += 2
        return (
            low1 + int((s1 >> 11) * _INV_2_53 * (high1 - low1 + 1)),
            low2 + int((s2 >> 11) * _INV_2_53 * (high2 - low2 + 1)),
        )

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean

        (ROSS ``tw_rand_exponential``).
        """
        if mean <= 0.0:
            raise ValueError(f"mean must be positive, got {mean}")
        u = self.unif()
        # 1 - u is in (0, 1], so log never sees zero.
        return -mean * math.log(1.0 - u)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p`` — used for the hot-potato priority

        upgrade chances 1/(24N) and 1/(16N).
        """
        self._state = state = (MULTIPLIER * self._state + INCREMENT) & MASK64
        self._count += 1
        return (state >> 11) * _INV_2_53 < p

    # ------------------------------------------------------------------
    # Reverse computation support.
    # ------------------------------------------------------------------
    def reverse(self, n: int = 1) -> None:
        """Undo the last ``n`` draws (ROSS ``tw_rand_reverse_unif`` × n)."""
        if n < 0:
            raise ValueError(f"cannot reverse a negative draw count: {n}")
        if n > self._count:
            raise ValueError(
                f"stream {self.stream_id}: asked to reverse {n} draws but only "
                f"{self._count} were ever made"
            )
        for _ in range(n):
            self._state = lcg_prev(self._state)
        self._count -= n

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of draws made so far (monotone except via reverse)."""
        return self._count

    def checkpoint(self) -> tuple[int, int]:
        """O(1) snapshot of the stream: ``(state, count)``."""
        return (self._state, self._count)

    def restore(self, snapshot: tuple[int, int]) -> None:
        """Restore a snapshot produced by :meth:`checkpoint`."""
        self._state, self._count = snapshot

    def seek(self, count: int) -> None:
        """Jump to the absolute draw count ``count`` in O(log delta)."""
        if count < 0:
            raise ValueError(f"draw count cannot be negative: {count}")
        delta = count - self._count
        if delta:
            self._state = lcg_jump(self._state, delta)
            self._count = count

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReversibleStream(stream_id={self.stream_id}, count={self._count})"
        )
