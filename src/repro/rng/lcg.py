"""Invertible 64-bit linear congruential generator.

ROSS provides a *reversible* random number generator (``tw_rand_unif`` /
``tw_rand_reverse_unif``) so that reverse computation can undo every random
draw an event handler made.  This module is the Python analog.  The paper's
determinism argument (§3.2.2) rests on exactly three properties, which we
reproduce:

1. the generator is deterministic given its seed,
2. the generator is *reversible* — the previous state can be recomputed from
   the current state in O(1), and
3. each logical process owns an independent stream.

A 64-bit LCG ``x' = (a*x + c) mod 2**64`` with odd ``a`` is a bijection on
the state space, so its inverse is simply ``x = a_inv * (x' - c) mod 2**64``
where ``a_inv`` is the modular inverse of ``a``.  We use Knuth's MMIX
constants, which pass the usual spectral tests for this word size.

The module also implements O(log k) *jumping* (skipping the stream forward or
backward by ``k`` draws) by exponentiating the affine map, which the kernel
uses to restore a stream to an absolute draw count during state-saving
rollbacks.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

#: Multiplier from Knuth's MMIX LCG.
MULTIPLIER = 6364136223846793005
#: Increment from Knuth's MMIX LCG (any odd constant works).
INCREMENT = 1442695040888963407
#: Modular inverse of :data:`MULTIPLIER` modulo 2**64.
MULTIPLIER_INV = pow(MULTIPLIER, -1, 1 << 64)

#: 2**-53, used to map the top 53 bits of the state to a float in [0, 1).
_INV_2_53 = 1.0 / (1 << 53)


def lcg_next(state: int) -> int:
    """Advance the LCG state by one step."""
    return (MULTIPLIER * state + INCREMENT) & MASK64


def lcg_prev(state: int) -> int:
    """Step the LCG state *backward* by one step (exact inverse of

    :func:`lcg_next`).
    """
    return (MULTIPLIER_INV * (state - INCREMENT)) & MASK64


def lcg_output(state: int) -> float:
    """Map a state word to a uniform float in ``[0, 1)``.

    The top 53 bits are used because a double holds exactly 53 bits of
    mantissa; this guarantees every representable output is equally likely
    and that the output is never 1.0.
    """
    return (state >> 11) * _INV_2_53


def affine_pow(k: int) -> tuple[int, int]:
    """Return ``(A, C)`` such that ``k`` LCG steps equal ``x -> A*x + C``.

    ``k`` may be negative, in which case the returned map steps the stream
    backward.  Computed by square-and-multiply composition of affine maps in
    O(log |k|) multiplications.
    """
    if k < 0:
        a, c = MULTIPLIER_INV, (-MULTIPLIER_INV * INCREMENT) & MASK64
        k = -k
    else:
        a, c = MULTIPLIER, INCREMENT
    # Identity map.
    acc_a, acc_c = 1, 0
    while k:
        if k & 1:
            acc_a, acc_c = (a * acc_a) & MASK64, (a * acc_c + c) & MASK64
        a, c = (a * a) & MASK64, ((a + 1) * c) & MASK64
        k >>= 1
    return acc_a, acc_c


def lcg_jump(state: int, k: int) -> int:
    """Jump the state forward by ``k`` steps (backward when ``k < 0``)."""
    a, c = affine_pow(k)
    return (a * state + c) & MASK64


def splitmix64(x: int) -> int:
    """One round of the SplitMix64 mixing function.

    Used to derive well-separated per-stream seeds from ``(global_seed,
    stream_id)`` pairs; consecutive integers map to statistically independent
    seeds.
    """
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)
