"""Reversible random number generation (ROSS ``tw_rand`` analog).

See :mod:`repro.rng.streams` for the per-LP stream API and
:mod:`repro.rng.lcg` for the underlying invertible generator.
"""

from repro.rng.lcg import (
    INCREMENT,
    MASK64,
    MULTIPLIER,
    MULTIPLIER_INV,
    affine_pow,
    lcg_jump,
    lcg_next,
    lcg_output,
    lcg_prev,
    splitmix64,
)
from repro.rng.streams import ReversibleStream, derive_seed

__all__ = [
    "INCREMENT",
    "MASK64",
    "MULTIPLIER",
    "MULTIPLIER_INV",
    "ReversibleStream",
    "affine_pow",
    "derive_seed",
    "lcg_jump",
    "lcg_next",
    "lcg_output",
    "lcg_prev",
    "splitmix64",
]
