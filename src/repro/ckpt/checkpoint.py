"""The Checkpointer: boundary cadence, snapshot files, deferred interrupts.

One :class:`Checkpointer` drives one run.  Engines accept it via
``attach_checkpointer`` (mirroring ``attach_tracer``/``attach_metrics``/
``attach_faults``) and call back from exactly one place — the GVT /
scheduler-round / event-interval *boundary*, never the per-event hot
path — so a detached checkpointer costs nothing and an attached one
costs one heartbeat touch plus a modulo per boundary.

Lifecycle::

    ckpt = Checkpointer(dir, every=4, marker={...})
    payload = ckpt.load_latest()          # resume only; verifies marker
    capture = RunCapture.resume(payload.get("obs"))   # resume only
    engine  = build_engine(...)           # same model/config as captured
    capture.attach(engine)
    engine.attach_faults(...)             # same plan as captured
    engine.attach_checkpointer(ckpt)      # grafts restored state
    ckpt.capture = capture                # future snapshots carry obs state
    with deferred_interrupts(ckpt):
        result = engine.run()

Interrupt handling: inside :func:`deferred_interrupts`, SIGINT only sets
a flag; the next boundary writes a final snapshot from a fully
consistent state and *then* raises :class:`KeyboardInterrupt`, which the
CLI turns into sink finalization and exit code 130.  A second Ctrl-C
before the next boundary is coalesced, not escalated — boundaries are
frequent (every GVT round), so the window is short.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Mapping

from repro.ckpt.snapshot import (
    SNAPSHOT_SUFFIX,
    latest_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.ckpt.state import capture_state, restore_state
from repro.errors import SnapshotError

__all__ = ["Checkpointer", "deferred_interrupts", "wall_deadline"]


class Checkpointer:
    """Snapshot writer bound to one engine run.

    Parameters
    ----------
    directory:
        Where snapshot files go (created if missing).
    every:
        Write a snapshot every N boundaries (GVT rounds / scheduler
        rounds / sequential event intervals).  ``1`` snapshots every
        boundary; a huge value keeps only interrupt-forced snapshots.
    marker:
        Free-form configuration fingerprint (engine kind, workload
        parameters, seed...).  Stored in every snapshot and compared on
        :meth:`load_latest` — restoring into a differently-configured
        run is refused instead of silently diverging.
    heartbeat:
        Optional file whose mtime is touched at *every* boundary
        (snapshot or not); the experiment supervisor's stall watchdog
        reads it as GVT-progress evidence.
    seq_events:
        Boundary period, in committed events, for the sequential engine
        (which has no rounds).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 1,
        marker: Mapping[str, Any] | None = None,
        heartbeat: str | Path | None = None,
        seq_events: int = 1024,
    ) -> None:
        if every < 1:
            raise SnapshotError(f"every must be >= 1, got {every}")
        if seq_events < 1:
            raise SnapshotError(f"seq_events must be >= 1, got {seq_events}")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.marker = dict(marker) if marker else {}
        self.heartbeat = Path(heartbeat) if heartbeat is not None else None
        self.seq_events = seq_events
        #: Optional repro.obs.capture.RunCapture whose sink offsets ride
        #: along in every snapshot (set by the CLI after construction).
        self.capture = None
        #: Boundaries seen so far (restored on resume, so the snapshot
        #: cadence of a resumed run matches the uninterrupted one).
        self.boundaries = 0
        #: Next snapshot file index.
        self.seq = 0
        #: Snapshots written by this instance.
        self.written = 0
        #: Path of the most recent snapshot written.
        self.last_path: Path | None = None
        #: Set asynchronously by the SIGINT handler; consumed at the next
        #: boundary (final snapshot + KeyboardInterrupt).
        self.interrupted = False
        self._restore_payload: dict | None = None

    # ------------------------------------------------------------------
    # Resume side.
    # ------------------------------------------------------------------
    def load_latest(self) -> dict:
        """Load the newest snapshot in the directory for a resume.

        Verifies the configuration marker, arms :meth:`bind` to graft
        the state onto the next engine attached, and returns the payload
        (the CLI reads ``payload.get("obs")`` to resume telemetry
        sinks).
        """
        path = latest_snapshot(self.dir)
        if path is None:
            raise SnapshotError(f"no snapshots to resume from in {self.dir}")
        payload = read_snapshot(path)
        stored = payload.get("marker", {})
        if stored != self.marker:
            diff = sorted(
                k
                for k in set(stored) | set(self.marker)
                if stored.get(k) != self.marker.get(k)
            )
            raise SnapshotError(
                f"{path}: configuration marker mismatch (differing keys: "
                f"{', '.join(diff) or '<none>'}); refusing to restore into "
                "a differently-configured run"
            )
        meta = payload.get("ckpt", {})
        self.boundaries = meta.get("boundaries", 0)
        self.seq = meta.get("seq", 0) + 1
        self._restore_payload = payload
        return payload

    def bind(self, engine) -> None:
        """Called by ``attach_checkpointer``: graft pending restore state."""
        payload = self._restore_payload
        if payload is not None:
            self._restore_payload = None
            restore_state(engine, payload)

    # ------------------------------------------------------------------
    # Run side.
    # ------------------------------------------------------------------
    def boundary(self, engine, loop=None) -> None:
        """One quiescent boundary: heartbeat, maybe snapshot, maybe stop.

        ``loop`` is the engine's run-loop local state — a dict, or a
        zero-argument callable producing one (evaluated only when a
        snapshot is actually written).
        """
        if self.heartbeat is not None:
            self.heartbeat.touch()
        self.boundaries += 1
        if self.interrupted or self.boundaries % self.every == 0:
            self.write(engine, loop)
        if self.interrupted:
            self.interrupted = False
            raise KeyboardInterrupt

    def write(self, engine, loop=None) -> Path:
        """Write one snapshot of ``engine`` right now."""
        if callable(loop):
            loop = loop()
        payload = capture_state(engine, loop)
        payload["marker"] = dict(self.marker)
        payload["ckpt"] = {"seq": self.seq, "boundaries": self.boundaries}
        capture = self.capture
        if capture is not None and capture.active:
            payload["obs"] = capture.checkpoint_state()
        path = self.dir / f"ckpt_{self.seq:06d}{SNAPSHOT_SUFFIX}"
        write_snapshot(path, payload)
        self.seq += 1
        self.written += 1
        self.last_path = path
        return path

    def request_interrupt(self) -> None:
        """Ask for a final snapshot + KeyboardInterrupt at the next boundary."""
        self.interrupted = True


@contextmanager
def deferred_interrupts(ckpt: Checkpointer | None):
    """Route SIGINT through the checkpointer while a run is in flight.

    With ``ckpt=None`` (checkpointing disabled) this is a no-op context:
    SIGINT raises :class:`KeyboardInterrupt` wherever it lands and the
    CLI's handler still closes sinks — the crash-tolerant loader covers
    any torn final line.
    """
    if ckpt is None:
        yield
        return

    def _handler(signum, frame):
        ckpt.request_interrupt()

    try:
        previous = signal.signal(signal.SIGINT, _handler)
    except ValueError:  # not the main thread: leave signals alone
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


@contextmanager
def wall_deadline(seconds: float | None, ckpt: Checkpointer | None):
    """Arm a SIGALRM wall-clock cutoff sharing Ctrl-C's snapshot path.

    After ``seconds`` of wall time the run is interrupted exactly as a
    deferred Ctrl-C would be: with a checkpointer the alarm only calls
    :meth:`Checkpointer.request_interrupt`, so the next boundary writes
    a final snapshot from consistent state and raises
    :class:`KeyboardInterrupt`; without one the alarm raises
    :class:`KeyboardInterrupt` directly.  Yields a zero-argument callable
    that reports whether the deadline fired, so the CLI can distinguish
    a timeout (exit 124, ``timeout(1)``'s convention) from a user
    interrupt (exit 130).  ``seconds`` of ``None`` or ``<= 0`` disables
    the cutoff (no-op context).
    """
    fired = False

    def expired() -> bool:
        return fired

    if not seconds or seconds <= 0:
        yield expired
        return

    def _handler(signum, frame):
        nonlocal fired
        fired = True
        if ckpt is not None:
            ckpt.request_interrupt()
        else:
            raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGALRM, _handler)
    except ValueError:  # not the main thread: no deadline support
        yield expired
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield expired
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
