"""On-disk snapshot container: versioned, integrity-hashed, atomic.

A snapshot file is::

    +----------+---------+------------------+------------------+
    | magic 8B | ver u32 | sha256 digest 32B| payload (pickle) |
    +----------+---------+------------------+------------------+

The digest covers the payload bytes only, so any truncation or bit flip
in the (large) payload is detected before unpickling; magic/version
corruption is detected structurally.  Files are written to a temporary
sibling, fsynced, then ``os.replace``d into place — a crash mid-write
never leaves a half snapshot under the final name.

The payload itself is a single :mod:`pickle` dump of one dict produced
by :mod:`repro.ckpt.state`.  Using exactly one dump matters: the event
graph contains shared payload dicts and parent→child journaling
references, and pickle's memo preserves that sharing only within one
serialization.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from pathlib import Path
from typing import Any

from repro.errors import SnapshotError

__all__ = [
    "MAGIC",
    "VERSION",
    "SNAPSHOT_SUFFIX",
    "write_snapshot",
    "read_snapshot",
    "list_snapshots",
    "latest_snapshot",
    "snapshot_digest",
]

MAGIC = b"RPSNAP01"
VERSION = 1
SNAPSHOT_SUFFIX = ".rpsnap"

_HEADER = struct.Struct("<8sI32s")  # magic, version, sha256(payload)


def snapshot_digest(payload_bytes: bytes) -> bytes:
    """Return the integrity digest stored in the snapshot header."""
    return hashlib.sha256(payload_bytes).digest()


def write_snapshot(path: str | Path, payload: dict[str, Any]) -> Path:
    """Atomically write ``payload`` as a snapshot file at ``path``."""
    path = Path(path)
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable state is a caller bug
        raise SnapshotError(f"cannot serialize snapshot payload: {exc}") from exc
    header = _HEADER.pack(MAGIC, VERSION, snapshot_digest(blob))
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(header)
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_snapshot(path: str | Path) -> dict[str, Any]:
    """Read and verify a snapshot file, returning its payload dict.

    Raises :class:`SnapshotError` on bad magic, unsupported version,
    truncation, or an integrity-hash mismatch.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError(f"{path}: truncated snapshot (no header)")
    magic, version, digest = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotError(f"{path}: not a snapshot file (bad magic {magic!r})")
    if version != VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version} (expected {VERSION})"
        )
    blob = raw[_HEADER.size :]
    if snapshot_digest(blob) != digest:
        raise SnapshotError(f"{path}: integrity hash mismatch (corrupt or truncated)")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # digest passed but unpickle failed: version skew
        raise SnapshotError(f"{path}: cannot decode snapshot payload: {exc}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise SnapshotError(f"{path}: snapshot payload has no engine kind")
    return payload


def list_snapshots(directory: str | Path) -> list[Path]:
    """Return snapshot files under ``directory``, oldest first.

    Snapshot names embed a monotone sequence number
    (``ckpt_000042.rpsnap``), so lexicographic order is write order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}"))


def latest_snapshot(directory: str | Path) -> Path | None:
    """Return the most recent snapshot in ``directory``, or None."""
    snaps = list_snapshots(directory)
    return snaps[-1] if snaps else None
