"""Crash-safe checkpoint/restore for all three engines.

See :mod:`repro.ckpt.snapshot` for the on-disk format,
:mod:`repro.ckpt.state` for what is captured per engine, and
:mod:`repro.ckpt.checkpoint` for the run-side driver.  ``python -m
repro.ckpt`` offers ``info`` (inspect snapshots) and ``smoke`` (the
kill/resume determinism check used by CI).
"""

from repro.ckpt.checkpoint import Checkpointer, deferred_interrupts, wall_deadline
from repro.ckpt.snapshot import (
    SNAPSHOT_SUFFIX,
    latest_snapshot,
    list_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.ckpt.state import capture_state, restore_state
from repro.errors import SnapshotError

__all__ = [
    "Checkpointer",
    "deferred_interrupts",
    "wall_deadline",
    "SnapshotError",
    "SNAPSHOT_SUFFIX",
    "capture_state",
    "restore_state",
    "read_snapshot",
    "write_snapshot",
    "list_snapshots",
    "latest_snapshot",
]
