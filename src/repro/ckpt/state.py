"""Engine-state capture and restore — the snapshot payload codec.

Each engine snapshots at a *quiescent boundary*:

* **sequential** — between events (every ``Checkpointer.seq_events``
  commits): one heap of never-processed events, no journaling.
* **optimistic** — a GVT round, after fossil collection *and* after the
  transport flush: everything below GVT is committed and gone, the
  cancellation worklist is drained, mailboxes are empty (only a
  FaultyTransport's deliberately-held messages remain in flight, and
  those are captured explicitly).
* **conservative** — a scheduler round: events commit as they execute,
  so only the pending queues, channel clocks and counters are live.

The payload is one plain dict pickled in a single dump (see
:mod:`repro.ckpt.snapshot` for why sharing matters).  Restore grafts the
payload onto a *freshly constructed* engine of the same configuration,
mutating the kernel-owned objects **in place** — the optimistic fast
paths compile at ``run()`` start and capture object identities
(``pe.pending``, ``kp.processed``, ``pool._free``, the GVT manager), so
replacing any of those objects would silently disconnect them.

Event serials: heap-entry serials are process-local and only their
relative order matters.  On restore every event reachable from the
captured queues (transitively through ``sent``/``lazy_sent`` journals
and held fault-transport messages) is re-stamped with a fresh serial, in
old-serial order — every tie-break between restored events is preserved
and no restored entry can ever collide with a new one.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from repro.core.event import Event, _next_serial
from repro.errors import SnapshotError
from repro.vt.time import TIME_HORIZON, EventKey

__all__ = ["capture_state", "restore_state"]

#: Payload-format sanity marker, distinct from the file-level version in
#: snapshot.py: bumping this invalidates snapshots whose payload layout
#: no longer matches this module.
PAYLOAD_FORMAT = 1


# ----------------------------------------------------------------------
# Shared sub-captures.
# ----------------------------------------------------------------------
def _capture_lps(lps) -> list:
    return [
        (lp.snapshot_state(), lp.send_seq, lp.rng.checkpoint(), lp._now)
        for lp in lps
    ]


def _restore_lps(lps, snaps) -> None:
    if len(lps) != len(snaps):
        raise SnapshotError(
            f"snapshot has {len(snaps)} LPs, engine has {len(lps)}"
        )
    for lp, (state, send_seq, rng_ckpt, now) in zip(lps, snaps):
        lp.restore_state(state)
        lp.send_seq = send_seq
        lp.rng.restore(rng_ckpt)
        lp._now = now


def _queue_events(queue) -> list[Event]:
    """Live events of one pending queue, in entry (pop) order.

    Dead (cancelled) heap entries are dropped: lazy deletion only ever
    skips them, ``_cancel`` on an already-cancelled event is a no-op,
    and nothing else can resurrect them — omitting them is exactly what
    the queue's own sweep would eventually do.
    """
    return sorted(iter(queue), key=lambda ev: ev.entry[:4])


def _restore_queue(queue, events) -> None:
    for ev in events:
        queue.push(ev)


def _restamp_events(roots) -> None:
    """Give every reachable event a fresh serial, preserving old order."""
    seen: dict[int, Event] = {}
    stack = list(roots)
    while stack:
        ev = stack.pop()
        if id(ev) in seen:
            continue
        seen[id(ev)] = ev
        if ev.sent:
            stack.extend(ev.sent)
        if ev.lazy_sent:
            stack.extend(ev.lazy_sent)
    events = sorted(seen.values(), key=lambda ev: ev.entry[3])
    for ev in events:
        key = ev.key
        ev.entry = (key[0], key[1], key[2], _next_serial(), ev)
        ev.in_pending = False


def _copy_dataclass(src, dst) -> None:
    for f in dataclass_fields(src):
        setattr(dst, f.name, getattr(src, f.name))


def _capture_pool(pool):
    if pool is None:
        return None
    return {"free": len(pool._free), "hits": pool.hits, "allocs": pool.allocs}


def _restore_pool(pool, snap) -> None:
    if (pool is None) != (snap is None):
        raise SnapshotError("event-pool configuration differs from snapshot")
    if pool is None:
        return
    free = pool._free
    free.clear()
    blank_key = EventKey(0.0, 0, 0)
    for _ in range(snap["free"]):
        ev = Event(blank_key, 0, "")
        # Match EventPool.release's parked-event contract exactly.
        ev.data = None  # type: ignore[assignment]
        free.append(ev)
    pool.hits = snap["hits"]
    pool.allocs = snap["allocs"]


def _capture_gvt(manager):
    if manager.name == "synchronous":
        return ("synchronous", manager.last)
    if manager.name == "incremental":
        # Per-PE floors are NOT captured: the restore marks every PE
        # dirty, so the first post-resume estimate re-peeks each queue
        # exactly (the queues themselves are rebuilt from the snapshot).
        return ("incremental", manager.last, manager.incremental_rounds,
                manager.repeeks)
    return (
        "mattern",
        manager.epoch,
        dict(manager._sent),
        dict(manager._recv),
        dict(manager._min_sent_ts),
        manager.last,
    )


def _restore_gvt(manager, snap) -> None:
    if snap[0] != manager.name:
        raise SnapshotError(
            f"snapshot used GVT algorithm {snap[0]!r}, engine uses "
            f"{manager.name!r}"
        )
    if snap[0] == "synchronous":
        manager.last = snap[1]
        return
    if snap[0] == "incremental":
        _, manager.last, manager.incremental_rounds, manager.repeeks = snap
        manager._floor[:] = [TIME_HORIZON] * manager.n_pes
        manager._dirty[:] = [True] * manager.n_pes
        return
    _, epoch, sent, recv, min_ts, last = snap
    manager.epoch = epoch
    manager._sent.clear()
    manager._sent.update(sent)
    manager._recv.clear()
    manager._recv.update(recv)
    manager._min_sent_ts.clear()
    manager._min_sent_ts.update(min_ts)
    manager.last = last


def _capture_throttle(throttle):
    if throttle is None:
        return None
    return (
        throttle.factor,
        throttle.adjustments,
        list(throttle.history),
        throttle._observations,
    )


def _restore_throttle(throttle, snap) -> None:
    if (throttle is None) != (snap is None):
        raise SnapshotError("adaptive-throttle configuration differs from snapshot")
    if throttle is None:
        return
    throttle.factor, throttle.adjustments, history, throttle._observations = snap
    throttle.history[:] = history


def _capture_faults(faults):
    if faults is None:
        return None
    snap = {"stall_rounds": faults.stall_rounds, "transport": None}
    ft = faults.transport
    if ft is not None:
        snap["transport"] = {
            "rng": ft._rng.checkpoint(),
            "dropped": ft.dropped,
            "duplicated": ft.duplicated,
            "delayed": ft.delayed,
            "annihilated_held": ft.annihilated_held,
            "held": [list(item) for item in ft._held],
        }
    return snap


def _restore_faults(faults, snap) -> None:
    if (faults is None) != (snap is None):
        raise SnapshotError(
            "fault-driver configuration differs from snapshot (attach the "
            "same FaultPlan before the checkpointer)"
        )
    if faults is None:
        return
    faults.stall_rounds = snap["stall_rounds"]
    ft = faults.transport
    tsnap = snap["transport"]
    if (ft is None) != (tsnap is None):
        raise SnapshotError("faulty-transport configuration differs from snapshot")
    if ft is None:
        return
    ft._rng.restore(tsnap["rng"])
    ft.dropped = tsnap["dropped"]
    ft.duplicated = tsnap["duplicated"]
    ft.delayed = tsnap["delayed"]
    ft.annihilated_held = tsnap["annihilated_held"]
    ft._held = [list(item) for item in tsnap["held"]]


def _held_events(faults_snap) -> list[Event]:
    if not faults_snap or not faults_snap.get("transport"):
        return []
    return [item[0] for item in faults_snap["transport"]["held"]]


# ----------------------------------------------------------------------
# Sequential engine.
# ----------------------------------------------------------------------
def _capture_sequential(engine, loop) -> dict:
    return {
        "format": PAYLOAD_FORMAT,
        "kind": "sequential",
        "loop": dict(loop or {}),
        "sends": engine.sends,
        "lps": _capture_lps(engine.lps),
        "pending": _queue_events(engine.pending),
        "pool": _capture_pool(engine.pool),
        "model": engine.model.checkpoint_state(),
    }


def _restore_sequential(engine, payload) -> None:
    _restore_lps(engine.lps, payload["lps"])
    events = payload["pending"]
    _restamp_events(events)
    _restore_queue(engine.pending, events)
    engine.sends = payload["sends"]
    _restore_pool(engine.pool, payload["pool"])
    engine.model.restore_checkpoint(payload["model"])
    engine._resume = dict(payload["loop"])


# ----------------------------------------------------------------------
# Optimistic (Time Warp) engine.
# ----------------------------------------------------------------------
def _capture_optimistic(kernel, loop) -> dict:
    if kernel._cancel_worklist:
        raise SnapshotError("cancel worklist not drained at checkpoint boundary")
    if kernel._antimsg_batch:
        raise SnapshotError("anti-message batch not flushed at checkpoint boundary")
    if kernel._current_event is not None:
        raise SnapshotError("cannot snapshot mid-event")
    faults = kernel.faults
    transport = kernel.transport
    inner = (
        transport.inner
        if faults is not None and faults.transport is transport
        else transport
    )
    if getattr(inner, "in_flight_count", lambda: 0)():
        raise SnapshotError("transport not drained at checkpoint boundary")
    return {
        "format": PAYLOAD_FORMAT,
        "kind": "optimistic",
        "loop": dict(loop or {}),
        "gvt": kernel.gvt,
        "counters": {
            "makespan_units": kernel.makespan_units,
            "fossil_collected": kernel.fossil_collected,
            "gvt_rounds": kernel.gvt_rounds,
            "cancelled_direct": kernel.cancelled_direct,
            "cancelled_via_rollback": kernel.cancelled_via_rollback,
            "lazy_reused": kernel.lazy_reused,
            "antimsg_batches": kernel.antimsg_batches,
            "soa_batches": kernel.soa_batches,
            "soa_lps_stepped": kernel.soa_lps_stepped,
            "peak_pending": kernel.peak_pending,
            "peak_processed": kernel.peak_processed,
        },
        "lps": _capture_lps(kernel.lps),
        "pending": [_queue_events(pe.pending) for pe in kernel.pes],
        "pe_stats": [pe.stats for pe in kernel.pes],
        "processed": [list(kp.processed) for kp in kernel.kps],
        "kp_stats": [kp.stats for kp in kernel.kps],
        "gvt_manager": _capture_gvt(kernel.gvt_manager),
        "throttle": _capture_throttle(kernel.throttle),
        "pool": _capture_pool(kernel.pool),
        "faults": _capture_faults(faults),
        "model": kernel.model.checkpoint_state(),
    }


def _restore_optimistic(kernel, payload) -> None:
    if len(payload["pending"]) != len(kernel.pes):
        raise SnapshotError(
            f"snapshot has {len(payload['pending'])} PEs, engine has "
            f"{len(kernel.pes)}"
        )
    if len(payload["processed"]) != len(kernel.kps):
        raise SnapshotError(
            f"snapshot has {len(payload['processed'])} KPs, engine has "
            f"{len(kernel.kps)}"
        )
    _restore_lps(kernel.lps, payload["lps"])
    # Re-stamp every reachable event before any queue sees one: pending,
    # processed journals, and fault-transport held messages share events.
    roots: list[Event] = []
    for events in payload["pending"]:
        roots.extend(events)
    for events in payload["processed"]:
        roots.extend(events)
    roots.extend(_held_events(payload["faults"]))
    _restamp_events(roots)
    for pe, events, stats in zip(kernel.pes, payload["pending"], payload["pe_stats"]):
        _restore_queue(pe.pending, events)
        _copy_dataclass(stats, pe.stats)
    for kp, events, stats in zip(kernel.kps, payload["processed"], payload["kp_stats"]):
        kp.processed[:] = events
        _copy_dataclass(stats, kp.stats)
    for name, value in payload["counters"].items():
        setattr(kernel, name, value)
    kernel.gvt = payload["gvt"]
    _restore_gvt(kernel.gvt_manager, payload["gvt_manager"])
    _restore_throttle(kernel.throttle, payload["throttle"])
    _restore_pool(kernel.pool, payload["pool"])
    _restore_faults(kernel.faults, payload["faults"])
    kernel.model.restore_checkpoint(payload["model"])
    kernel._resume = dict(payload["loop"])


# ----------------------------------------------------------------------
# Conservative engine.
# ----------------------------------------------------------------------
def _capture_conservative(kernel, loop) -> dict:
    return {
        "format": PAYLOAD_FORMAT,
        "kind": "conservative",
        "loop": dict(loop or {}),
        "counters": {
            "null_messages": kernel.null_messages,
            "real_messages": kernel.real_messages,
            "local_sends": kernel.local_sends,
            "rounds": kernel.rounds,
            "makespan_units": kernel.makespan_units,
        },
        "lps": _capture_lps(kernel.lps),
        "pes": [
            {
                "pending": _queue_events(pe.pending),
                "in_clock": list(pe.in_clock),
                "out_clock": list(pe.out_clock),
                "processed": pe.processed,
                "busy": pe.busy,
            }
            for pe in kernel.pes
        ],
        "pool": _capture_pool(kernel.pool),
        "faults": (
            {"stall_rounds": kernel.faults.stall_rounds}
            if kernel.faults is not None
            else None
        ),
        "model": kernel.model.checkpoint_state(),
    }


def _restore_conservative(kernel, payload) -> None:
    if len(payload["pes"]) != len(kernel.pes):
        raise SnapshotError(
            f"snapshot has {len(payload['pes'])} PEs, engine has "
            f"{len(kernel.pes)}"
        )
    _restore_lps(kernel.lps, payload["lps"])
    roots: list[Event] = []
    for snap in payload["pes"]:
        roots.extend(snap["pending"])
    _restamp_events(roots)
    for pe, snap in zip(kernel.pes, payload["pes"]):
        _restore_queue(pe.pending, snap["pending"])
        pe.in_clock[:] = snap["in_clock"]
        pe.out_clock[:] = snap["out_clock"]
        pe.processed = snap["processed"]
        pe.busy = snap["busy"]
    for name, value in payload["counters"].items():
        setattr(kernel, name, value)
    _restore_pool(kernel.pool, payload["pool"])
    fsnap = payload["faults"]
    if (kernel.faults is None) != (fsnap is None):
        raise SnapshotError(
            "fault-driver configuration differs from snapshot (attach the "
            "same FaultPlan before the checkpointer)"
        )
    if kernel.faults is not None:
        kernel.faults.stall_rounds = fsnap["stall_rounds"]
    kernel.model.restore_checkpoint(payload["model"])
    kernel._bootstrapping = False
    kernel._resume = dict(payload["loop"])


# ----------------------------------------------------------------------
# Dispatch.
# ----------------------------------------------------------------------
def _engine_kind(engine) -> str:
    from repro.core.conservative import ConservativeKernel
    from repro.core.engine import SequentialEngine
    from repro.core.optimistic import TimeWarpKernel

    if isinstance(engine, SequentialEngine):
        return "sequential"
    if isinstance(engine, TimeWarpKernel):
        return "optimistic"
    if isinstance(engine, ConservativeKernel):
        return "conservative"
    raise SnapshotError(f"cannot checkpoint engine of type {type(engine).__name__}")


_CAPTURE = {
    "sequential": _capture_sequential,
    "optimistic": _capture_optimistic,
    "conservative": _capture_conservative,
}
_RESTORE = {
    "sequential": _restore_sequential,
    "optimistic": _restore_optimistic,
    "conservative": _restore_conservative,
}


def capture_state(engine, loop=None) -> dict:
    """Capture ``engine``'s full simulation state as a payload dict.

    ``loop`` carries the engine run loop's local variables (round
    counters, effective batch/window) so :meth:`run` can resume them.
    """
    payload = _CAPTURE[_engine_kind(engine)](engine, loop)
    # Executor mode travels with the payload: the scalar and vectorized
    # populations carry different event-payload layouts (dicts vs SoA
    # tuples), so a snapshot only restores into the mode that wrote it.
    payload["executor"] = getattr(engine, "executor", "scalar")
    return payload


def restore_state(engine, payload) -> None:
    """Graft a captured payload onto a freshly built ``engine``.

    The engine must have been constructed from the same model/config as
    the captured one (the :class:`~repro.ckpt.checkpoint.Checkpointer`
    verifies the config marker before calling this), with any fault
    driver already attached.  Call before ``run()``.
    """
    kind = _engine_kind(engine)
    if payload.get("format") != PAYLOAD_FORMAT:
        raise SnapshotError(
            f"snapshot payload format {payload.get('format')!r} != "
            f"{PAYLOAD_FORMAT}"
        )
    if payload["kind"] != kind:
        raise SnapshotError(
            f"snapshot was taken from a {payload['kind']} engine, cannot "
            f"restore into a {kind} engine"
        )
    snap_executor = payload.get("executor", "scalar")
    engine_executor = getattr(engine, "executor", "scalar")
    if snap_executor != engine_executor:
        raise SnapshotError(
            f"snapshot was taken under the {snap_executor!r} executor, "
            f"cannot restore into a {engine_executor!r} population (the "
            "event-payload layouts differ)"
        )
    _RESTORE[kind](engine, payload)
