"""``python -m repro.ckpt`` — snapshot forensics and the crash drill.

Subcommands::

    python -m repro.ckpt info DIR     # list DIR's snapshots, verified
    python -m repro.ckpt smoke        # kill a live run, resume, diff

``info`` reads every snapshot in the directory (integrity hash and
version checks included) and prints one line each: engine kind, file
sequence number, boundary count, GVT, whether telemetry sink state rides
along, and the configuration marker.  Corrupt files are reported and
make the command exit 1 — it doubles as an integrity scan.

``smoke`` is the end-to-end crash drill used by CI: run the hot-potato
workload once uninterrupted (the oracle), run it again with
checkpointing and SIGKILL it mid-simulation, resume from the snapshots,
and require the resumed run's full event-lifecycle recording — every
committed event plus the final stats — to be byte-identical to the
oracle's.
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.ckpt.snapshot import list_snapshots, read_snapshot
from repro.errors import SnapshotError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro.ckpt`` CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description="Inspect checkpoint snapshots and drill crash recovery.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="list and verify a snapshot directory")
    p.add_argument("dir", type=Path)

    p = sub.add_parser(
        "smoke", help="crash drill: kill a checkpointed run, resume, diff"
    )
    p.add_argument(
        "--dir",
        type=Path,
        default=None,
        help="work directory (default: a fresh temp dir, deleted on success)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=400.0,
        help="simulated duration; large enough that the kill lands mid-run "
        "(default: 400)",
    )
    return parser


def cmd_info(directory: Path) -> int:
    """Verify and describe every snapshot in ``directory``."""
    paths = list_snapshots(directory)
    if not paths:
        print(f"{directory}: no snapshots")
        return 1
    bad = 0
    for path in paths:
        try:
            payload = read_snapshot(path)
        except SnapshotError as exc:
            print(f"{path.name}: CORRUPT ({exc})")
            bad += 1
            continue
        meta = payload.get("ckpt", {})
        gvt = payload.get("gvt")
        loop = payload.get("loop", {})
        progress = (
            f"gvt={gvt:g}" if gvt is not None
            else f"processed={loop.get('processed', '?')}"
        )
        marker = payload.get("marker", {})
        brief = ", ".join(f"{k}={marker[k]}" for k in sorted(marker)[:4])
        print(
            f"{path.name}: {payload.get('kind', '?'):<12} "
            f"seq={meta.get('seq', '?')} boundaries={meta.get('boundaries', '?')} "
            f"{progress} obs={'yes' if payload.get('obs') else 'no'}"
            + (f"  [{brief}{', ...' if len(marker) > 4 else ''}]" if marker else "")
        )
    print(f"{len(paths)} snapshot(s), {bad} corrupt")
    return 1 if bad else 0


def _hotpotato_cmd(duration: float, recording: Path, extra: list[str]) -> list[str]:
    return [
        sys.executable, "-m", "repro.hotpotato",
        "--n", "4", "--duration", str(duration),
        "--processors", "4", "--kps", "16", "--batch", "16", "--seed", "7",
        "--metrics-out", str(recording), "--trace-out", str(recording),
        *extra,
    ]


def _smoke_env() -> dict:
    import os

    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
    return env


def cmd_smoke(work: Path, duration: float) -> int:
    """The crash drill (see module docstring); returns the exit code."""
    work.mkdir(parents=True, exist_ok=True)
    env = _smoke_env()
    ckpt_dir = work / "ckpt"
    oracle = work / "oracle.jsonl"
    crash = work / "crash.jsonl"

    print(f"[1/3] oracle run (uninterrupted, duration {duration:g})")
    res = subprocess.run(
        _hotpotato_cmd(duration, oracle, []),
        env=env, capture_output=True, text=True,
    )
    if res.returncode != 0:
        print(f"FAIL: oracle run exited {res.returncode}\n{res.stderr}")
        return 1

    print("[2/3] checkpointed run, SIGKILL once snapshots exist")
    proc = subprocess.Popen(
        _hotpotato_cmd(
            duration, crash,
            ["--checkpoint-dir", str(ckpt_dir), "--checkpoint-every", "2"],
        ),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 120.0
    killed = False
    while proc.poll() is None and time.time() < deadline:
        if len(list_snapshots(ckpt_dir)) >= 3:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            break
        time.sleep(0.02)
    if not killed:
        proc.kill()
        proc.wait()
        if not list_snapshots(ckpt_dir):
            print(
                "FAIL: run finished before any snapshot was written; "
                "raise --duration"
            )
            return 1
        print(
            "note: run outpaced the kill; resuming from its snapshots anyway"
        )
        # The interrupted recording may be complete; remove it so the
        # resumed run's recording is rebuilt from the snapshot offsets.
    snaps = len(list_snapshots(ckpt_dir))
    print(f"      killed mid-run with {snaps} snapshot(s)")

    print("[3/3] resume and diff against the oracle")
    res = subprocess.run(
        _hotpotato_cmd(
            duration, crash,
            ["--checkpoint-dir", str(ckpt_dir), "--checkpoint-every", "2",
             "--resume"],
        ),
        env=env, capture_output=True, text=True,
    )
    if res.returncode != 0:
        print(f"FAIL: resume exited {res.returncode}\n{res.stderr}")
        return 1
    a, b = oracle.read_bytes(), crash.read_bytes()
    if a != b:
        print(
            f"FAIL: resumed recording differs from oracle "
            f"({len(b)} vs {len(a)} bytes) — committed sequence is not "
            "bit-identical; inspect with python -m repro.obs diff"
        )
        return 1
    print(
        f"ok: resumed run byte-identical to oracle "
        f"({len(a):,} bytes, {snaps} snapshot(s) survived the kill)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return cmd_info(args.dir)
        if args.dir is not None:
            return cmd_smoke(args.dir, args.duration)
        with tempfile.TemporaryDirectory(prefix="ckpt_smoke_") as tmp:
            return cmd_smoke(Path(tmp), args.duration)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
