"""The declarative scenario format: schema ``RPSCEN01``.

A scenario file is one JSON object declaring a complete, reproducible
experiment — topology, traffic, routing policy, engine parameters and an
optional fault plan — with no code:

.. code-block:: json

    {
      "schema": "RPSCEN01",
      "name": "hotspot-stress",
      "description": "Rate-0.5 hotspot adversary on an 8x8 torus.",
      "topology": {"kind": "torus", "n": 8},
      "traffic": {"model": "adversarial", "strategy": "hotspot",
                  "rate": 0.5, "hotspots": 2, "seed": 2901},
      "routing": {"policy": "busch"},
      "engine": {"duration": 60.0, "seed": 24141},
      "faults": null
    }

Sections
--------
``topology``
    ``kind`` is a name from :data:`repro.net.TOPOLOGIES` ("torus" or
    "mesh"); ``n`` is the side of the N×N grid.
``traffic``
    ``model`` is ``"bernoulli"`` (the stock injection application;
    optional ``injector_fraction``, default 1.0) or ``"adversarial"``
    (a rate-bounded adversary; ``strategy`` from
    :data:`repro.scenarios.adversary.STRATEGIES` plus strategy knobs
    ``rate``/``seed``/``hotspots``/``burst_len``/``burst_gap``, or
    ``"script"`` with an explicit ``script`` entry list).
``routing``
    ``policy`` is a name from :data:`repro.baselines.POLICIES`
    ("busch", "greedy", "dimension-order", "random-deflection",
    "two-choice").
``engine``
    ``duration`` (required) and ``seed`` for the run, plus an optional
    ``overrides`` object of :class:`~repro.hotpotato.config.
    HotPotatoConfig` fields (``arrival_jitter``, ``initial_fill``,
    ``heartbeat``, ...) and optional parallel-engine defaults
    ``n_pes``/``n_kps``/``batch_size``/``window``/``executor``.
``faults``
    ``null``, a path to a :mod:`repro.faults` plan file (relative paths
    resolve against the scenario file), an inline plan object, or
    ``{"generate": {...}}`` with :func:`repro.faults.generate_plan`
    keyword arguments.

Identity
--------
:meth:`Scenario.scenario_hash` is the sha256 of the scenario's canonical
JSON (sorted keys, ``source`` excluded), truncated to 16 hex digits —
the same convention as the sweep supervisor's ``point_id``.  The
supervisor records it in sweep manifests so a ``--resume`` of a scenario
sweep can verify the file on disk still means what the manifest meant.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Mapping

from repro.baselines.policies import POLICIES
from repro.errors import ConfigurationError
from repro.net import TOPOLOGIES
from repro.scenarios.adversary import STRATEGIES

__all__ = ["SCHEMA_ID", "Scenario", "ScenarioError", "load_scenario"]

#: Schema identifier every scenario file must carry (versioned suffix).
SCHEMA_ID = "RPSCEN01"

#: Traffic models a scenario may declare.
TRAFFIC_MODELS = ("bernoulli", "adversarial")

#: HotPotatoConfig fields a scenario's ``engine.overrides`` may set.
#: Everything the scenario's own sections define (n, duration, topology,
#: injector_fraction) is deliberately excluded — one knob, one place.
CONFIG_OVERRIDES = (
    "arrival_jitter",
    "jitter_slots",
    "initial_fill",
    "absorb_sleeping",
    "sleeping_upgrade_scale",
    "active_upgrade_scale",
    "heartbeat",
    "exact_injectors",
    "delivery_log",
    "layout_seed",
)

#: Parallel-engine defaults the ``engine`` section may carry.
ENGINE_KEYS = (
    "duration",
    "seed",
    "overrides",
    "n_pes",
    "n_kps",
    "batch_size",
    "window",
    "executor",
)


class ScenarioError(ConfigurationError):
    """A scenario file is malformed or references unknown components."""


@dataclass(frozen=True)
class Scenario:
    """One parsed (but not yet compiled) scenario declaration."""

    name: str
    topology: dict
    traffic: dict
    routing: dict
    engine: dict
    description: str = ""
    #: None, a plan-file path string, an inline plan dict, or
    #: ``{"generate": {...}}``.
    faults: object = None
    #: Where the scenario was loaded from (resolves relative fault
    #: paths); not part of the scenario's identity.
    source: Path | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any structural problem.

        Validation here is *referential* — names must resolve against
        the topology/policy/strategy registries, required keys must be
        present and well-typed.  Value-range checking (n >= 2, rate in
        [0,1], ...) happens when the scenario is compiled into real
        config objects, which already own those rules.
        """
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("scenario needs a non-empty string 'name'")
        for section, doc in (
            ("topology", self.topology),
            ("traffic", self.traffic),
            ("routing", self.routing),
            ("engine", self.engine),
        ):
            if not isinstance(doc, dict):
                raise ScenarioError(
                    f"scenario {self.name!r}: section {section!r} must be "
                    f"an object, got {type(doc).__name__}"
                )
        kind = self.topology.get("kind")
        if kind not in TOPOLOGIES:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown topology kind {kind!r}; "
                f"choose from {sorted(TOPOLOGIES)}"
            )
        if "n" not in self.topology:
            raise ScenarioError(
                f"scenario {self.name!r}: topology needs 'n' (grid side)"
            )
        model = self.traffic.get("model")
        if model not in TRAFFIC_MODELS:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown traffic model {model!r}; "
                f"choose from {list(TRAFFIC_MODELS)}"
            )
        if model == "adversarial":
            strategy = self.traffic.get("strategy")
            if strategy == "script":
                script = self.traffic.get("script")
                if not isinstance(script, list) or not script:
                    raise ScenarioError(
                        f"scenario {self.name!r}: script traffic needs a "
                        "non-empty 'script' entry list"
                    )
            elif strategy not in STRATEGIES:
                raise ScenarioError(
                    f"scenario {self.name!r}: unknown adversary strategy "
                    f"{strategy!r}; choose from {list(STRATEGIES) + ['script']}"
                )
        policy = self.routing.get("policy", "busch")
        if policy not in POLICIES:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown routing policy "
                f"{policy!r}; choose from {sorted(POLICIES)}"
            )
        if "duration" not in self.engine:
            raise ScenarioError(
                f"scenario {self.name!r}: engine needs 'duration'"
            )
        unknown = set(self.engine) - set(ENGINE_KEYS)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown engine keys "
                f"{sorted(unknown)}; allowed: {list(ENGINE_KEYS)}"
            )
        overrides = self.engine.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ScenarioError(
                f"scenario {self.name!r}: engine.overrides must be an object"
            )
        bad = set(overrides) - set(CONFIG_OVERRIDES)
        if bad:
            raise ScenarioError(
                f"scenario {self.name!r}: overrides {sorted(bad)} are not "
                f"overridable; allowed: {list(CONFIG_OVERRIDES)}"
            )
        if self.faults is not None and not isinstance(self.faults, (str, dict)):
            raise ScenarioError(
                f"scenario {self.name!r}: 'faults' must be null, a plan "
                "path, an inline plan object, or {\"generate\": {...}}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON form (round-trips through :meth:`from_dict`)."""
        return {
            "schema": SCHEMA_ID,
            "name": self.name,
            "description": self.description,
            "topology": self.topology,
            "traffic": self.traffic,
            "routing": self.routing,
            "engine": self.engine,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, doc: Mapping, source: Path | None = None) -> "Scenario":
        schema = doc.get("schema")
        if schema != SCHEMA_ID:
            raise ScenarioError(
                f"scenario schema {schema!r} is not the supported "
                f"{SCHEMA_ID!r}"
            )
        known = {
            "schema", "name", "description", "topology", "traffic",
            "routing", "engine", "faults",
        }
        unknown = set(doc) - known
        if unknown:
            raise ScenarioError(
                f"unknown scenario keys {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        return cls(
            name=doc.get("name", ""),
            description=doc.get("description", ""),
            topology=dict(doc.get("topology", {})),
            traffic=dict(doc.get("traffic", {})),
            routing=dict(doc.get("routing", {"policy": "busch"})),
            engine=dict(doc.get("engine", {})),
            faults=doc.get("faults"),
            source=source,
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys; hashing input)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def scenario_hash(self) -> str:
        """16-hex-digit identity of the scenario content (see module doc)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def load_scenario(source: str | Path | IO[str]) -> Scenario:
    """Load and validate a scenario from a JSON path or open stream."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        text = path.read_text()
    else:
        path = None
        text = source.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(
            f"{path or '<stream>'}: not valid JSON ({exc})"
        ) from None
    if not isinstance(doc, dict):
        raise ScenarioError(f"{path or '<stream>'}: scenario must be an object")
    scenario = Scenario.from_dict(doc, source=path)
    scenario.validate()
    return scenario
