"""Declarative scenarios: data-driven workloads for the three engines.

A *scenario* is a schema-versioned JSON document (``RPSCEN01``, see
:mod:`repro.scenarios.spec`) declaring everything a run needs — topology,
traffic model (Bernoulli or a rate-bounded adversary from
:mod:`repro.scenarios.adversary`), routing policy, engine parameters and
an optional fault plan.  :func:`compile_scenario` turns one into a
ready-to-run :class:`CompiledScenario`; ``python -m repro.scenarios``
validates, inspects and runs scenario files; ``--scenario`` on
``repro.hotpotato`` and ``repro.experiments`` consumes them in place of
flag soup.  Bundled examples live in ``examples/scenarios/``; the format
reference is ``docs/SCENARIOS.md``.
"""

from repro.scenarios.adversary import (
    DEFAULT_ADVERSARY_SEED,
    STRATEGIES,
    InjectionEvent,
    InjectionPlan,
    InjectionPlanError,
    generate_injection_plan,
    load_injection_plan,
)
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.spec import SCHEMA_ID, Scenario, ScenarioError, load_scenario

__all__ = [
    "CompiledScenario",
    "DEFAULT_ADVERSARY_SEED",
    "InjectionEvent",
    "InjectionPlan",
    "InjectionPlanError",
    "SCHEMA_ID",
    "STRATEGIES",
    "Scenario",
    "ScenarioError",
    "compile_scenario",
    "generate_injection_plan",
    "load_injection_plan",
    "load_scenario",
]
