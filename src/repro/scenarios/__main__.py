"""``python -m repro.scenarios`` — validate, inspect and run scenario files.

Subcommands::

    python -m repro.scenarios validate examples/scenarios/*.json
    python -m repro.scenarios show examples/scenarios/adversarial_hotspot.json
    python -m repro.scenarios run examples/scenarios/adversarial_hotspot.json \
        --engine optimistic --trace-out run.jsonl

``validate`` loads, validates *and compiles* each file (compilation
catches errors referential validation cannot, like an out-of-range
scripted destination).  ``show`` prints the resolved scenario — identity
hash, topology, expanded adversary size, fault events.  ``run`` executes
on one of the three engines with the usual telemetry flags; committed
results are engine-independent, so any engine is equally authoritative.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.scenarios.compile import ENGINES, compile_scenario
from repro.scenarios.spec import load_scenario

__all__ = ["main", "build_parser"]

#: Short engine aliases accepted everywhere next to the full names.
_ENGINE_ALIASES = {"seq": "sequential", "cons": "conservative", "opt": "optimistic"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Validate, inspect and run declarative scenario files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser(
        "validate", help="load + validate + compile scenario files"
    )
    p_validate.add_argument("files", nargs="+", metavar="FILE")

    p_show = sub.add_parser("show", help="print one resolved scenario")
    p_show.add_argument("file", metavar="FILE")

    p_run = sub.add_parser("run", help="run one scenario on an engine")
    p_run.add_argument("file", metavar="FILE")
    p_run.add_argument(
        "--engine",
        default="sequential",
        choices=tuple(ENGINES) + tuple(_ENGINE_ALIASES),
        help="engine to run on (default sequential; seq/cons/opt accepted)",
    )
    p_run.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's engine seed",
    )
    p_run.add_argument(
        "--processors", type=int, default=None,
        help="override PEs for the parallel engines",
    )
    p_run.add_argument(
        "--kps", type=int, default=None,
        help="override KPs for the optimistic engine",
    )
    p_run.add_argument(
        "--batch", type=int, default=None,
        help="override the optimism batch size",
    )
    p_run.add_argument(
        "--executor", choices=("scalar", "vectorized"), default=None,
        help="override the LP stepping mode",
    )
    p_run.add_argument(
        "--validate", action="store_true",
        help="also run the sequential oracle and check the results match",
    )
    p_run.add_argument(
        "--metrics-out", metavar="FILE",
        help="record GVT-interval metric samples to this JSONL file",
    )
    p_run.add_argument(
        "--trace-out", metavar="FILE",
        help="record the full event-lifecycle trace to this JSONL file; "
        "may equal --metrics-out to combine streams in one recording",
    )
    p_run.add_argument(
        "--spans-out", metavar="FILE",
        help="record wall-clock phase spans to this JSONL file",
    )
    return parser


# ----------------------------------------------------------------------
def cmd_validate(files: list[str]) -> int:
    failures = 0
    for path in files:
        try:
            compiled = compile_scenario(load_scenario(path))
        except (ConfigurationError, OSError) as exc:
            print(f"FAIL  {path}: {exc}")
            failures += 1
            continue
        extras = []
        if compiled.injection_plan is not None:
            extras.append(
                f"adversary={compiled.injection_plan.strategy}"
                f"({len(compiled.injection_plan.entries)} injections)"
            )
        if compiled.fault_plan is not None:
            extras.append(f"faults={len(compiled.fault_plan.events)} events")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(
            f"ok    {path}: {compiled.name} "
            f"({compiled.scenario_hash()}){suffix}"
        )
    if failures:
        print(f"{failures} of {len(files)} scenario file(s) failed validation")
        return 1
    print(f"all {len(files)} scenario file(s) valid")
    return 0


def cmd_show(path: str) -> int:
    scenario = load_scenario(path)
    compiled = compile_scenario(scenario)
    cfg = compiled.cfg
    print(f"scenario : {compiled.name}  [{compiled.scenario_hash()}]")
    if scenario.description:
        print(f"about    : {scenario.description}")
    print(f"topology : {cfg.n}x{cfg.n} {cfg.topology} ({cfg.num_routers} routers)")
    traffic = scenario.traffic
    if compiled.injection_plan is not None:
        plan = compiled.injection_plan
        steps = max((e.step for e in plan.entries), default=0) + 1
        print(
            f"traffic  : adversarial/{plan.strategy}, rate {plan.rate}, "
            f"seed {plan.seed} -> {len(plan.entries)} injections over "
            f"{steps} steps"
        )
    else:
        print(
            "traffic  : bernoulli, injector_fraction "
            f"{traffic.get('injector_fraction', 1.0)}"
        )
    print(f"routing  : {compiled.policy.name}")
    print(
        f"engine   : duration {compiled.duration:g}, seed {compiled.seed}, "
        f"defaults n_pes={compiled.n_pes} n_kps={compiled.n_kps} "
        f"batch={compiled.batch_size} executor={compiled.executor}"
    )
    overrides = scenario.engine.get("overrides", {})
    if overrides:
        print(f"overrides: {overrides}")
    if compiled.fault_plan is not None:
        plan = compiled.fault_plan
        print(
            f"faults   : {len(plan.events)} scheduled events "
            f"(seed {plan.seed})"
        )
    else:
        print("faults   : none")
    return 0


def cmd_run(args) -> int:
    from repro.obs.capture import RunCapture

    scenario = load_scenario(args.file)
    compiled = compile_scenario(scenario)
    engine = _ENGINE_ALIASES.get(args.engine, args.engine)
    capture = RunCapture(
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        spans_out=args.spans_out,
        meta={
            "engine": engine,
            "workload": "scenario",
            "scenario": compiled.name,
            "scenario_hash": compiled.scenario_hash(),
            "n": compiled.cfg.n,
            "topology": compiled.cfg.topology,
            "policy": compiled.policy.name,
            "duration": compiled.duration,
            "seed": args.seed if args.seed is not None else compiled.seed,
        },
        fault_plan=compiled.fault_plan,
        injection_plan=compiled.injection_plan,
    )
    result = compiled.run(
        engine,
        seed=args.seed,
        n_pes=args.processors,
        n_kps=args.kps,
        batch_size=args.batch,
        executor=args.executor,
        tracer=capture.tracer,
        metrics=capture.metrics,
        spans=capture.spans,
    )
    capture.finalize(result)
    for out in sorted({str(s.path) for s in capture._sinks if s.path is not None}):
        print(f"telemetry written to {out}")

    ms = result.model_stats
    run = result.run
    cfg = compiled.cfg
    print(
        f"{compiled.name} [{compiled.scenario_hash()}]: {cfg.n}x{cfg.n} "
        f"{cfg.topology}, policy={compiled.policy.name}, "
        f"{compiled.duration:g} steps, engine={run.engine} ({run.n_pes} PE)"
    )
    print(f"  events committed   : {run.committed:,}")
    if run.soa_decline_reason:
        print(f"  executor fallback  : {run.soa_decline_reason}")
    if "adversary" in ms:
        print(
            f"  adversary          : {ms['adversary']} "
            f"({ms['adversary_generated']:,} scripted injections)"
        )
    print(f"  packets injected   : {ms['injected']:,} (+{ms['initial_packets']} initial)")
    print(f"  packets delivered  : {ms['delivered']:,}")
    print(f"  avg delivery time  : {ms['avg_delivery_time']:.3f} steps")
    print(f"  max delivery time  : {ms['max_delivery_time']} steps")
    print(f"  avg wait to inject : {ms['avg_inject_wait']:.3f} steps")
    print(f"  max wait to inject : {ms['max_inject_wait']} steps")
    print(f"  deflection rate    : {100 * ms['deflection_rate']:.2f}%")
    if compiled.fault_plan is not None:
        print(
            f"  fault events       : {ms.get('fault_events', 0):,} "
            f"({ms.get('failed_links', 0)} links statically failed)"
        )

    if args.validate and engine != "sequential":
        oracle = compiled.run("sequential", seed=args.seed)
        identical = oracle.model_stats == ms
        print(f"  oracle check       : {'IDENTICAL' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    elif args.validate:
        twin = compiled.run(
            "optimistic", seed=args.seed, n_pes=args.processors,
            n_kps=args.kps, batch_size=args.batch, executor=args.executor,
        )
        identical = twin.model_stats == ms
        print(f"  cross-engine check : {'IDENTICAL' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "validate":
            return cmd_validate(args.files)
        if args.command == "show":
            return cmd_show(args.file)
        return cmd_run(args)
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
