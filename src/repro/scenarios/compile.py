"""Compile a :class:`~repro.scenarios.spec.Scenario` into runnable parts.

The compiler is the one place scenario JSON meets real objects: the
topology registry, :class:`~repro.hotpotato.config.HotPotatoConfig`, the
policy registry, the adversary expansion and the fault-plan loader.  The
result — a :class:`CompiledScenario` — builds fresh
:class:`~repro.hotpotato.model.HotPotatoModel` populations on demand
(models are single-use) and knows how to run itself on any of the three
engines through the same convenience wrappers the CLIs use, so a
scenario is guaranteed to mean the same thing everywhere it is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.policies import make_policy
from repro.errors import ConfigurationError
from repro.hotpotato.config import HotPotatoConfig
from repro.hotpotato.model import HotPotatoModel
from repro.hotpotato.policy import RoutingPolicy
from repro.net import TOPOLOGIES
from repro.scenarios.adversary import (
    DEFAULT_ADVERSARY_SEED,
    InjectionEvent,
    InjectionPlan,
    generate_injection_plan,
)
from repro.scenarios.spec import Scenario, ScenarioError

__all__ = ["CompiledScenario", "compile_scenario"]

#: Engines a compiled scenario can run on.
ENGINES = ("sequential", "conservative", "optimistic")


@dataclass
class CompiledScenario:
    """A scenario resolved into config, policy, plans and run defaults."""

    scenario: Scenario
    cfg: HotPotatoConfig
    policy: RoutingPolicy
    injection_plan: InjectionPlan | None
    fault_plan: object
    duration: float
    seed: int
    #: Parallel-engine defaults from the scenario's engine section.
    n_pes: int
    n_kps: int
    batch_size: int
    window: float | None
    executor: str

    @property
    def name(self) -> str:
        """The scenario's declared name."""
        return self.scenario.name

    def scenario_hash(self) -> str:
        """Content hash identifying the scenario (see ``Scenario``)."""
        return self.scenario.scenario_hash()

    # ------------------------------------------------------------------
    def build_model(self, *, delivery_log: bool | None = None) -> HotPotatoModel:
        """Fresh model population (models are single-use per run)."""
        cfg = self.cfg
        if delivery_log is not None and delivery_log != cfg.delivery_log:
            from dataclasses import replace

            cfg = replace(cfg, delivery_log=delivery_log)
        return HotPotatoModel(
            cfg,
            self.policy,
            fault_plan=self.fault_plan,
            injection_plan=self.injection_plan,
        )

    def _engine_faults(self):
        plan = self.fault_plan
        if plan is None or not plan.has_engine_faults:
            return None
        from repro.faults.injector import EngineFaults

        return EngineFaults(plan)

    def run(
        self,
        engine: str = "sequential",
        *,
        seed: int | None = None,
        n_pes: int | None = None,
        n_kps: int | None = None,
        batch_size: int | None = None,
        window: float | None = None,
        executor: str | None = None,
        tracer=None,
        metrics=None,
        spans=None,
        delivery_log: bool | None = None,
        model: HotPotatoModel | None = None,
    ):
        """Run the scenario on one engine; returns the RunResult.

        Keyword arguments override the scenario's engine-section
        defaults; pass ``model`` to run a population you built (and kept
        a reference to) yourself — e.g. to read its delivery log after.
        """
        if engine not in ENGINES:
            raise ScenarioError(
                f"unknown engine {engine!r}; choose from {list(ENGINES)}"
            )
        if model is None:
            model = self.build_model(delivery_log=delivery_log)
        seed = self.seed if seed is None else seed
        executor = self.executor if executor is None else executor
        if engine == "sequential":
            from repro.core.engine import run_sequential

            return run_sequential(
                model,
                self.duration,
                seed=seed,
                executor=executor,
                tracer=tracer,
                metrics=metrics,
                spans=spans,
            )
        faults = self._engine_faults()
        if engine == "conservative":
            from repro.core.conservative import (
                ConservativeConfig,
                run_conservative,
            )

            ccfg = ConservativeConfig(
                end_time=self.duration,
                n_pes=self.n_pes if n_pes is None else n_pes,
                lookahead=model.lookahead,
                seed=seed,
                executor=executor,
            )
            return run_conservative(
                model, ccfg, tracer=tracer, metrics=metrics, spans=spans,
                faults=faults,
            )
        from repro.core.config import EngineConfig
        from repro.core.optimistic import run_optimistic

        pes = self.n_pes if n_pes is None else n_pes
        ecfg = EngineConfig(
            end_time=self.duration,
            n_pes=pes,
            n_kps=(self.n_kps if n_kps is None else n_kps) or 4 * pes,
            batch_size=self.batch_size if batch_size is None else batch_size,
            window=self.window if window is None else window,
            seed=seed,
            executor=executor,
        )
        return run_optimistic(
            model, ecfg, tracer=tracer, metrics=metrics, spans=spans,
            faults=faults,
        )


# ----------------------------------------------------------------------
def _default_kp_count(n: int, requested: int, n_pes: int) -> int:
    """Largest KP count <= ``requested`` whose block mapping tiles n×n.

    Scenarios name arbitrary grid sizes (a 6×6 mesh, say), where the
    stock ``4 * n_pes`` KPs may not tile; rather than make every
    scenario author pick a divisor by hand, round down to one that
    fits — exactly the rule the experiment sweeps use.
    """
    from repro.core.mapping import balanced_tile_counts

    def fits(k: int) -> bool:
        if k < n_pes or k % n_pes or k > n * n:
            return False
        kr, kc = balanced_tile_counts(k)
        if n % kr or n % kc:
            return False
        pr, pc = balanced_tile_counts(n_pes)
        return kr % pr == 0 and kc % pc == 0

    k = requested
    while k >= n_pes:
        if fits(k):
            return k
        k -= 1
    raise ScenarioError(
        f"no usable KP count <= {requested} for n={n}, n_pes={n_pes}; "
        "set engine.n_kps (and possibly engine.n_pes) explicitly"
    )


def _compile_traffic(scenario: Scenario, n: int, topo_kind: str, duration: float):
    """Resolve the traffic section: (injector_fraction, InjectionPlan|None)."""
    traffic = scenario.traffic
    if traffic["model"] == "bernoulli":
        return float(traffic.get("injector_fraction", 1.0)), None
    strategy = traffic["strategy"]
    if strategy == "script":
        plan = InjectionPlan(
            entries=tuple(
                InjectionEvent.from_dict(e) for e in traffic["script"]
            ),
            strategy="script",
            rate=float(traffic.get("rate", 1.0)),
            seed=int(traffic.get("seed", DEFAULT_ADVERSARY_SEED)),
        )
    else:
        topo = TOPOLOGIES[topo_kind](n)
        plan = generate_injection_plan(
            topo,
            strategy=strategy,
            duration=duration,
            rate=float(traffic.get("rate", 1.0)),
            seed=int(traffic.get("seed", DEFAULT_ADVERSARY_SEED)),
            hotspots=int(traffic.get("hotspots", 1)),
            burst_len=int(traffic.get("burst_len", 8)),
            burst_gap=int(traffic.get("burst_gap", 8)),
        )
    # Injectors are exactly the scripted routers, so the fraction is moot;
    # keep the config default for config-marker stability.
    return 1.0, plan


def _compile_faults(scenario: Scenario, n: int, topo_kind: str, duration: float):
    """Resolve the faults section into a FaultPlan (or None)."""
    doc = scenario.faults
    if doc is None:
        return None
    from repro.faults import FaultPlan, FaultPlanError, generate_plan, load_plan

    try:
        if isinstance(doc, str):
            path = doc
            if scenario.source is not None:
                path = str((scenario.source.parent / doc).resolve())
            return load_plan(path)
        if "generate" in doc:
            spec = dict(doc["generate"])
            topo = TOPOLOGIES[topo_kind](n)
            return generate_plan(topo, duration=duration, **spec)
        return FaultPlan.from_dict(doc)
    except FaultPlanError as exc:
        raise ScenarioError(
            f"scenario {scenario.name!r}: bad fault plan: {exc}"
        ) from None
    except (OSError, TypeError, ValueError) as exc:
        raise ScenarioError(
            f"scenario {scenario.name!r}: cannot resolve faults: {exc}"
        ) from None


def compile_scenario(scenario: Scenario) -> CompiledScenario:
    """Resolve a validated scenario into a :class:`CompiledScenario`."""
    scenario.validate()
    topo_kind = scenario.topology["kind"]
    n = int(scenario.topology["n"])
    eng = scenario.engine
    duration = float(eng["duration"])
    seed = int(eng.get("seed", 0x5EED))
    injector_fraction, injection_plan = _compile_traffic(
        scenario, n, topo_kind, duration
    )
    fault_plan = _compile_faults(scenario, n, topo_kind, duration)
    overrides = dict(eng.get("overrides", {}))
    try:
        cfg = HotPotatoConfig(
            n=n,
            duration=duration,
            topology=topo_kind,
            injector_fraction=injector_fraction,
            **overrides,
        )
    except ConfigurationError as exc:
        if isinstance(exc, ScenarioError):
            raise
        raise ScenarioError(
            f"scenario {scenario.name!r}: bad configuration: {exc}"
        ) from None
    num = cfg.num_routers
    try:
        if injection_plan is not None:
            injection_plan.validate(num_nodes=num)
        if fault_plan is not None:
            fault_plan.validate(num_nodes=num)
    except ScenarioError:
        raise
    except ConfigurationError as exc:
        raise ScenarioError(f"scenario {scenario.name!r}: {exc}") from None
    policy = make_policy(scenario.routing.get("policy", "busch"))
    n_pes = int(eng.get("n_pes", 4))
    return CompiledScenario(
        scenario=scenario,
        cfg=cfg,
        policy=policy,
        injection_plan=injection_plan,
        fault_plan=fault_plan,
        duration=duration,
        seed=seed,
        n_pes=n_pes,
        n_kps=int(eng.get("n_kps", 0))
        or _default_kp_count(n, 4 * n_pes, n_pes),
        batch_size=int(eng.get("batch_size", 16)),
        window=eng.get("window"),
        executor=str(eng.get("executor", "scalar")),
    )
